//! End-to-end tests of the cudadev device library: kernels written the way
//! the OMPi translator generates them (the paper's Fig. 3 shape) are
//! compiled by nvccsim and executed on the simulated GPU with the device
//! library linked in.

use cudadev::{exports, CudaDev, CudaDevConfig, MW_BLOCK_THREADS};
use gpusim::ExecMode;

fn compile(src: &str, name: &str) -> sptx::Module {
    let mut m = nvccsim::compile_source(src, name).expect("compile");
    nvccsim::link_module(&mut m, &exports()).expect("link");
    m
}

/// A tiny host arena for `launch` calls: these tests drive raw device
/// buffers (no mapped data environment), so recovery has nothing to
/// replay from it.
fn host_arena() -> vmcommon::MemArena {
    vmcommon::MemArena::new(4096)
}

fn fresh_dev() -> CudaDev {
    let base = std::env::temp_dir().join(format!("cudadev-mw-{}-{:p}", std::process::id(), &()));
    CudaDev::new(CudaDevConfig {
        global_mem: 16 << 20,
        kernel_dir: base.join("k"),
        jit_cache_dir: base.join("j"),
        exec_mode: ExecMode::Functional,
        ..Default::default()
    })
}

/// The paper's Fig. 3 example: a target region with a stand-alone
/// `parallel num_threads(96)` lowered to the master/worker scheme. The
/// kernel below is hand-written in exactly the shape OMPi generates.
#[test]
fn fig3_master_worker_scheme() {
    let src = r#"
__device__ void thrFunc0(long vars) {
    int *ip = *(int **) vars;
    int *x = *(int **) (vars + 8);
    x[omp_get_thread_num()] = *ip + 1;
}

__global__ void kernelFunc0(int *x) {
    int _mw_thrid = threadIdx.x;
    if (cudadev_in_masterwarp(_mw_thrid)) {
        if (!cudadev_is_masterthr(_mw_thrid))
            return;
        /* master thread: sequential part of the target region */
        int i = 2;
        {
            /* #pragma omp parallel num_threads(96) */
            long vars[2];
            vars[0] = (long) cudadev_push_shmem(&i, sizeof(i));
            vars[1] = (long) cudadev_getaddr(x);
            long vp = (long) cudadev_push_shmem(&vars[0], 16);
            cudadev_register_parallel(thrFunc0, vp, 96);
            cudadev_pop_shmem(&vars[0], 16);
            cudadev_pop_shmem(&i, sizeof(i));
        }
        cudadev_exit_target();
    } else {
        cudadev_workerfunc(_mw_thrid);
    }
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    let m = compile(src, "fig3");
    dev.register_module(m);
    let d = dev.device();
    let x = d.mem_alloc(4 * 96).unwrap();
    d.memset_d8(x, 0, 4 * 96).unwrap();
    dev.launch(&hm, "fig3", "kernelFunc0", [1, 1, 1], [MW_BLOCK_THREADS, 1, 1], vec![x])
        .expect("master/worker launch");
    let mut raw = vec![0u8; 4 * 96];
    d.memcpy_d2h(&mut raw, x).unwrap();
    for t in 0..96usize {
        let v = i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap());
        assert_eq!(v, 3, "x[{t}] — every region thread writes i+1 = 3");
    }
}

/// Two successive parallel regions in one target region share the worker
/// pool; the second sees updates made by the first (through the master).
#[test]
fn consecutive_parallel_regions() {
    let src = r#"
__device__ void regionA(long vars) {
    int *x = *(int **) vars;
    x[omp_get_thread_num()] = 10;
}
__device__ void regionB(long vars) {
    int *x = *(int **) vars;
    x[omp_get_thread_num()] += omp_get_thread_num();
}

__global__ void k(int *x) {
    int t = threadIdx.x;
    if (cudadev_in_masterwarp(t)) {
        if (!cudadev_is_masterthr(t)) return;
        long vars[1];
        vars[0] = (long) cudadev_getaddr(x);
        long vp = (long) cudadev_push_shmem(&vars[0], 8);
        cudadev_register_parallel(regionA, vp, 96);
        cudadev_register_parallel(regionB, vp, 96);
        cudadev_pop_shmem(&vars[0], 8);
        cudadev_exit_target();
    } else {
        cudadev_workerfunc(t);
    }
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "two_regions"));
    let d = dev.device();
    let x = d.mem_alloc(4 * 96).unwrap();
    dev.launch(&hm, "two_regions", "k", [1, 1, 1], [128, 1, 1], vec![x]).unwrap();
    let mut raw = vec![0u8; 4 * 96];
    d.memcpy_d2h(&mut raw, x).unwrap();
    for t in 0..96usize {
        let v = i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap());
        assert_eq!(v, 10 + t as i32, "x[{t}]");
    }
}

/// A `num_threads` smaller than the worker pool: only that subset runs, and
/// the B2 barrier count rounds to W⌈N/W⌉ (§4.2.2).
#[test]
fn partial_participation_40_threads() {
    let src = r#"
__device__ void region(long vars) {
    int *x = *(int **) vars;
    x[omp_get_thread_num()] = omp_get_num_threads();
}
__global__ void k(int *x) {
    int t = threadIdx.x;
    if (cudadev_in_masterwarp(t)) {
        if (!cudadev_is_masterthr(t)) return;
        long vars[1];
        vars[0] = (long) cudadev_getaddr(x);
        long vp = (long) cudadev_push_shmem(&vars[0], 8);
        cudadev_register_parallel(region, vp, 40);
        cudadev_pop_shmem(&vars[0], 8);
        cudadev_exit_target();
    } else {
        cudadev_workerfunc(t);
    }
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "partial"));
    let d = dev.device();
    let x = d.mem_alloc(4 * 96).unwrap();
    d.memset_d8(x, 0xff, 4 * 96).unwrap();
    dev.launch(&hm, "partial", "k", [1, 1, 1], [128, 1, 1], vec![x]).unwrap();
    let mut raw = vec![0u8; 4 * 96];
    d.memcpy_d2h(&mut raw, x).unwrap();
    for t in 0..96usize {
        let v = i32::from_le_bytes(raw[4 * t..4 * t + 4].try_into().unwrap());
        if t < 40 {
            assert_eq!(v, 40, "participant {t} sees omp_get_num_threads() == 40");
        } else {
            assert_eq!(v, -1, "non-participant {t} must not run the region");
        }
    }
}

/// Combined-construct chunk distribution: every thread of every team claims
/// its slice via get_distribute_chunk + get_static_chunk and the whole
/// iteration space is covered exactly once.
#[test]
fn distribute_plus_static_chunks_cover() {
    let src = r#"
__global__ void cover(int *hits, long total) {
    long lb;
    long ub;
    long mylb;
    long myub;
    cudadev_get_distribute_chunk(total, &lb, &ub);
    cudadev_get_static_chunk(lb, ub, 0, &mylb, &myub);
    for (long i = mylb; i < myub; i++)
        atomicAdd(&hits[i], 1);
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "cover"));
    let d = dev.device();
    let total = 1000u64;
    let hits = d.mem_alloc(4 * total).unwrap();
    d.memset_d8(hits, 0, 4 * total).unwrap();
    dev.launch(&hm, "cover", "cover", [4, 1, 1], [64, 1, 1], vec![hits, total]).unwrap();
    let mut raw = vec![0u8; 4 * total as usize];
    d.memcpy_d2h(&mut raw, hits).unwrap();
    for i in 0..total as usize {
        let v = i32::from_le_bytes(raw[4 * i..4 * i + 4].try_into().unwrap());
        assert_eq!(v, 1, "iteration {i} must be executed exactly once");
    }
}

/// Dynamic schedule on the device: reset + claim loop covers the space.
#[test]
fn dynamic_schedule_covers() {
    let src = r#"
__global__ void dynk(int *hits, long total) {
    if (omp_get_thread_num() == 0)
        cudadev_sched_reset();
    cudadev_barrier();
    long mylb;
    long myub;
    while (cudadev_get_dynamic_chunk(0, total, 7, &mylb, &myub)) {
        for (long i = mylb; i < myub; i++)
            atomicAdd(&hits[i], 1);
    }
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "dynk"));
    let d = dev.device();
    let total = 500u64;
    let hits = d.mem_alloc(4 * total).unwrap();
    d.memset_d8(hits, 0, 4 * total).unwrap();
    // Single block: the dynamic counter is per-block state.
    dev.launch(&hm, "dynk", "dynk", [1, 1, 1], [128, 1, 1], vec![hits, total]).unwrap();
    let mut raw = vec![0u8; 4 * total as usize];
    d.memcpy_d2h(&mut raw, hits).unwrap();
    for i in 0..total as usize {
        let v = i32::from_le_bytes(raw[4 * i..4 * i + 4].try_into().unwrap());
        assert_eq!(v, 1, "iteration {i}");
    }
}

/// Critical sections via the CAS spin lock: concurrent read-modify-write
/// sequences never interleave.
#[test]
fn critical_sections_exclusive() {
    let src = r#"
__global__ void crit(int *acc) {
    cudadev_critical_enter(0);
    int v = acc[0];
    acc[0] = v + 1;
    cudadev_critical_exit(0);
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "crit"));
    let d = dev.device();
    let acc = d.mem_alloc(4).unwrap();
    d.memset_d8(acc, 0, 4).unwrap();
    dev.launch(&hm, "crit", "crit", [2, 1, 1], [64, 1, 1], vec![acc]).unwrap();
    let mut raw = [0u8; 4];
    d.memcpy_d2h(&mut raw, acc).unwrap();
    // One increment per *warp* (lockstep lanes share the critical section,
    // like the paper's warp-synchronous lock): 2 blocks × 2 warps… each
    // lane executes the load/store under the same lock hold, so the final
    // value equals the number of lock acquisitions, one per warp per lane
    // group — with 32 lanes writing the same v+1, each warp adds exactly 1.
    assert_eq!(i32::from_le_bytes(raw), 4, "one increment per warp");
}

/// `sections` hand out each section once, to leaders of different warps.
#[test]
fn sections_assigned_across_warps() {
    let src = r#"
__global__ void sec(int *who) {
    if (omp_get_thread_num() == 0)
        cudadev_sections_reset();
    cudadev_barrier();
    int s;
    while ((s = cudadev_sections_next(4)) >= 0) {
        who[s] = threadIdx.x / 32;
    }
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "sec"));
    let d = dev.device();
    let who = d.mem_alloc(4 * 4).unwrap();
    d.memset_d8(who, 0xff, 16).unwrap();
    dev.launch(&hm, "sec", "sec", [1, 1, 1], [128, 1, 1], vec![who]).unwrap();
    let mut raw = vec![0u8; 16];
    d.memcpy_d2h(&mut raw, who).unwrap();
    let winners: Vec<i32> =
        (0..4).map(|i| i32::from_le_bytes(raw[4 * i..4 * i + 4].try_into().unwrap())).collect();
    assert!(winners.iter().all(|&w| (0..4).contains(&w)), "all sections ran: {winners:?}");
}

/// `single` runs on exactly one thread.
#[test]
fn single_region_if_master() {
    let src = r#"
__global__ void sing(int *count) {
    if (omp_get_thread_num() == 0)
        cudadev_single_reset();
    cudadev_barrier();
    if (cudadev_single_enter())
        atomicAdd(count, 1);
    cudadev_barrier();
}
"#;
    let dev = fresh_dev();
    let hm = host_arena();
    dev.register_module(compile(src, "sing"));
    let d = dev.device();
    let count = d.mem_alloc(4).unwrap();
    d.memset_d8(count, 0, 4).unwrap();
    dev.launch(&hm, "sing", "sing", [1, 1, 1], [128, 1, 1], vec![count]).unwrap();
    let mut raw = [0u8; 4];
    d.memcpy_d2h(&mut raw, count).unwrap();
    assert_eq!(i32::from_le_bytes(raw), 1);
}

/// Data environment: map/unmap with refcounts, target update.
#[test]
fn data_environment_semantics() {
    use cudadev::MapKind;
    use vmcommon::MemArena;

    let dev = fresh_dev();
    let host = MemArena::new(1 << 16);
    // Host array at offset 256: 16 floats.
    let host_addr = vmcommon::addr::make(vmcommon::addr::Space::Host, 256);
    for i in 0..16u64 {
        host.store_u32(256 + 4 * i, (i as f32).to_bits()).unwrap();
    }

    // map(to) twice: second map must not copy again (refcount bump).
    let d1 = dev.map(&host, host_addr, 64, MapKind::To).unwrap();
    let before = dev.clock.lock().h2d_bytes;
    let d2 = dev.map(&host, host_addr, 64, MapKind::ToFrom).unwrap();
    assert_eq!(d1, d2, "same device buffer for the same host address");
    assert_eq!(dev.clock.lock().h2d_bytes, before, "re-map must not re-copy");
    assert_eq!(dev.live_mappings(), 1);

    // Mutate on the device, then target update from(...) refreshes host.
    let device = dev.device();
    device.global.store_u32(vmcommon::addr::offset(d1), 99.0f32.to_bits()).unwrap();
    dev.update(&host, host_addr, 64, false).unwrap();
    assert_eq!(f32::from_bits(host.load_u32(256).unwrap()), 99.0);

    // First unmap: refcount 2→1, buffer stays.
    dev.unmap(&host, host_addr, MapKind::From).unwrap();
    assert_eq!(dev.live_mappings(), 1);
    // Second unmap: copy-out (tofrom was requested) and free.
    device.global.store_u32(vmcommon::addr::offset(d1), 123.0f32.to_bits()).unwrap();
    dev.unmap(&host, host_addr, MapKind::From).unwrap();
    assert_eq!(dev.live_mappings(), 0);
    assert_eq!(f32::from_bits(host.load_u32(256).unwrap()), 123.0);
    // The governor parks the zero-refcount buffer in its LRU cache for
    // transfer reuse; trimming it must leave only the lock area.
    assert_eq!(dev.cached_bytes(), 64, "unmapped buffer is cached, not freed");
    dev.trim_cache().unwrap();
    assert_eq!(device.mem_in_use(), vmcommon::BlockAllocator::ALIGN, "only the lock area remains");
}

/// Lazy initialization: the device must not exist until first use (§4.2.1).
#[test]
fn lazy_device_initialization() {
    let dev = fresh_dev();
    assert!(!dev.is_initialized());
    let _ = dev.device();
    assert!(dev.is_initialized());
}

/// Loading phase via the disk: cubin direct load and PTX JIT + cache.
#[test]
fn load_module_from_disk_both_modes() {
    let src = "__global__ void k(float *a) { a[threadIdx.x] = 2.0f; }";
    let base = std::env::temp_dir().join(format!("cudadev-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let kdir = base.join("kernels");
    std::fs::create_dir_all(&kdir).unwrap();

    // cubin artifact.
    let nv = nvccsim::Nvcc::new(nvccsim::BinMode::Cubin, &kdir, exports());
    nv.compile_kernel_source("mod_cubin", src).unwrap();
    // ptx artifact.
    let nv = nvccsim::Nvcc::new(nvccsim::BinMode::Ptx, &kdir, vec![]);
    nv.compile_kernel_source("mod_ptx", src).unwrap();

    let dev = CudaDev::new(CudaDevConfig {
        global_mem: 8 << 20,
        kernel_dir: kdir,
        jit_cache_dir: base.join("jit"),
        exec_mode: ExecMode::Functional,
        ..Default::default()
    });
    let d = dev.device();
    let a = d.mem_alloc(4 * 32).unwrap();

    let hm = host_arena();
    dev.launch(&hm, "mod_cubin", "k", [1, 1, 1], [32, 1, 1], vec![a]).unwrap();
    dev.launch(&hm, "mod_ptx", "k", [1, 1, 1], [32, 1, 1], vec![a]).unwrap();
    let clk = dev.clock.lock();
    assert_eq!(clk.jit_compiles, 1, "PTX path must JIT once");
    assert_eq!(clk.launches, 2);
    drop(clk);
    let _ = std::fs::remove_dir_all(&base);
}
