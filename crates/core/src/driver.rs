//! The `ompicc` compilation chain (Fig. 2 of the paper):
//!
//! ```text
//! source (.c with OpenMP)
//!   → transformation & analysis      (parse, sema, translate)
//!   → code generation                (host program + GPU kernel files)
//!   → nvcc on each kernel file       (nvccsim, PTX or cubin mode)
//!   → host "executable"              (the lowered host program, run by
//!                                     the interpreter + runtime libraries)
//! ```

use std::path::PathBuf;

use minic::Program;
use nvccsim::BinMode;

use crate::transform::{KernelFile, Pipeline, Translation};

/// Driver error.
#[derive(Debug)]
pub enum OmpiccError {
    Frontend(String),
    Translate(crate::analyze::TransError),
    Nvcc(nvccsim::NvccError),
    Io(std::io::Error),
}

impl std::fmt::Display for OmpiccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OmpiccError::Frontend(m) => write!(f, "ompicc frontend: {m}"),
            OmpiccError::Translate(e) => write!(f, "ompicc: {e}"),
            OmpiccError::Nvcc(e) => write!(f, "ompicc (nvcc): {e}"),
            OmpiccError::Io(e) => write!(f, "ompicc io: {e}"),
        }
    }
}

impl std::error::Error for OmpiccError {}

impl From<crate::analyze::TransError> for OmpiccError {
    fn from(e: crate::analyze::TransError) -> Self {
        OmpiccError::Translate(e)
    }
}

impl From<nvccsim::NvccError> for OmpiccError {
    fn from(e: nvccsim::NvccError) -> Self {
        OmpiccError::Nvcc(e)
    }
}

impl From<std::io::Error> for OmpiccError {
    fn from(e: std::io::Error) -> Self {
        OmpiccError::Io(e)
    }
}

/// A fully compiled application.
pub struct CompiledApp {
    /// The lowered, re-analyzed host program.
    pub host: Program,
    pub host_info: minic::ProgramInfo,
    /// Pretty-printed lowered host source (diagnostics / golden tests).
    pub host_text: String,
    pub kernels: Vec<KernelFile>,
    /// Where the kernel binaries were written.
    pub kernel_dir: PathBuf,
    /// Binary mode used.
    pub mode: BinMode,
}

/// The ompicc driver.
pub struct Ompicc {
    /// Kernel binary mode; the paper's default is cubin.
    pub mode: BinMode,
    /// Working directory: kernel sources land in `<dir>/src`, binaries in
    /// `<dir>/kernels`.
    pub work_dir: PathBuf,
    /// Prefix for outlined kernel module names. Empty for standalone
    /// compiles; the batch server compiles every tenant program into one
    /// shared kernel directory and prefixes each with a unique program id
    /// so two programs' `k0_main` modules cannot collide.
    pub module_prefix: String,
}

impl Ompicc {
    pub fn new(work_dir: impl Into<PathBuf>) -> Ompicc {
        Ompicc { mode: BinMode::Cubin, work_dir: work_dir.into(), module_prefix: String::new() }
    }

    pub fn with_mode(mut self, mode: BinMode) -> Ompicc {
        self.mode = mode;
        self
    }

    /// Namespace this compile's kernel modules (`<prefix>k0_main`, ...).
    pub fn with_module_prefix(mut self, prefix: impl Into<String>) -> Ompicc {
        self.module_prefix = prefix.into();
        self
    }

    pub fn kernel_dir(&self) -> PathBuf {
        self.work_dir.join("kernels")
    }

    /// Compile an OpenMP C source into a runnable application.
    pub fn compile(&self, src: &str) -> Result<CompiledApp, OmpiccError> {
        // Frontend.
        let mut prog = minic::parse(src).map_err(|e| OmpiccError::Frontend(e.to_string()))?;
        minic::analyze(&mut prog).map_err(|e| OmpiccError::Frontend(e.to_string()))?;

        // Transformation.
        let pipeline = Pipeline::new().with_module_prefix(self.module_prefix.clone());
        let (Translation { mut host, kernels }, _) = pipeline.run(&prog)?;

        // Re-analyze the lowered host program.
        let host_info = minic::analyze(&mut host)
            .map_err(|e| OmpiccError::Frontend(format!("lowered host program: {e}")))?;
        let host_text = minic::pretty::program(&host);

        // Kernel files → .cu on disk → nvcc.
        let src_dir = self.work_dir.join("src");
        std::fs::create_dir_all(&src_dir)?;
        let kdir = self.kernel_dir();
        std::fs::create_dir_all(&kdir)?;
        let nvcc = nvccsim::Nvcc::new(self.mode, &kdir, cudadev::exports());
        for k in &kernels {
            let cu = src_dir.join(format!("{}.cu", k.module_name));
            std::fs::write(&cu, &k.c_text)?;
            nvcc.compile_kernel_file(&cu)?;
        }

        Ok(CompiledApp { host, host_info, host_text, kernels, kernel_dir: kdir, mode: self.mode })
    }
}

/// Compile a pure CUDA-dialect application (the comparison baseline of the
/// paper's evaluation): `__global__` kernels are compiled into one module,
/// the remaining host code runs with `cudaMalloc`/`cudaMemcpy`/launch
/// hooks.
pub struct CudaCc {
    pub mode: BinMode,
    pub work_dir: PathBuf,
}

/// A compiled CUDA application.
pub struct CompiledCudaApp {
    pub host: Program,
    pub host_info: minic::ProgramInfo,
    /// The kernel module name (all kernels in one module).
    pub module_name: String,
    pub kernel_dir: PathBuf,
}

impl CudaCc {
    pub fn new(work_dir: impl Into<PathBuf>) -> CudaCc {
        CudaCc { mode: BinMode::Cubin, work_dir: work_dir.into() }
    }

    /// Split the source into device and host parts, compile the device
    /// part, keep the host part for interpretation (this is what the real
    /// nvcc driver does with a `.cu` file).
    pub fn compile(&self, src: &str, name: &str) -> Result<CompiledCudaApp, OmpiccError> {
        let mut prog = minic::parse(src).map_err(|e| OmpiccError::Frontend(e.to_string()))?;
        minic::analyze(&mut prog).map_err(|e| OmpiccError::Frontend(e.to_string()))?;

        use minic::ast::Item;
        let mut device_items = Vec::new();
        let mut host_items = Vec::new();
        for item in prog.items {
            match item {
                Item::Func(f) if f.sig.quals.global || f.sig.quals.device => {
                    device_items.push(Item::Func(f))
                }
                other => host_items.push(other),
            }
        }
        // The host part needs prototypes of kernels for launch sites.
        for item in &device_items {
            if let Item::Func(f) = item {
                if f.sig.quals.global {
                    host_items.insert(0, Item::Proto(f.sig.clone()));
                }
            }
        }

        let kdir = self.work_dir.join("kernels");
        std::fs::create_dir_all(&kdir)?;
        let device_prog = Program { items: device_items };
        let cu_text = minic::pretty::program(&device_prog);
        let src_dir = self.work_dir.join("src");
        std::fs::create_dir_all(&src_dir)?;
        std::fs::write(src_dir.join(format!("{name}.cu")), &cu_text)?;
        let nvcc = nvccsim::Nvcc::new(self.mode, &kdir, cudadev::exports());
        nvcc.compile_kernel_source(name, &cu_text)?;

        let mut host = Program { items: host_items };
        let host_info = minic::analyze(&mut host)
            .map_err(|e| OmpiccError::Frontend(format!("cuda host program: {e}")))?;
        Ok(CompiledCudaApp { host, host_info, module_name: name.to_string(), kernel_dir: kdir })
    }
}
