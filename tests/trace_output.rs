//! Observability integration tests: the Chrome-trace export of a
//! two-device run with injected faults (retry spans nested under launches,
//! fallback attributed to the host process), the per-device profile table,
//! and the `OMPI_TRACE` environment-variable path.

use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

/// Two offloaded loops pinned to devices 0 and 1 (saxpy-shaped bodies).
const TWO_DEV: &str = r#"
int main() {
    int n = 256;
    float a[256]; float b[256];
    for (int i = 0; i < n; i++) { a[i] = 1.0f; b[i] = 2.0f; }
    #pragma omp target teams distribute parallel for device(0) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = 2.0f * a[i] + 1.0f;
    #pragma omp target teams distribute parallel for device(1) map(tofrom: b[0:n])
    for (int i = 0; i < n; i++)
        b[i] = 2.0f * b[i] + 1.0f;
    for (int i = 0; i < n; i++) {
        if (a[i] != 3.0f) return 1;
        if (b[i] != 5.0f) return 2;
    }
    return 0;
}
"#;

fn compile(tag: &str) -> ompi_nano::CompiledApp {
    let dir = std::env::temp_dir().join(format!("ompinano-trace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ompicc::new(&dir).compile(TWO_DEV).unwrap()
}

/// Events of the parsed trace array with the given `ph` code.
fn events_with_ph<'a>(arr: &'a [obs::Json], ph: &str) -> Vec<&'a obs::Json> {
    arr.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph)).collect()
}

fn num(e: &obs::Json, key: &str) -> f64 {
    e.get(key).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("event missing `{key}`"))
}

fn name_of(e: &obs::Json) -> &str {
    e.get("name").and_then(|v| v.as_str()).unwrap_or("")
}

/// The golden scenario: device 0 takes one transient launch fault (retried,
/// then succeeds), device 1 faults terminally on launch (its region falls
/// back to the host). The exported Chrome trace must have one process per
/// device (plus the host), the retry span nested inside device 0's launch
/// span, and the fallback span on the host process.
#[test]
fn chrome_trace_of_faulty_two_device_run() {
    let app = compile("golden");
    let cfg = RunnerConfig {
        num_devices: 2,
        fault_spec: Some("dev0:launch@1x1,dev1:launch@1x*".to_string()),
        obs: Some(obs::Obs::enabled()),
        ..Default::default()
    };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(!runner.device_broken_at(0), "one transient fault must not latch device 0");
    assert!(runner.device_broken_at(1), "terminal faults must latch device 1");

    let path =
        std::env::temp_dir().join(format!("ompinano-trace-golden-{}.json", std::process::id()));
    runner.write_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let parsed = obs::json::parse(&text).expect("trace must be valid JSON");
    let arr = parsed.as_array().expect("Chrome trace array form");
    assert!(!arr.is_empty());

    // One named process per device, plus the host shim.
    let meta = events_with_ph(arr, "M");
    let named: std::collections::BTreeSet<u64> =
        meta.iter().map(|e| num(e, "pid") as u64).collect();
    assert_eq!(named, [0u64, 1, 2].into_iter().collect(), "pids 0,1 = devices, 2 = host");
    // Metadata is hoisted to the front of the array.
    assert_eq!(name_of(&arr[0]), "process_name");

    // Device 0: the retry X event must nest inside the launch B/E span on
    // the driver track (tid 0).
    let begins = events_with_ph(arr, "B");
    let launch_b = *begins
        .iter()
        .find(|e| num(e, "pid") as u64 == 0 && name_of(e).starts_with("launch "))
        .expect("device 0 must record a launch span");
    let lb_ts = num(launch_b, "ts");
    let launch_e = events_with_ph(arr, "E")
        .into_iter()
        .filter(|e| num(e, "pid") as u64 == 0 && num(e, "tid") as u64 == 0)
        .map(|e| num(e, "ts"))
        .filter(|&ts| ts >= lb_ts)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(launch_e > lb_ts, "launch span must close after it opens");
    let retry = events_with_ph(arr, "X")
        .into_iter()
        .find(|e| num(e, "pid") as u64 == 0 && name_of(e) == "retry")
        .expect("the transient fault on device 0 must record a retry event");
    let r_ts = num(retry, "ts");
    let r_end = r_ts + num(retry, "dur");
    assert!(
        r_ts >= lb_ts && r_end <= launch_e + 1e-6,
        "retry [{r_ts}, {r_end}]µs must nest inside launch [{lb_ts}, {launch_e}]µs"
    );
    // The fault itself is an instant on device 0.
    assert!(events_with_ph(arr, "i")
        .iter()
        .any(|e| num(e, "pid") as u64 == 0 && name_of(e) == "fault"));

    // Device 1's region fell back: a fallback span on the host process.
    let fb = begins
        .iter()
        .find(|e| name_of(e) == "host fallback")
        .expect("the failed region must record a host-fallback span");
    assert_eq!(num(fb, "pid") as u64, 2, "fallback spans belong to the host process");

    // Device 0 still ran its kernel: an X event on its process.
    assert!(events_with_ph(arr, "X")
        .iter()
        .any(|e| num(e, "pid") as u64 == 0 && name_of(e).starts_with("kernel ")));

    // Every B has a matching E per (pid, tid) track.
    for pid in 0u64..3 {
        let b = begins.iter().filter(|e| num(e, "pid") as u64 == pid).count();
        let e = events_with_ph(arr, "E").iter().filter(|e| num(e, "pid") as u64 == pid).count();
        assert_eq!(b, e, "unbalanced spans on pid {pid}");
    }
}

/// The profile table attributes each device's simulated time to phases
/// whose rows sum to that device's aggregate `DevClock` total.
#[test]
fn profile_rows_sum_to_device_clock_totals() {
    let app = compile("profile");
    let cfg = RunnerConfig { num_devices: 2, obs: Some(obs::Obs::enabled()), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));

    let rows = runner.registry().profile_rows();
    assert_eq!(rows.len(), 3, "dev0, dev1, host");
    for (idx, row) in rows.iter().enumerate() {
        let clk = runner.dev_clock_of(idx).unwrap();
        assert!(
            (row.total_s() - clk.total_s()).abs() < 1e-12,
            "row `{}` total {} != device {idx} clock total {}",
            row.label,
            row.total_s(),
            clk.total_s()
        );
        // The row's phases are exactly the clock's phase breakdown.
        let phases = row.init_s
            + row.modload_s
            + row.h2d_s
            + row.kernel_s
            + row.d2h_s
            + row.retry_backoff_s
            + row.fallback_s;
        assert!((phases - row.total_s()).abs() < 1e-15);
    }
    // Offload rows sum to the aggregate clock total; devices did real work.
    let agg = runner.dev_clock();
    let offload_sum: f64 = rows[..2].iter().map(|r| r.total_s()).sum();
    assert!((offload_sum - agg.total_s()).abs() < 1e-12);
    assert!(rows[0].total_s() > 0.0 && rows[1].total_s() > 0.0);
    assert_eq!(rows[0].launches, 1);
    assert_eq!(rows[1].launches, 1);

    // The rendered table carries one line per device.
    let table = runner.profile_table();
    for label in ["dev0", "dev1", "host"] {
        assert!(table.contains(label), "profile table missing `{label}`:\n{table}");
    }
}

/// `OMPI_TRACE=path` (no explicit sink) makes the runner write the trace
/// on drop. Serial with respect to the other tests in this binary: they
/// all pass explicit sinks, which ignore the environment.
#[test]
fn ompi_trace_env_var_writes_trace_on_drop() {
    let path = std::env::temp_dir().join(format!("ompinano-trace-env-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("OMPI_TRACE", &path);
    let app = compile("envvar");
    {
        let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
        assert_eq!(runner.run_main().unwrap(), Value::I32(0));
        // Trace written on drop.
    }
    std::env::remove_var("OMPI_TRACE");

    let text = std::fs::read_to_string(&path).expect("runner drop must write OMPI_TRACE file");
    let _ = std::fs::remove_file(&path);
    let parsed = obs::json::parse(&text).expect("env-var trace must be valid JSON");
    let arr = parsed.as_array().unwrap();
    assert!(
        arr.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")),
        "trace from a real run must contain complete events"
    );
}
