//! Always-on flight recorder: a bounded ring of the most recent spans,
//! instants and metric deltas, dumped as a JSONL post-mortem artifact.
//!
//! Chrome traces answer "what happened over the whole run" but only when
//! tracing was enabled up front; a latched device on an untraced run used
//! to leave no record at all. The flight recorder closes that gap: every
//! [`crate::Tracer`] event and [`crate::Metrics`] delta is also written
//! into a fixed-capacity ring (oldest entries overwritten), regardless of
//! whether the tracer is enabled — so the *tail* of events leading up to a
//! failure is always available at near-zero cost.
//!
//! Dumps are written by [`FlightRecorder::post_mortem`], which fires at
//! most once per recorder (first trigger wins): `cudadev` calls it when a
//! watchdog timeout is charged and when the circuit breaker latches a
//! device, and the `core` runner calls it at drop. A dump is only written
//! when a path was configured — normally via the `OMPI_FLIGHT_DUMP=path`
//! environment variable, read once at [`crate::Obs`] construction — so
//! ordinary runs and tests never touch the filesystem.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use vmcommon::sync::Mutex;

/// Ring capacity: enough to cover a full recovery storm (resets, probes,
/// replays and the latch) with the preceding region/transfer context.
pub const FLIGHT_CAPACITY: usize = 256;

/// One ring entry. `kind` is the Chrome phase code for tracer events
/// (`"B"`/`"E"`/`"X"`/`"i"`) or `"ctr"`/`"obs"` for metric deltas and
/// histogram observations.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Monotonically increasing sequence number (never resets, so gaps
    /// after wrap-around are visible).
    pub seq: u64,
    pub kind: &'static str,
    pub pid: u64,
    pub tid: u64,
    /// Simulated seconds (0 for metric deltas, which carry no clock).
    pub ts_s: f64,
    pub name: String,
    pub cat: &'static str,
    /// Compact `key=value` rendering of the event's payload.
    pub detail: String,
}

struct Ring {
    buf: Vec<FlightEvent>,
    next_seq: u64,
}

/// The bounded ring plus its dump trigger. Shared (via `Arc`) between the
/// tracer and the metrics registry of one [`crate::Obs`] handle.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    dump_path: Option<PathBuf>,
    dumped: AtomicBool,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_path(None)
    }
}

impl FlightRecorder {
    /// A recorder with an explicit dump path (None = record only).
    pub fn with_path(dump_path: Option<PathBuf>) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring { buf: Vec::with_capacity(64), next_seq: 0 }),
            dump_path,
            dumped: AtomicBool::new(false),
        }
    }

    /// A recorder whose dump path comes from `OMPI_FLIGHT_DUMP`.
    pub fn from_env() -> FlightRecorder {
        let path = std::env::var("OMPI_FLIGHT_DUMP")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from);
        FlightRecorder::with_path(path)
    }

    /// Append one entry, overwriting the oldest once the ring is full.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: &'static str,
        pid: u64,
        tid: u64,
        ts_s: f64,
        name: &str,
        cat: &'static str,
        detail: String,
    ) {
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let ev = FlightEvent { seq, kind, pid, tid, ts_s, name: name.to_string(), cat, detail };
        if ring.buf.len() < FLIGHT_CAPACITY {
            ring.buf.push(ev);
        } else {
            let at = (seq % FLIGHT_CAPACITY as u64) as usize;
            ring.buf[at] = ev;
        }
    }

    /// Entries recorded so far (capped at [`FLIGHT_CAPACITY`]).
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the ring, oldest entry first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock();
        let n = ring.buf.len();
        if n < FLIGHT_CAPACITY {
            return ring.buf.clone();
        }
        let split = (ring.next_seq % FLIGHT_CAPACITY as u64) as usize;
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&ring.buf[split..]);
        out.extend_from_slice(&ring.buf[..split]);
        out
    }

    /// The ring as JSONL: one event object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&format!(
                "{{\"seq\":{},\"kind\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.6},\"name\":",
                ev.seq, ev.kind, ev.pid, ev.tid, ev.ts_s
            ));
            crate::json::escape_into(&mut out, &ev.name);
            out.push_str(",\"cat\":");
            crate::json::escape_into(&mut out, ev.cat);
            out.push_str(",\"detail\":");
            crate::json::escape_into(&mut out, &ev.detail);
            out.push_str("}\n");
        }
        out
    }

    /// Dump the ring to the configured path, once: the first trigger
    /// (watchdog timeout, breaker latch, runner drop) wins and later calls
    /// are no-ops, so the artifact keeps the tail that led up to the first
    /// failure. Returns the path when a dump was written. A recorder with
    /// no configured path records `reason` in the ring but never touches
    /// the filesystem.
    pub fn post_mortem(&self, reason: &str) -> Option<&Path> {
        let path = self.dump_path.as_deref()?;
        if self.dumped.swap(true, Ordering::SeqCst) {
            return None;
        }
        self.record("i", 0, 0, 0.0, "flight.dump", "flight", format!("reason={reason}"));
        if let Err(e) = std::fs::write(path, self.to_jsonl()) {
            eprintln!("flight recorder: failed to write {}: {e}", path.display());
            return None;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_entries_in_order() {
        let f = FlightRecorder::default();
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            f.record("i", 0, 0, i as f64, &format!("ev{i}"), "test", String::new());
        }
        let evs = f.events();
        assert_eq!(evs.len(), FLIGHT_CAPACITY);
        assert_eq!(evs[0].name, "ev10");
        assert_eq!(evs.last().unwrap().name, format!("ev{}", FLIGHT_CAPACITY + 9));
        // Sequence numbers stay strictly increasing across the wrap.
        assert!(evs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }

    #[test]
    fn jsonl_lines_parse_and_escape() {
        let f = FlightRecorder::default();
        f.record("X", 1, 2, 0.5, "weird \"name\"\n", "fault", "site=h2d".into());
        let jsonl = f.to_jsonl();
        for line in jsonl.lines() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("name").unwrap().as_str(), Some("weird \"name\"\n"));
            assert_eq!(v.get("pid").unwrap().as_f64(), Some(1.0));
        }
    }

    #[test]
    fn post_mortem_first_trigger_wins() {
        let dir = std::env::temp_dir().join("ompi-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dump-{}.jsonl", std::process::id()));
        let f = FlightRecorder::with_path(Some(path.clone()));
        f.record("i", 0, 0, 0.0, "before", "test", String::new());
        assert!(f.post_mortem("first").is_some());
        f.record("i", 0, 0, 0.0, "after", "test", String::new());
        assert!(f.post_mortem("second").is_none());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"before\""));
        assert!(text.contains("reason=first"));
        assert!(!text.contains("\"after\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn no_path_means_no_dump() {
        let f = FlightRecorder::default();
        f.record("i", 0, 0, 0.0, "x", "test", String::new());
        assert!(f.post_mortem("anything").is_none());
    }
}
