//! The OMPi transformation phase (§3): AST→AST rewriting of OpenMP
//! constructs, with two transformation sets:
//!
//! * the **GPU set** — `target`-family constructs are outlined into CUDA C
//!   kernel functions. Combined `target teams distribute parallel for`
//!   constructs become grid launches with the two-phase
//!   `get_distribute_chunk` / `get_*_chunk` iteration distribution (§3.1);
//!   regions with stand-alone `parallel` constructs get the master/worker
//!   scheme of §3.2 (Fig. 3).
//! * the **host set** — host-side `parallel`/worksharing constructs are
//!   outlined into host thread functions driven by the `hostomp` runtime;
//!   data-environment directives become cudadev runtime calls.
//!
//! The rewritten host program calls runtime entry points by name
//! (`__dev_*`, `ort_*`), which the [`crate::runner`] wires to the real
//! runtimes through interpreter hooks.

use std::collections::HashMap;

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Clause, DirKind, Directive, MapKind as OmpMapKind, RedOp, SchedKind};
use minic::pretty;
use minic::sema::FrameInfo;
use minic::token::Pos;
use minic::types::{ArrayLen, Ty};

use crate::analyze::*;

/// One resolved `map` clause item:
/// `(name, kind, base address expr, byte-length expr, mapped type)`.
type MapItem = (String, OmpMapKind, Expr, Expr, Ty);

/// A generated kernel file.
#[derive(Clone, Debug)]
pub struct KernelFile {
    pub id: u32,
    /// Module name (= file stem of the emitted `.cu`).
    pub module_name: String,
    /// Entry kernel function.
    pub kernel_fn: String,
    /// CUDA C source text (the paper's separate kernel file, §3.3).
    pub c_text: String,
    /// Whether it uses the master/worker scheme.
    pub master_worker: bool,
}

/// The result of translating one program.
#[derive(Clone, Debug)]
pub struct Translation {
    /// The lowered host program (pragma-free; calls runtime functions).
    pub host: Program,
    pub kernels: Vec<KernelFile>,
}

/// Translate an analyzed program.
pub fn translate(prog: &Program) -> TResult<Translation> {
    let mut tr = Translator {
        prog,
        kernels: Vec::new(),
        host_fns: Vec::new(),
        next_kernel: 0,
        next_hostfn: 0,
        next_tmp: 0,
        critical_ids: HashMap::new(),
    };
    let mut items = Vec::new();
    for item in &prog.items {
        match item {
            Item::Func(f) => {
                let mut body_stmts = Vec::new();
                let ctx =
                    HostCtx { fname: f.sig.name.clone(), frame: &f.frame, in_parallel: false };
                for s in &f.body.stmts {
                    body_stmts.push(tr.host_stmt(s, &ctx)?);
                }
                let mut nf = f.clone();
                nf.body = Block { stmts: body_stmts };
                nf.frame = FrameInfo::default(); // re-sema will rebuild
                items.push(Item::Func(nf));
            }
            Item::DeclareTarget(_) => {} // consumed (functions already marked)
            other => items.push(other.clone()),
        }
    }
    // Outlined host thread functions go at the end.
    items.extend(tr.host_fns.drain(..).map(Item::Func));
    Ok(Translation { host: Program { items }, kernels: tr.kernels })
}

struct HostCtx<'f> {
    fname: String,
    frame: &'f FrameInfo,
    /// Inside an outlined host parallel region (worksharing context).
    #[allow(dead_code)]
    in_parallel: bool,
}

/// How a free variable enters a kernel / thread function.
// The `Mapped` variant dominates in practice, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum VarRole {
    /// Mapped pointer: kernel parameter of decayed pointer type; launch arg
    /// is the host section base address.
    Mapped {
        #[allow(dead_code)]
        kind: OmpMapKind,
        base: Expr,
        #[allow(dead_code)]
        bytes: Expr,
        param_ty: Ty,
    },
    /// Scalar passed by value.
    FirstPrivate,
    /// Reduction accumulator.
    Reduction(RedOp),
}

struct Translator<'p> {
    prog: &'p Program,
    kernels: Vec<KernelFile>,
    host_fns: Vec<FuncDef>,
    next_kernel: u32,
    next_hostfn: u32,
    next_tmp: u32,
    critical_ids: HashMap<String, i64>,
}

fn err(pos: Pos, msg: impl Into<String>) -> TransError {
    TransError { pos, msg: msg.into() }
}

fn sizeof_expr(ty: &Ty) -> Expr {
    b::e(ExprKind::SizeofTy(ty.clone()))
}

fn long_cast(e: Expr) -> Expr {
    b::cast(Ty::Long, e)
}

impl<'p> Translator<'p> {
    fn tmp(&mut self, base: &str) -> String {
        let n = self.next_tmp;
        self.next_tmp += 1;
        format!("__{base}{n}")
    }

    fn critical_id(&mut self, name: &str) -> i64 {
        let next = self.critical_ids.len() as i64;
        *self.critical_ids.entry(name.to_string()).or_insert(next)
    }

    // ================================================= host transformation

    fn host_stmt(&mut self, s: &Stmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        match s {
            Stmt::Omp(o) => self.host_directive(o, ctx),
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.host_stmt(st, ctx)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.host_stmt(then_s, ctx)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.host_stmt(e, ctx)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.host_stmt(body, ctx)?),
            }),
            Stmt::While { cond, body } => {
                Ok(Stmt::While { cond: cond.clone(), body: Box::new(self.host_stmt(body, ctx)?) })
            }
            Stmt::DoWhile { body, cond } => {
                Ok(Stmt::DoWhile { body: Box::new(self.host_stmt(body, ctx)?), cond: cond.clone() })
            }
            other => Ok(other.clone()),
        }
    }

    fn host_directive(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;
        match dir.kind {
            k if k.is_target() => self.lower_target(o, ctx),
            DirKind::TargetData => self.lower_target_data(o, ctx),
            DirKind::TargetEnterData => Ok(self.map_calls(dir, ctx, /*enter*/ true)?),
            DirKind::TargetExitData => Ok(self.map_calls(dir, ctx, false)?),
            DirKind::TargetUpdate => self.lower_target_update(dir, ctx),
            DirKind::Parallel | DirKind::ParallelFor => self.lower_host_parallel(o, ctx),
            DirKind::For => self.lower_host_for(o, ctx),
            DirKind::Sections => self.lower_host_sections(o, ctx),
            DirKind::Single => {
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                let mut stmts = vec![Stmt::If {
                    cond: b::call("ort_single", vec![]),
                    then_s: Box::new(body),
                    else_s: None,
                }];
                if !dir.clause_nowait() {
                    stmts.push(b::expr_stmt(b::call("ort_barrier", vec![])));
                }
                Ok(b::block(stmts))
            }
            DirKind::Master => {
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(body),
                    else_s: None,
                })
            }
            DirKind::Critical => {
                let name = dir
                    .clauses
                    .iter()
                    .find_map(|c| match c {
                        Clause::Name(n) => Some(n.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(b::block(vec![
                    b::expr_stmt(b::call(
                        "ort_critical_enter",
                        vec![b::e(ExprKind::StrLit(name.clone()))],
                    )),
                    body,
                    b::expr_stmt(b::call("ort_critical_exit", vec![b::e(ExprKind::StrLit(name))])),
                ]))
            }
            DirKind::Barrier => Ok(b::expr_stmt(b::call("ort_barrier", vec![]))),
            DirKind::Teams
            | DirKind::TeamsDistribute
            | DirKind::TeamsDistributeParallelFor
            | DirKind::Distribute
            | DirKind::DistributeParallelFor => {
                // Host-side teams degenerate to a single team.
                let body = self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?;
                Ok(body)
            }
            DirKind::Section => {
                // Handled by lower_host_sections; a stray section runs inline.
                self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)
            }
            DirKind::DeclareTarget | DirKind::EndDeclareTarget => Ok(Stmt::Empty),
            // All target-family kinds were consumed by the is_target guard.
            _ => unreachable!("target-family directive fell through"),
        }
    }

    /// Map-clause items of a directive → (base address expr, byte-size expr,
    /// kind), resolved against the enclosing frame.
    fn map_items(&mut self, dir: &Directive, ctx: &HostCtx<'_>, pos: Pos) -> TResult<Vec<MapItem>> {
        let mut out = Vec::new();
        for (kind, item) in dir.maps() {
            let slot = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == item.name)
                .ok_or_else(|| err(pos, format!("map of unknown variable `{}`", item.name)))?;
            let ty = slot.ty.clone();
            let decayed = ty.decayed();
            let (base, bytes, param_ty) = if let Ty::Ptr(pointee) = &decayed {
                let sec = item.sections.first();
                let lower = sec.and_then(|s| s.lower.clone()).unwrap_or_else(|| b::int(0));
                let length = match sec.and_then(|s| s.length.clone()) {
                    Some(l) => l,
                    None => match &ty {
                        // Whole array object.
                        Ty::Array(_, ArrayLen::Const(n)) => b::int(*n as i64),
                        Ty::Array(_, ArrayLen::Expr(e)) => (**e).clone(),
                        _ => {
                            return Err(err(
                                pos,
                                format!(
                                    "map of pointer `{}` needs an array section (e.g. {}[0:n])",
                                    item.name, item.name
                                ),
                            ))
                        }
                    },
                };
                let base = b::bin(BinOp::Add, b::ident(&item.name), lower);
                let bytes = b::bin(BinOp::Mul, long_cast(length), sizeof_expr(pointee));
                (base, bytes, decayed.clone())
            } else {
                // Scalar mapped by address.
                let base = b::addr_of(b::ident(&item.name));
                let bytes = sizeof_expr(&ty);
                (base, bytes, Ty::Ptr(Box::new(ty.clone())))
            };
            out.push((item.name.clone(), kind, base, bytes, param_ty));
        }
        Ok(out)
    }

    fn map_kind_code(kind: OmpMapKind) -> i64 {
        match kind {
            OmpMapKind::To => 0,
            OmpMapKind::From => 1,
            OmpMapKind::ToFrom => 2,
            OmpMapKind::Alloc => 3,
            OmpMapKind::Release => 4,
            OmpMapKind::Delete => 5,
        }
    }

    /// Stand-alone enter/exit data.
    fn map_calls(&mut self, dir: &Directive, ctx: &HostCtx<'_>, enter: bool) -> TResult<Stmt> {
        let items = self.map_items(dir, ctx, Pos::default())?;
        let mut stmts = Vec::new();
        for (_, kind, base, bytes, _) in items {
            let code = b::int(Self::map_kind_code(kind));
            if enter {
                stmts.push(b::expr_stmt(b::call("__dev_map", vec![base, bytes, code])));
            } else {
                stmts.push(b::expr_stmt(b::call("__dev_unmap", vec![base, code])));
            }
        }
        Ok(b::block(stmts))
    }

    fn lower_target_update(&mut self, dir: &Directive, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let mut stmts = Vec::new();
        for c in &dir.clauses {
            let (items, to_device) = match c {
                Clause::UpdateTo(items) => (items, true),
                Clause::UpdateFrom(items) => (items, false),
                _ => continue,
            };
            for item in items {
                let slot =
                    ctx.frame.slots.iter().find(|sl| sl.name == item.name).ok_or_else(|| {
                        err(Pos::default(), format!("update of unknown variable `{}`", item.name))
                    })?;
                let ty = slot.ty.clone();
                let decayed = ty.decayed();
                let (base, bytes) = if let Ty::Ptr(pointee) = &decayed {
                    let sec = item.sections.first();
                    let lower = sec.and_then(|s| s.lower.clone()).unwrap_or_else(|| b::int(0));
                    let length = sec
                        .and_then(|s| s.length.clone())
                        .or_else(|| match &ty {
                            Ty::Array(_, ArrayLen::Const(n)) => Some(b::int(*n as i64)),
                            Ty::Array(_, ArrayLen::Expr(e)) => Some((**e).clone()),
                            _ => None,
                        })
                        .ok_or_else(|| {
                            err(
                                Pos::default(),
                                format!("update of `{}` needs an array section", item.name),
                            )
                        })?;
                    (
                        b::bin(BinOp::Add, b::ident(&item.name), lower),
                        b::bin(BinOp::Mul, long_cast(length), sizeof_expr(pointee)),
                    )
                } else {
                    (b::addr_of(b::ident(&item.name)), sizeof_expr(&ty))
                };
                stmts.push(b::expr_stmt(b::call(
                    "__dev_update",
                    vec![base, bytes, b::int(to_device as i64)],
                )));
            }
        }
        Ok(b::block(stmts))
    }

    fn lower_target_data(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let items = self.map_items(&o.dir, ctx, o.pos)?;
        let mut stmts = Vec::new();
        for (_, kind, base, bytes, _) in &items {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![base.clone(), bytes.clone(), b::int(Self::map_kind_code(*kind))],
            )));
        }
        stmts.push(self.host_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty), ctx)?);
        for (_, kind, base, _, _) in items.iter().rev() {
            stmts.push(b::expr_stmt(b::call(
                "__dev_unmap",
                vec![base.clone(), b::int(Self::map_kind_code(*kind))],
            )));
        }
        Ok(b::block(stmts))
    }

    // ================================================== target offloading

    fn lower_target(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "target without a body"))?;

        let kid = self.next_kernel;
        self.next_kernel += 1;
        let module_name = format!("k{}_{}", kid, ctx.fname);
        let kernel_fn = format!("_kernelFunc{}_{}", kid, ctx.fname);

        // Which lowering does this region need?
        let combined = matches!(
            dir.kind,
            DirKind::TargetTeamsDistributeParallelFor | DirKind::TargetTeamsDistribute
        );
        let dist_only = dir.kind == DirKind::TargetTeamsDistribute;

        // Canonical nest for combined constructs.
        let collapse = dir.clause_collapse();
        let (loops, inner_body) = if combined {
            let (l, bdy) = canonical_nest(body, collapse)?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };

        // Classify free variables.
        let fvs = free_vars(body, ctx.frame);
        let maps = self.map_items(dir, ctx, o.pos)?;
        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates_clause: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        let mut roles: Vec<(String, Ty, VarRole)> = Vec::new();
        for fv in &fvs {
            if loop_vars.contains(&fv.name.as_str()) || privates.contains(&fv.name) {
                continue; // loop vars / privates: fresh locals
            }
            if let Some((op, _)) = reductions.iter().find(|(_, v)| *v == fv.name) {
                roles.push((fv.name.clone(), fv.ty.clone(), VarRole::Reduction(*op)));
                continue;
            }
            if let Some((_, kind, base, bytes, pty)) = maps.iter().find(|(n, ..)| *n == fv.name) {
                // Mapped *scalars* are passed by value (a copy travels with
                // the launch, like OMPi's firstprivate default for scalars);
                // only pointers/arrays become device-buffer parameters.
                if fv.ty.decayed().is_ptr() {
                    roles.push((
                        fv.name.clone(),
                        fv.ty.clone(),
                        VarRole::Mapped {
                            kind: *kind,
                            base: base.clone(),
                            bytes: bytes.clone(),
                            param_ty: pty.clone(),
                        },
                    ));
                } else {
                    roles.push((fv.name.clone(), fv.ty.clone(), VarRole::FirstPrivate));
                }
                continue;
            }
            let decayed = fv.ty.decayed();
            if decayed.is_ptr() && !firstprivates_clause.contains(&fv.name) {
                return Err(err(
                    o.pos,
                    format!(
                        "`{}` is referenced in the target region but has no map clause",
                        fv.name
                    ),
                ));
            }
            roles.push((fv.name.clone(), fv.ty.clone(), VarRole::FirstPrivate));
        }
        // Mapped-but-unreferenced variables still need their data motion:
        // they participate in map/unmap but are not kernel parameters.

        // ---- build the kernel program ----
        let mut kprog = Program { items: Vec::new() };
        // Call-graph closure → __device__ copies.
        for name in call_closure(body, self.prog) {
            let f = self.prog.items.iter().find_map(|i| match i {
                Item::Func(f) if f.sig.name == name => Some(f),
                _ => None,
            });
            if let Some(f) = f {
                if contains_standalone_parallel(&Stmt::Block(f.body.clone())) {
                    return Err(err(
                        o.pos,
                        format!(
                            "function `{name}` called from a kernel contains OpenMP directives"
                        ),
                    ));
                }
                let mut df = f.clone();
                df.sig.quals = FnQuals { global: false, device: true };
                df.frame = FrameInfo::default();
                kprog.items.push(Item::Func(df));
            }
        }

        // Kernel parameters.
        let mut params: Vec<Param> = Vec::new();
        let mut launch_args: Vec<Expr> = Vec::new();
        for (name, _ty, role) in &roles {
            match role {
                VarRole::Mapped { base, param_ty, .. } => {
                    params.push(Param { name: name.clone(), ty: param_ty.clone(), slot: u32::MAX });
                    launch_args.push(base.clone());
                }
                VarRole::FirstPrivate => {
                    params.push(Param { name: name.clone(), ty: _ty.clone(), slot: u32::MAX });
                    launch_args.push(b::ident(name));
                }
                VarRole::Reduction(_) => {
                    params.push(Param {
                        name: format!("__red_{name}"),
                        ty: Ty::Ptr(Box::new(_ty.clone())),
                        slot: u32::MAX,
                    });
                    launch_args.push(b::addr_of(b::ident(name)));
                }
            }
        }

        let master_worker = !combined;
        let mut scalar_writebacks: Vec<String> = Vec::new();
        let mut kbody: Vec<Stmt> = Vec::new();
        // Private-clause locals.
        for pv in &privates {
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *pv)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Int);
            kbody.push(b::decl(pv, ty, None));
        }

        if combined {
            kbody.extend(self.combined_kernel_body(
                &loops,
                &inner_body,
                dir,
                &roles,
                dist_only,
                o.pos,
            )?);
        } else {
            // Mapped scalars with write-back (map(from/tofrom: scalar)):
            // pass an output pointer and have the master store the final
            // value before exiting the target region.
            for (name, kind, _, _, _) in &maps {
                let is_scalar_wb = matches!(kind, OmpMapKind::From | OmpMapKind::ToFrom)
                    && roles
                        .iter()
                        .any(|(n, _, r)| n == name && matches!(r, VarRole::FirstPrivate));
                if is_scalar_wb {
                    let ty = ctx
                        .frame
                        .slots
                        .iter()
                        .find(|sl| sl.name == *name)
                        .map(|sl| sl.ty.clone())
                        .unwrap_or(Ty::Int);
                    params.push(Param {
                        name: format!("__out_{name}"),
                        ty: Ty::Ptr(Box::new(ty)),
                        slot: u32::MAX,
                    });
                    launch_args.push(b::addr_of(b::ident(name)));
                    scalar_writebacks.push(name.clone());
                }
            }
            // `target parallel [for]`: the parallel part becomes an inner
            // stand-alone region so the master/worker scheme handles it.
            let mw_body = match dir.kind {
                DirKind::TargetParallel | DirKind::TargetParallelFor => {
                    let inner_kind = if dir.kind == DirKind::TargetParallel {
                        DirKind::Parallel
                    } else {
                        DirKind::ParallelFor
                    };
                    let forwarded: Vec<Clause> = dir
                        .clauses
                        .iter()
                        .filter(|c| {
                            matches!(
                                c,
                                Clause::NumThreads(_)
                                    | Clause::Schedule { .. }
                                    | Clause::Collapse(_)
                                    | Clause::Private(_)
                                    | Clause::Reduction { .. }
                            )
                        })
                        .cloned()
                        .collect();
                    Stmt::Omp(OmpStmt {
                        dir: Directive { kind: inner_kind, clauses: forwarded },
                        body: Some(Box::new(body.clone())),
                        pos: o.pos,
                    })
                }
                _ => body.clone(),
            };
            kbody.extend(self.master_worker_kernel_body(
                &mw_body,
                &roles,
                &scalar_writebacks,
                o.pos,
                &mut kprog,
            )?);
        }

        let kfun = FuncDef {
            sig: FuncSig {
                name: kernel_fn.clone(),
                ret: Ty::Void,
                params,
                quals: FnQuals { global: true, device: false },
                pos: o.pos,
            },
            body: Block { stmts: kbody },
            frame: FrameInfo::default(),
            declare_target: false,
        };
        kprog.items.push(Item::Func(kfun));
        let c_text = pretty::program(&kprog);
        self.kernels.push(KernelFile {
            id: kid,
            module_name: module_name.clone(),
            kernel_fn: kernel_fn.clone(),
            c_text,
            master_worker,
        });

        // ---- host-side replacement ----
        // Scalars in map clauses were demoted to by-value parameters; only
        // pointer/array items need device buffers.
        let buffer_maps: Vec<_> = maps
            .iter()
            .filter(|(n, ..)| {
                ctx.frame
                    .slots
                    .iter()
                    .find(|sl| sl.name == *n)
                    .map(|sl| sl.ty.decayed().is_ptr())
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let mut stmts: Vec<Stmt> = Vec::new();
        // map entries (region lifetime) — includes mapped-but-unreferenced.
        for (_, kind, base, bytes, _) in &buffer_maps {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![base.clone(), bytes.clone(), b::int(Self::map_kind_code(*kind))],
            )));
        }
        // Written-back mapped scalars need a device buffer.
        for name in &scalar_writebacks {
            stmts.push(b::expr_stmt(b::call(
                "__dev_map",
                vec![
                    b::addr_of(b::ident(name)),
                    sizeof_expr(
                        &ctx.frame
                            .slots
                            .iter()
                            .find(|sl| sl.name == *name)
                            .map(|sl| sl.ty.clone())
                            .unwrap_or(Ty::Int),
                    ),
                    b::int(Self::map_kind_code(OmpMapKind::ToFrom)),
                ],
            )));
        }
        // Reduction scalars: initialize + map tofrom.
        for (name, _, role) in &roles {
            if matches!(role, VarRole::Reduction(_)) {
                stmts.push(b::expr_stmt(b::call(
                    "__dev_map",
                    vec![
                        b::addr_of(b::ident(name)),
                        sizeof_expr(
                            &ctx.frame
                                .slots
                                .iter()
                                .find(|sl| sl.name == *name)
                                .map(|sl| sl.ty.clone())
                                .unwrap_or(Ty::Int),
                        ),
                        b::int(Self::map_kind_code(OmpMapKind::ToFrom)),
                    ],
                )));
            }
        }

        // Launch: __dev_offload("module", "kernel", mw, ndims, tc0, tc1,
        // tc2, teams, threads, args…).
        let ndims = if combined { loops.len() as i64 } else { 0 };
        let mut offload_args: Vec<Expr> = vec![
            b::e(ExprKind::StrLit(module_name.clone())),
            b::e(ExprKind::StrLit(kernel_fn.clone())),
            b::int(master_worker as i64),
            b::int(ndims),
        ];
        for d in 0..3usize {
            if combined && d < loops.len() {
                offload_args.push(long_cast(trip_count_expr(&loops[d])));
            } else {
                offload_args.push(b::int(1));
            }
        }
        offload_args.push(match dir.clause_num_teams() {
            Some(e) => long_cast(e.clone()),
            None => b::int(0),
        });
        offload_args.push(match dir.clause_num_threads() {
            Some(e) => long_cast(e.clone()),
            None => match dir.clause_thread_limit() {
                Some(e) => long_cast(e.clone()),
                None => b::int(0),
            },
        });
        offload_args.extend(launch_args);
        // `__dev_offload` returns 1 when the kernel ran on the device, 0 on
        // a terminal device failure — record the latter in the fallback
        // flag so the region re-executes on the host below.
        let fb_var = format!("__ompi_fb_{kid}");
        stmts.push(b::expr_stmt(b::assign(
            b::ident(&fb_var),
            b::bin(BinOp::Eq, b::call("__dev_offload", offload_args), b::int(0)),
        )));

        // Unmap (reverse order), reductions and written-back scalars last.
        // `__dev_unmap` returns 0 when a needed copy-back was lost (device
        // died between launch and unmap); fold that into the fallback flag
        // with `|` (not `||` — the unmap call must always execute).
        let unmap_into_fb = |stmts: &mut Vec<Stmt>, args: Vec<Expr>, copies_back: bool| {
            let call = b::call("__dev_unmap", args);
            if copies_back {
                stmts.push(b::expr_stmt(b::assign(
                    b::ident(&fb_var),
                    b::bin(BinOp::BitOr, b::ident(&fb_var), b::bin(BinOp::Eq, call, b::int(0))),
                )));
            } else {
                stmts.push(b::expr_stmt(call));
            }
        };
        for name in scalar_writebacks.iter().rev() {
            unmap_into_fb(
                &mut stmts,
                vec![b::addr_of(b::ident(name)), b::int(Self::map_kind_code(OmpMapKind::ToFrom))],
                true,
            );
        }
        for (name, _, role) in roles.iter().rev() {
            if matches!(role, VarRole::Reduction(_)) {
                unmap_into_fb(
                    &mut stmts,
                    vec![
                        b::addr_of(b::ident(name)),
                        b::int(Self::map_kind_code(OmpMapKind::ToFrom)),
                    ],
                    true,
                );
            }
        }
        for (_, kind, base, _, _) in buffer_maps.iter().rev() {
            unmap_into_fb(
                &mut stmts,
                vec![base.clone(), b::int(Self::map_kind_code(*kind))],
                matches!(kind, OmpMapKind::From | OmpMapKind::ToFrom),
            );
        }
        // Graceful degradation (host fallback): guard the offload on device
        // health, and re-execute the region body on the host whenever its
        // results did not reach host memory — `__dev_ok` said the device is
        // down, `__dev_offload` reported a terminal failure, or the device
        // died before any copy-back committed. In all three cases host
        // memory still holds the pre-region state, so re-execution is safe;
        // a loss after a *partial* commit traps instead (see runner.rs).
        let fallback_body = self.host_stmt(body, ctx)?;
        let offload_block = b::block(vec![
            b::decl(&fb_var, Ty::Int, Some(b::int(1))),
            Stmt::If {
                cond: b::call("__dev_ok", vec![]),
                then_s: Box::new(b::block(stmts)),
                else_s: None,
            },
            Stmt::If { cond: b::ident(&fb_var), then_s: Box::new(fallback_body), else_s: None },
        ]);

        // if(...) clause: false → run on the host instead.
        if let Some(cond) = dir.clause_if() {
            let host_body = self.host_stmt(body, ctx)?;
            return Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(offload_block),
                else_s: Some(Box::new(host_body)),
            });
        }
        Ok(offload_block)
    }

    /// Kernel body for combined constructs (§3.1).
    fn combined_kernel_body(
        &mut self,
        loops: &[LoopInfo],
        inner_body: &Stmt,
        dir: &Directive,
        roles: &[(String, Ty, VarRole)],
        dist_only: bool,
        pos: Pos,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        if contains_standalone_parallel(inner_body) {
            return Err(err(
                pos,
                "nested OpenMP constructs inside a combined target loop are not supported",
            ));
        }
        // Reduction locals.
        for (name, ty, role) in roles {
            if let VarRole::Reduction(op) = role {
                out.push(b::decl(name, ty.clone(), Some(red_identity(*op, ty))));
            }
        }
        // Trip counts.
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__tc{i}");
            out.push(b::decl(&n, Ty::Long, Some(long_cast(trip_count_expr(l)))));
            tc_names.push(n);
        }
        // total = tc0 * tc1 * …
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__total", Ty::Long, Some(total)));
        out.push(b::decl("__lb", Ty::Long, None));
        out.push(b::decl("__ub", Ty::Long, None));
        out.push(b::decl("__mylb", Ty::Long, None));
        out.push(b::decl("__myub", Ty::Long, None));
        out.push(b::expr_stmt(b::call(
            "cudadev_get_distribute_chunk",
            vec![b::ident("__total"), b::addr_of(b::ident("__lb")), b::addr_of(b::ident("__ub"))],
        )));

        // The per-iteration loop body: reconstruct the loop indices.
        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            // idx_i = (__it / (tc_{i+1} * …)) [% tc_i]
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__it");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let val = b::bin(BinOp::Add, l.lb.clone(), b::cast(l.var_ty.clone(), scaled));
            iter_body.push(b::decl(&l.var, l.var_ty.clone(), Some(val)));
        }
        iter_body.push(inner_body.clone());

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__it", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__it"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__it")),
            })),
            body: Box::new(b::block(body)),
        };

        let sched = dir.clause_schedule();
        match sched {
            Some((SchedKind::Dynamic, chunk)) | Some((SchedKind::Guided, chunk)) if !dist_only => {
                let f = match sched.unwrap().0 {
                    SchedKind::Dynamic => "cudadev_get_dynamic_chunk",
                    _ => "cudadev_get_guided_chunk",
                };
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        f,
                        vec![
                            b::ident("__lb"),
                            b::ident("__ub"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__mylb")),
                            b::addr_of(b::ident("__myub")),
                        ],
                    ),
                    body: Box::new(make_for(
                        b::ident("__mylb"),
                        b::ident("__myub"),
                        iter_body.clone(),
                    )),
                });
            }
            _ => {
                // Static (default). In distribute-only kernels the team's
                // single thread runs the whole distribute chunk.
                if dist_only {
                    out.push(b::expr_stmt(b::assign(b::ident("__mylb"), b::ident("__lb"))));
                    out.push(b::expr_stmt(b::assign(b::ident("__myub"), b::ident("__ub"))));
                } else {
                    let chunk_e = match sched {
                        Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                        _ => b::int(0),
                    };
                    out.push(b::expr_stmt(b::call(
                        "cudadev_get_static_chunk",
                        vec![
                            b::ident("__lb"),
                            b::ident("__ub"),
                            chunk_e,
                            b::addr_of(b::ident("__mylb")),
                            b::addr_of(b::ident("__myub")),
                        ],
                    )));
                }
                out.push(make_for(b::ident("__mylb"), b::ident("__myub"), iter_body));
            }
        }

        // Fold reductions into the global accumulators.
        for (name, ty, role) in roles {
            if let VarRole::Reduction(op) = role {
                out.push(red_combine(name, ty, *op));
            }
        }
        Ok(out)
    }

    /// Kernel body for the master/worker scheme (§3.2, Fig. 3).
    fn master_worker_kernel_body(
        &mut self,
        body: &Stmt,
        roles: &[(String, Ty, VarRole)],
        scalar_writebacks: &[String],
        pos: Pos,
        kprog: &mut Program,
    ) -> TResult<Vec<Stmt>> {
        // Lower the target body in "device master" context, tracking the
        // master's local declarations so inner parallel regions can share
        // them through the shared-memory stack.
        let dctx = DeviceCtx { roles: roles.to_vec(), pos };
        let mut decls: Vec<(String, Ty)> = Vec::new();
        let lowered = self.device_stmt(body, &dctx, kprog, &mut decls)?;

        let mut master = vec![
            Stmt::If {
                cond: b::e(ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(b::call("cudadev_is_masterthr", vec![b::ident("_mw_thrid")])),
                }),
                then_s: Box::new(Stmt::Return(None)),
                else_s: None,
            },
            lowered,
        ];
        // Final values of written-back mapped scalars go to their device
        // buffers before the region ends.
        for name in scalar_writebacks {
            master.push(b::expr_stmt(b::assign(
                b::deref(b::ident(&format!("__out_{name}"))),
                b::ident(name),
            )));
        }
        master.push(b::expr_stmt(b::call("cudadev_exit_target", vec![])));
        Ok(vec![
            b::decl("_mw_thrid", Ty::Int, Some(b::member(b::ident("threadIdx"), "x"))),
            Stmt::If {
                cond: b::call("cudadev_in_masterwarp", vec![b::ident("_mw_thrid")]),
                then_s: Box::new(b::block(master)),
                else_s: Some(Box::new(b::expr_stmt(b::call(
                    "cudadev_workerfunc",
                    vec![b::ident("_mw_thrid")],
                )))),
            },
        ])
    }

    /// Lower a statement inside a master/worker target region (the master
    /// thread executes it sequentially; parallel constructs spawn regions).
    fn device_stmt(
        &mut self,
        s: &Stmt,
        ctx: &DeviceCtx,
        kprog: &mut Program,
        decls: &mut Vec<(String, Ty)>,
    ) -> TResult<Stmt> {
        if let Stmt::Decl(d) = s {
            decls.push((d.name.clone(), d.ty.clone()));
        }
        match s {
            Stmt::Omp(o) => match o.dir.kind {
                DirKind::Parallel | DirKind::ParallelFor => {
                    self.device_parallel(o, ctx, kprog, decls)
                }
                DirKind::For => {
                    // Orphaned worksharing loop outside a parallel region:
                    // the master runs it sequentially.
                    Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty))
                }
                DirKind::Single | DirKind::Master => {
                    Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty))
                }
                DirKind::Barrier => Ok(Stmt::Empty), // master-only code
                DirKind::Critical => Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty)),
                other => Err(err(
                    o.pos,
                    format!(
                        "directive `{}` is not supported inside a target region",
                        other.spelling()
                    ),
                )),
            },
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.device_stmt(st, ctx, kprog, decls)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.device_stmt(then_s, ctx, kprog, decls)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.device_stmt(e, ctx, kprog, decls)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.device_stmt(body, ctx, kprog, decls)?),
            }),
            Stmt::While { cond, body } => Ok(Stmt::While {
                cond: cond.clone(),
                body: Box::new(self.device_stmt(body, ctx, kprog, decls)?),
            }),
            other => Ok(other.clone()),
        }
    }

    /// Lower a stand-alone `parallel` / `parallel for` inside a target
    /// region: outline a thrFunc, push shared variables to the
    /// shared-memory stack, register with the worker warps (Fig. 3b).
    fn device_parallel(
        &mut self,
        o: &OmpStmt,
        ctx: &DeviceCtx,
        kprog: &mut Program,
        master_decls: &[(String, Ty)],
    ) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "parallel without a body"))?;
        let fn_id = self.tmp("thrFunc");
        let thr_name = format!("_{}", fn_id.trim_start_matches("__"));

        // Free variables of the parallel region, seen from the kernel body:
        // kernel parameters (roles) and master locals. We re-scan by name.
        let mut used: Vec<String> = Vec::new();
        collect_used_names(body, &mut used);
        for_each_clause_expr(dir, &mut |e| collect_expr_names(e, &mut used));
        used.sort();
        used.dedup();

        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();

        // Loop var (parallel for) is private.
        let (loops, inner) = if dir.kind == DirKind::ParallelFor {
            let collapse = dir.clause_collapse();
            let (l, bdy) = canonical_nest(body, collapse)?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        // Declared names inside the region are not free.
        let mut declared: Vec<String> = Vec::new();
        collect_declared_names(body, &mut declared);

        // Partition the used names into env entries.
        #[derive(Debug)]
        enum EnvKind {
            /// Kernel pointer param or pointer local: pass the pointer value.
            PtrValue(Ty),
            /// Shared scalar: push its address, rewrite to deref.
            SharedScalar(Ty),
            /// Value scalar copy (kernel firstprivate params).
            ValueScalar(Ty),
        }
        let mut env: Vec<(String, EnvKind)> = Vec::new();
        for name in &used {
            if loop_vars.contains(&name.as_str())
                || privates.contains(name)
                || declared.contains(name)
                || name == "threadIdx"
                || name == "blockIdx"
                || name == "blockDim"
                || name == "gridDim"
            {
                continue;
            }
            // Reduction accumulators are always shared (the region folds
            // into them atomically).
            if reductions.iter().any(|(_, r)| r == name) {
                let ty = ctx
                    .roles
                    .iter()
                    .find(|(n, ..)| n == name)
                    .map(|(_, t, _)| t.clone())
                    .or_else(|| find_decl_ty(master_decls, name))
                    .unwrap_or(Ty::Float);
                env.push((name.clone(), EnvKind::SharedScalar(ty)));
                continue;
            }
            // Explicit firstprivate: per-thread copy of the master's value.
            if firstprivates.contains(name) {
                let ty = ctx
                    .roles
                    .iter()
                    .find(|(n, ..)| n == name)
                    .map(|(_, t, _)| t.clone())
                    .or_else(|| find_decl_ty(master_decls, name))
                    .unwrap_or(Ty::Int);
                env.push((name.clone(), EnvKind::ValueScalar(ty)));
                continue;
            }
            // Kernel parameter?
            if let Some((_, ty, role)) = ctx.roles.iter().find(|(n, ..)| n == name) {
                match role {
                    VarRole::Mapped { param_ty, .. } => {
                        env.push((name.clone(), EnvKind::PtrValue(param_ty.clone())));
                    }
                    // Scalars are *shared* in a parallel region (OpenMP
                    // default): the region writes through to the master's
                    // copy via the shared-memory stack.
                    VarRole::FirstPrivate => {
                        env.push((name.clone(), EnvKind::SharedScalar(ty.clone())));
                    }
                    VarRole::Reduction(_) => {
                        env.push((name.clone(), EnvKind::SharedScalar(ty.clone())));
                    }
                }
                continue;
            }
            // Master local (declared in the target body, outside this
            // region): shared through the shared-memory stack.
            if let Some(ty) = find_decl_ty(master_decls, name) {
                if ty.decayed().is_ptr() {
                    env.push((name.clone(), EnvKind::PtrValue(ty.decayed())));
                } else {
                    env.push((name.clone(), EnvKind::SharedScalar(ty)));
                }
                continue;
            }
            // Unknown name: probably a function — ignore.
        }

        // Reduction vars already covered as SharedScalar via roles; for
        // master-local reductions add them.
        for (_, rname) in &reductions {
            if !env.iter().any(|(n, _)| n == rname) {
                if let Some(ty) = find_decl_ty(master_decls, rname) {
                    env.push((rname.clone(), EnvKind::SharedScalar(ty)));
                }
            }
        }

        // ---- registration block (master side) ----
        let vars_name = self.tmp("vars");
        let vp_name = self.tmp("vp");
        let nslots = env.len().max(1);
        let mut reg: Vec<Stmt> = Vec::new();
        reg.push(b::decl(
            &vars_name,
            Ty::Array(Box::new(Ty::Long), ArrayLen::Const(nslots as u64)),
            None,
        ));
        let mut pushes: Vec<(String, Expr, Expr)> = Vec::new(); // (kind, addr, size) for pops
        let mut copies: Vec<Stmt> = Vec::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let slot_lhs = b::index(b::ident(&vars_name), b::int(i as i64));
            match kind {
                EnvKind::PtrValue(_) => {
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call("cudadev_getaddr", vec![b::ident(name)])),
                    )));
                }
                EnvKind::SharedScalar(ty) => {
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call(
                            "cudadev_push_shmem",
                            vec![b::addr_of(b::ident(name)), sizeof_expr(ty)],
                        )),
                    )));
                    pushes.push((name.clone(), b::addr_of(b::ident(name)), sizeof_expr(ty)));
                }
                EnvKind::ValueScalar(ty) => {
                    // Copy the value so its address can be pushed.
                    let cp = self.tmp("cp");
                    copies.push(b::decl(&cp, ty.clone(), Some(b::ident(name))));
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call(
                            "cudadev_push_shmem",
                            vec![b::addr_of(b::ident(&cp)), sizeof_expr(ty)],
                        )),
                    )));
                    pushes.push((cp.clone(), b::addr_of(b::ident(&cp)), sizeof_expr(ty)));
                }
            }
        }
        let mut block: Vec<Stmt> = copies;
        block.extend(reg);
        // Push the vars array itself so the workers can reach it.
        block.push(b::decl(
            &vp_name,
            Ty::Long,
            Some(long_cast(b::call(
                "cudadev_push_shmem",
                vec![
                    b::addr_of(b::index(b::ident(&vars_name), b::int(0))),
                    b::int(8 * nslots as i64),
                ],
            ))),
        ));
        let nthr = match dir.clause_num_threads() {
            Some(e) => e.clone(),
            None => b::int(crate::MW_WORKERS as i64),
        };
        block.push(b::expr_stmt(b::call(
            "cudadev_register_parallel",
            vec![b::ident(&thr_name), b::ident(&vp_name), nthr],
        )));
        block.push(b::expr_stmt(b::call(
            "cudadev_pop_shmem",
            vec![b::addr_of(b::index(b::ident(&vars_name), b::int(0))), b::int(8 * nslots as i64)],
        )));
        for (_, addr, size) in pushes.iter().rev() {
            block
                .push(b::expr_stmt(b::call("cudadev_pop_shmem", vec![addr.clone(), size.clone()])));
        }

        // ---- thrFunc (worker side) ----
        let mut tbody: Vec<Stmt> = Vec::new();
        let mut rename: HashMap<String, Expr> = HashMap::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let load = b::deref(b::cast(
                Ty::Ptr(Box::new(Ty::Long)),
                b::bin(BinOp::Add, b::ident("__envp"), b::int(8 * i as i64)),
            ));
            match kind {
                EnvKind::PtrValue(pty) => {
                    tbody.push(b::decl(name, pty.clone(), Some(b::cast(pty.clone(), load))));
                }
                EnvKind::SharedScalar(ty) => {
                    let pname = format!("__shp_{name}");
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(&pname, pty.clone(), Some(b::cast(pty, load))));
                    rename.insert(name.clone(), b::deref(b::ident(&pname)));
                }
                EnvKind::ValueScalar(ty) => {
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(name, ty.clone(), Some(b::deref(b::cast(pty, load)))));
                }
            }
        }
        // Privates.
        for pv in &privates {
            let ty = find_decl_ty(master_decls, pv).unwrap_or(Ty::Int);
            tbody.push(b::decl(pv, ty, None));
        }
        // Reduction locals (shadow the shared name inside the loop body).
        let mut red_renames: HashMap<String, Expr> = HashMap::new();
        for (op, rname) in &reductions {
            let local = format!("__redl_{rname}");
            let ty = ctx
                .roles
                .iter()
                .find(|(n, ..)| n == rname)
                .map(|(_, t, _)| t.clone())
                .or_else(|| find_decl_ty(master_decls, rname))
                .unwrap_or(Ty::Float);
            tbody.push(b::decl(&local, ty.clone(), Some(red_identity(*op, &ty))));
            red_renames.insert(rname.clone(), b::ident(&local));
        }

        if dir.kind == DirKind::ParallelFor {
            tbody.extend(self.region_worksharing_loop(
                &loops,
                &inner,
                dir,
                &red_renames,
                &rename,
            )?);
        } else {
            let mut body2 = body.clone();
            rename_idents(&mut body2, &red_renames);
            rename_idents(&mut body2, &rename);
            let lowered = self.region_stmt(&body2)?;
            tbody.push(lowered);
        }

        // Fold reductions into shared accumulators.
        for (op, rname) in &reductions {
            let ty = ctx
                .roles
                .iter()
                .find(|(n, ..)| n == rname)
                .map(|(_, t, _)| t.clone())
                .or_else(|| find_decl_ty(master_decls, rname))
                .unwrap_or(Ty::Float);
            let target_addr = if let Some(r) = rename.get(rname) {
                // (*__shp_r) → &(*__shp_r)
                b::addr_of(r.clone())
            } else {
                b::addr_of(b::ident(rname))
            };
            tbody.push(red_fold_stmt(target_addr, b::ident(&format!("__redl_{rname}")), &ty, *op));
        }

        kprog.items.push(Item::Func(FuncDef {
            sig: FuncSig {
                name: thr_name.clone(),
                ret: Ty::Void,
                params: vec![Param { name: "__envp".into(), ty: Ty::Long, slot: u32::MAX }],
                quals: FnQuals { global: false, device: true },
                pos: o.pos,
            },
            body: Block { stmts: tbody },
            frame: FrameInfo::default(),
            declare_target: false,
        }));

        Ok(b::block(block))
    }

    /// Worksharing loop inside a device parallel region.
    fn region_worksharing_loop(
        &mut self,
        loops: &[LoopInfo],
        inner: &Stmt,
        dir: &Directive,
        red_renames: &HashMap<String, Expr>,
        rename: &HashMap<String, Expr>,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__rtc{i}");
            let mut tc = trip_count_expr(l);
            // Bounds may reference shared/renamed vars.
            rename_expr(&mut tc, red_renames);
            rename_expr(&mut tc, rename);
            out.push(b::decl(&n, Ty::Long, Some(long_cast(tc))));
            tc_names.push(n);
        }
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__rtotal", Ty::Long, Some(total)));
        out.push(b::decl("__rmylb", Ty::Long, None));
        out.push(b::decl("__rmyub", Ty::Long, None));

        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__rit");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let mut lb = l.lb.clone();
            rename_expr(&mut lb, red_renames);
            rename_expr(&mut lb, rename);
            let val = b::bin(BinOp::Add, lb, b::cast(l.var_ty.clone(), scaled));
            iter_body.push(b::decl(&l.var, l.var_ty.clone(), Some(val)));
        }
        let mut inner2 = inner.clone();
        rename_idents(&mut inner2, red_renames);
        rename_idents(&mut inner2, rename);
        iter_body.push(self.region_stmt(&inner2)?);

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__rit", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__rit"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__rit")),
            })),
            body: Box::new(b::block(body)),
        };

        match dir.clause_schedule() {
            Some((SchedKind::Dynamic, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        "cudadev_get_dynamic_chunk",
                        vec![
                            b::int(0),
                            b::ident("__rtotal"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__rmylb")),
                            b::addr_of(b::ident("__rmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body)),
                });
            }
            Some((SchedKind::Guided, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        "cudadev_get_guided_chunk",
                        vec![
                            b::int(0),
                            b::ident("__rtotal"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__rmylb")),
                            b::addr_of(b::ident("__rmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body)),
                });
            }
            sched => {
                let chunk_e = match sched {
                    Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                    _ => b::int(0),
                };
                out.push(b::expr_stmt(b::call(
                    "cudadev_get_static_chunk",
                    vec![
                        b::int(0),
                        b::ident("__rtotal"),
                        chunk_e,
                        b::addr_of(b::ident("__rmylb")),
                        b::addr_of(b::ident("__rmyub")),
                    ],
                )));
                out.push(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body));
            }
        }
        Ok(out)
    }

    /// Lower OpenMP constructs inside a device parallel region (workers).
    fn region_stmt(&mut self, s: &Stmt) -> TResult<Stmt> {
        match s {
            Stmt::Omp(o) => match o.dir.kind {
                DirKind::Barrier => Ok(b::expr_stmt(b::call("cudadev_barrier", vec![]))),
                DirKind::Critical => {
                    let name = o
                        .dir
                        .clauses
                        .iter()
                        .find_map(|c| match c {
                            Clause::Name(n) => Some(n.clone()),
                            _ => None,
                        })
                        .unwrap_or_default();
                    let id = self.critical_id(&name);
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    // Per-thread mutual exclusion on a SIMT machine: lanes of
                    // a warp run in lockstep, so the critical section is
                    // serialized across lanes by divergence (§4.2.2: "warp
                    // divergence takes place when threads belonging to the
                    // same warp take different execution paths") — one lane
                    // per iteration holds the CAS lock.
                    let lc = self.tmp("lane");
                    let guarded = b::block(vec![
                        b::expr_stmt(b::call("cudadev_critical_enter", vec![b::int(id)])),
                        body,
                        b::expr_stmt(b::call("cudadev_critical_exit", vec![b::int(id)])),
                    ]);
                    Ok(Stmt::For {
                        init: Some(Box::new(b::decl(&lc, Ty::Int, Some(b::int(0))))),
                        cond: Some(b::bin(BinOp::Lt, b::ident(&lc), b::int(32))),
                        step: Some(b::e(ExprKind::IncDec {
                            pre: false,
                            inc: true,
                            expr: Box::new(b::ident(&lc)),
                        })),
                        body: Box::new(Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::bin(
                                    BinOp::Rem,
                                    b::call("omp_get_thread_num", vec![]),
                                    b::int(32),
                                ),
                                b::ident(&lc),
                            ),
                            then_s: Box::new(guarded),
                            else_s: None,
                        }),
                    })
                }
                DirKind::Single => {
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    let mut stmts = vec![
                        Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::call("omp_get_thread_num", vec![]),
                                b::int(0),
                            ),
                            then_s: Box::new(b::expr_stmt(b::call("cudadev_single_reset", vec![]))),
                            else_s: None,
                        },
                        Stmt::If {
                            cond: b::call("cudadev_single_enter", vec![]),
                            then_s: Box::new(body),
                            else_s: None,
                        },
                    ];
                    if !o.dir.clause_nowait() {
                        stmts.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(stmts))
                }
                DirKind::Master => {
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    Ok(Stmt::If {
                        cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                        then_s: Box::new(body),
                        else_s: None,
                    })
                }
                DirKind::Sections => {
                    let sections = collect_sections(o.body.as_deref().unwrap_or(&Stmt::Empty));
                    let n = sections.len() as i64;
                    let sname = self.tmp("s");
                    let mut dispatch: Option<Stmt> = None;
                    for (i, sec) in sections.into_iter().enumerate().rev() {
                        let sec = self.region_stmt(&sec)?;
                        dispatch = Some(Stmt::If {
                            cond: b::bin(BinOp::Eq, b::ident(&sname), b::int(i as i64)),
                            then_s: Box::new(sec),
                            else_s: dispatch.map(Box::new),
                        });
                    }
                    let mut stmts = vec![
                        Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::call("omp_get_thread_num", vec![]),
                                b::int(0),
                            ),
                            then_s: Box::new(b::expr_stmt(b::call(
                                "cudadev_sections_reset",
                                vec![],
                            ))),
                            else_s: None,
                        },
                        b::expr_stmt(b::call("cudadev_barrier", vec![])),
                        b::decl(&sname, Ty::Int, None),
                        Stmt::While {
                            cond: b::bin(
                                BinOp::Ge,
                                b::assign(
                                    b::ident(&sname),
                                    b::call("cudadev_sections_next", vec![b::int(n)]),
                                ),
                                b::int(0),
                            ),
                            body: Box::new(dispatch.unwrap_or(Stmt::Empty)),
                        },
                    ];
                    if !o.dir.clause_nowait() {
                        stmts.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(stmts))
                }
                DirKind::For => {
                    // Worksharing loop using the region's threads.
                    let collapse = o.dir.clause_collapse();
                    let (loops, inner) =
                        canonical_nest(o.body.as_deref().unwrap_or(&Stmt::Empty), collapse)?;
                    let ws = self.region_worksharing_loop(
                        &loops,
                        &inner,
                        &o.dir,
                        &HashMap::new(),
                        &HashMap::new(),
                    )?;
                    let mut out = vec![b::block(ws)];
                    if !o.dir.clause_nowait() {
                        out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(out))
                }
                other => Err(err(
                    o.pos,
                    format!(
                        "directive `{}` is not supported inside a device parallel region",
                        other.spelling()
                    ),
                )),
            },
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.region_stmt(st)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.region_stmt(then_s)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.region_stmt(e)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.region_stmt(body)?),
            }),
            Stmt::While { cond, body } => {
                Ok(Stmt::While { cond: cond.clone(), body: Box::new(self.region_stmt(body)?) })
            }
            other => Ok(other.clone()),
        }
    }

    // ======================================== host parallel transformation

    fn lower_host_parallel(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "parallel without a body"))?;
        let hid = self.next_hostfn;
        self.next_hostfn += 1;
        let fn_name = format!("_hostFunc{}_{}", hid, ctx.fname);

        let fvs = free_vars(body, ctx.frame);
        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();

        let (loops, inner) = if dir.kind == DirKind::ParallelFor {
            let (l, bdy) = canonical_nest(body, dir.clause_collapse())?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        #[derive(Debug)]
        enum HKind {
            Shared(Ty),
            FirstPrivate(Ty),
        }
        let mut env: Vec<(String, HKind)> = Vec::new();
        for fv in &fvs {
            if loop_vars.contains(&fv.name.as_str()) || privates.contains(&fv.name) {
                continue;
            }
            if firstprivates.contains(&fv.name) {
                env.push((fv.name.clone(), HKind::FirstPrivate(fv.ty.clone())));
            } else {
                env.push((fv.name.clone(), HKind::Shared(fv.ty.clone())));
            }
        }

        // Call site: build env array of addresses.
        let env_name = self.tmp("henv");
        let mut call_blk: Vec<Stmt> = Vec::new();
        let nslots = env.len().max(1);
        call_blk.push(b::decl(
            &env_name,
            Ty::Array(Box::new(Ty::Long), ArrayLen::Const(nslots as u64)),
            None,
        ));
        let mut fp_copies: Vec<Stmt> = Vec::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let slot = b::index(b::ident(&env_name), b::int(i as i64));
            match kind {
                HKind::Shared(ty) => {
                    // Arrays decay: store the pointer value; scalars: store
                    // the address.
                    let val = if ty.is_array() || ty.is_ptr() {
                        long_cast(b::ident(name))
                    } else {
                        long_cast(b::addr_of(b::ident(name)))
                    };
                    call_blk.push(b::expr_stmt(b::assign(slot, val)));
                }
                HKind::FirstPrivate(ty) => {
                    let cp = self.tmp("hfp");
                    fp_copies.push(b::decl(&cp, ty.clone(), Some(b::ident(name))));
                    call_blk
                        .push(b::expr_stmt(b::assign(slot, long_cast(b::addr_of(b::ident(&cp))))));
                }
            }
        }
        let mut blk = fp_copies;
        blk.extend(call_blk);
        let nthr = match dir.clause_num_threads() {
            Some(e) => e.clone(),
            None => b::int(0),
        };
        blk.push(b::expr_stmt(b::call(
            "ort_execute_parallel",
            vec![
                b::e(ExprKind::StrLit(fn_name.clone())),
                b::cast(Ty::Long, b::ident(&env_name)),
                nthr,
            ],
        )));

        // Outlined function body.
        let mut tbody: Vec<Stmt> = Vec::new();
        let mut rename: HashMap<String, Expr> = HashMap::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let load = b::deref(b::cast(
                Ty::Ptr(Box::new(Ty::Long)),
                b::bin(BinOp::Add, b::ident("__envp"), b::int(8 * i as i64)),
            ));
            match kind {
                HKind::Shared(ty) => {
                    let d = ty.decayed();
                    if d.is_ptr() {
                        tbody.push(b::decl(name, d.clone(), Some(b::cast(d.clone(), load))));
                    } else {
                        let pname = format!("__shp_{name}");
                        let pty = Ty::Ptr(Box::new(ty.clone()));
                        tbody.push(b::decl(&pname, pty.clone(), Some(b::cast(pty, load))));
                        rename.insert(name.clone(), b::deref(b::ident(&pname)));
                    }
                }
                HKind::FirstPrivate(ty) => {
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(name, ty.clone(), Some(b::deref(b::cast(pty, load)))));
                }
            }
        }
        for pv in &privates {
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *pv)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Int);
            tbody.push(b::decl(pv, ty, None));
        }
        let mut red_renames: HashMap<String, Expr> = HashMap::new();
        for (op, rname) in &reductions {
            let local = format!("__redl_{rname}");
            let ty = ctx
                .frame
                .slots
                .iter()
                .find(|sl| sl.name == *rname)
                .map(|sl| sl.ty.clone())
                .unwrap_or(Ty::Float);
            tbody.push(b::decl(&local, ty.clone(), Some(red_identity(*op, &ty))));
            red_renames.insert(rname.clone(), b::ident(&local));
        }

        let pctx = HostCtx { fname: ctx.fname.clone(), frame: ctx.frame, in_parallel: true };
        if dir.kind == DirKind::ParallelFor {
            tbody.extend(self.host_ws_loop(&loops, &inner, dir, &red_renames, &rename, &pctx)?);
        } else {
            let mut body2 = body.clone();
            rename_idents(&mut body2, &red_renames);
            rename_idents(&mut body2, &rename);
            tbody.push(self.host_stmt(&body2, &pctx)?);
        }

        // Reductions: fold under a critical.
        if !reductions.is_empty() {
            tbody.push(b::expr_stmt(b::call(
                "ort_critical_enter",
                vec![b::e(ExprKind::StrLit("__omp_reduction".into()))],
            )));
            for (op, rname) in &reductions {
                let target = rename.get(rname).cloned().unwrap_or_else(|| b::ident(rname));
                let local = b::ident(&format!("__redl_{rname}"));
                tbody.push(host_red_fold(target, local, *op));
            }
            tbody.push(b::expr_stmt(b::call(
                "ort_critical_exit",
                vec![b::e(ExprKind::StrLit("__omp_reduction".into()))],
            )));
        }

        self.host_fns.push(FuncDef {
            sig: FuncSig {
                name: fn_name,
                ret: Ty::Void,
                params: vec![Param { name: "__envp".into(), ty: Ty::Long, slot: u32::MAX }],
                quals: FnQuals::default(),
                pos: o.pos,
            },
            body: Block { stmts: tbody },
            frame: FrameInfo::default(),
            declare_target: false,
        });
        Ok(b::block(blk))
    }

    /// Worksharing loop on the host (inside a parallel region).
    fn host_ws_loop(
        &mut self,
        loops: &[LoopInfo],
        inner: &Stmt,
        dir: &Directive,
        red_renames: &HashMap<String, Expr>,
        rename: &HashMap<String, Expr>,
        ctx: &HostCtx<'_>,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__htc{i}");
            let mut tc = trip_count_expr(l);
            rename_expr(&mut tc, red_renames);
            rename_expr(&mut tc, rename);
            out.push(b::decl(&n, Ty::Long, Some(long_cast(tc))));
            tc_names.push(n);
        }
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__htotal", Ty::Long, Some(total)));
        out.push(b::decl("__hmylb", Ty::Long, None));
        out.push(b::decl("__hmyub", Ty::Long, None));

        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__hit");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let mut lb = l.lb.clone();
            rename_expr(&mut lb, red_renames);
            rename_expr(&mut lb, rename);
            iter_body.push(b::decl(
                &l.var,
                l.var_ty.clone(),
                Some(b::bin(BinOp::Add, lb, b::cast(l.var_ty.clone(), scaled))),
            ));
        }
        let mut inner2 = inner.clone();
        rename_idents(&mut inner2, red_renames);
        rename_idents(&mut inner2, rename);
        iter_body.push(self.host_stmt(&inner2, ctx)?);

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__hit", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__hit"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__hit")),
            })),
            body: Box::new(b::block(body)),
        };

        out.push(b::expr_stmt(b::call("ort_loop_begin", vec![b::ident("__htotal")])));
        match dir.clause_schedule() {
            Some((SchedKind::Dynamic, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::While {
                    cond: b::call(
                        "ort_dynamic_next",
                        vec![
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__hmylb")),
                            b::addr_of(b::ident("__hmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body)),
                });
            }
            Some((SchedKind::Guided, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::While {
                    cond: b::call(
                        "ort_guided_next",
                        vec![
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__hmylb")),
                            b::addr_of(b::ident("__hmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body)),
                });
            }
            sched => {
                let chunk_e = match sched {
                    Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                    _ => b::int(0),
                };
                out.push(b::expr_stmt(b::call(
                    "ort_static_chunk",
                    vec![chunk_e, b::addr_of(b::ident("__hmylb")), b::addr_of(b::ident("__hmyub"))],
                )));
                out.push(make_for(b::ident("__hmylb"), b::ident("__hmyub"), iter_body));
            }
        }
        if !dir.clause_nowait() {
            out.push(b::expr_stmt(b::call("ort_barrier", vec![])));
        }
        Ok(out)
    }

    /// Orphaned / in-parallel `for` on the host.
    fn lower_host_for(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let (loops, inner) =
            canonical_nest(o.body.as_deref().unwrap_or(&Stmt::Empty), o.dir.clause_collapse())?;
        let ws =
            self.host_ws_loop(&loops, &inner, &o.dir, &HashMap::new(), &HashMap::new(), ctx)?;
        Ok(b::block(ws))
    }

    fn lower_host_sections(&mut self, o: &OmpStmt, ctx: &HostCtx<'_>) -> TResult<Stmt> {
        let sections = collect_sections(o.body.as_deref().unwrap_or(&Stmt::Empty));
        let n = sections.len() as i64;
        let sname = self.tmp("hs");
        let mut dispatch: Option<Stmt> = None;
        for (i, sec) in sections.into_iter().enumerate().rev() {
            let sec = self.host_stmt(&sec, ctx)?;
            dispatch = Some(Stmt::If {
                cond: b::bin(BinOp::Eq, b::ident(&sname), b::int(i as i64)),
                then_s: Box::new(sec),
                else_s: dispatch.map(Box::new),
            });
        }
        let mut stmts = vec![
            b::expr_stmt(b::call("ort_sections_begin", vec![b::int(n)])),
            b::decl(&sname, Ty::Long, None),
            Stmt::While {
                cond: b::bin(
                    BinOp::Ge,
                    b::assign(b::ident(&sname), b::call("ort_sections_next", vec![])),
                    b::int(0),
                ),
                body: Box::new(dispatch.unwrap_or(Stmt::Empty)),
            },
        ];
        if !o.dir.clause_nowait() {
            stmts.push(b::expr_stmt(b::call("ort_barrier", vec![])));
        }
        Ok(b::block(stmts))
    }
}

struct DeviceCtx {
    roles: Vec<(String, Ty, VarRole)>,
    #[allow(dead_code)]
    pos: Pos,
}

fn find_decl_ty(decls: &[(String, Ty)], name: &str) -> Option<Ty> {
    decls.iter().find(|(n, _)| n == name).map(|(_, t)| t.clone())
}

// ------------------------------------------------------------- utilities

/// Trip count expression of a canonical loop (evaluates host- or
/// device-side depending on where it is spliced).
pub fn trip_count_expr(l: &LoopInfo) -> Expr {
    let s = l.step.abs();
    let (hi, lo) =
        if l.step > 0 { (l.ub.clone(), l.lb.clone()) } else { (l.lb.clone(), l.ub.clone()) };
    let span = b::bin(BinOp::Sub, long_cast(hi), long_cast(lo));
    let adj = if l.inclusive { s } else { s - 1 };
    let num = b::bin(BinOp::Add, span, b::int(adj));
    let q = b::bin(BinOp::Div, num, b::int(s));
    // Negative spans (empty loops) clamp to 0: (q > 0 ? q : 0).
    b::e(ExprKind::Ternary {
        cond: Box::new(b::bin(BinOp::Gt, q.clone(), b::int(0))),
        then_e: Box::new(q),
        else_e: Box::new(b::int(0)),
    })
}

fn red_identity(op: RedOp, ty: &Ty) -> Expr {
    let is32 = *ty == Ty::Float;
    match op {
        RedOp::Add => match ty {
            Ty::Float => b::e(ExprKind::FloatLit(0.0, true)),
            Ty::Double => b::e(ExprKind::FloatLit(0.0, false)),
            _ => b::int(0),
        },
        RedOp::Mul => match ty {
            Ty::Float => b::e(ExprKind::FloatLit(1.0, true)),
            Ty::Double => b::e(ExprKind::FloatLit(1.0, false)),
            _ => b::int(1),
        },
        RedOp::Max => match ty {
            Ty::Float | Ty::Double => b::e(ExprKind::FloatLit(-3.0e38, is32)),
            _ => b::int(i32::MIN as i64),
        },
        RedOp::Min => match ty {
            Ty::Float | Ty::Double => b::e(ExprKind::FloatLit(3.0e38, is32)),
            _ => b::int(i32::MAX as i64),
        },
    }
}

fn red_opcode(op: RedOp) -> i64 {
    match op {
        RedOp::Add => 0,
        RedOp::Mul => 1,
        RedOp::Max => 2,
        RedOp::Min => 3,
    }
}

/// Device-side fold of a local accumulator into `__red_<name>` (combined
/// kernels).
fn red_combine(name: &str, ty: &Ty, op: RedOp) -> Stmt {
    let ptr = b::ident(&format!("__red_{name}"));
    red_fold_stmt(ptr, b::ident(name), ty, op)
}

fn red_fold_stmt(ptr: Expr, val: Expr, ty: &Ty, op: RedOp) -> Stmt {
    if op == RedOp::Add {
        return b::expr_stmt(b::call("atomicAdd", vec![ptr, val]));
    }
    let f = match ty {
        Ty::Float => "cudadev_red_f32",
        Ty::Double => "cudadev_red_f64",
        _ => "cudadev_red_i32",
    };
    b::expr_stmt(b::call(f, vec![ptr, val, b::int(red_opcode(op))]))
}

/// Host-side reduction fold: `target = target <op> local`.
fn host_red_fold(target: Expr, local: Expr, op: RedOp) -> Stmt {
    let combined = match op {
        RedOp::Add => b::bin(BinOp::Add, target.clone(), local),
        RedOp::Mul => b::bin(BinOp::Mul, target.clone(), local),
        RedOp::Max => b::e(ExprKind::Ternary {
            cond: Box::new(b::bin(BinOp::Gt, target.clone(), local.clone())),
            then_e: Box::new(target.clone()),
            else_e: Box::new(local),
        }),
        RedOp::Min => b::e(ExprKind::Ternary {
            cond: Box::new(b::bin(BinOp::Lt, target.clone(), local.clone())),
            then_e: Box::new(target.clone()),
            else_e: Box::new(local),
        }),
    };
    b::expr_stmt(b::assign(target, combined))
}

/// All `section` bodies of a sections region (non-section statements are
/// treated as a leading section, per OpenMP).
fn collect_sections(body: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match body {
        Stmt::Block(bl) => {
            for s in &bl.stmts {
                match s {
                    Stmt::Omp(o) if o.dir.kind == DirKind::Section => {
                        out.push(o.body.as_deref().cloned().unwrap_or(Stmt::Empty));
                    }
                    Stmt::Empty => {}
                    other => out.push(other.clone()),
                }
            }
        }
        other => out.push(other.clone()),
    }
    out
}

/// Collect identifier names used in a statement (by name, pre-re-sema).
fn collect_used_names(s: &Stmt, out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::Ident(n, _) = &e.kind {
            out.push(n.clone());
        }
        minic::interp::visit_child_exprs(e, &mut |c| in_expr(c, out));
    }
    minic::interp::visit_stmt_exprs(s, &mut |e| in_expr(e, out));
    if let Stmt::Omp(o) = s {
        for_each_clause_expr(&o.dir, &mut |e| in_expr(e, out));
    }
    minic::interp::visit_child_stmts(s, &mut |c| collect_used_names(c, out));
}

fn collect_expr_names(e: &Expr, out: &mut Vec<String>) {
    if let ExprKind::Ident(n, _) = &e.kind {
        out.push(n.clone());
    }
    minic::interp::visit_child_exprs(e, &mut |c| collect_expr_names(c, out));
}

fn collect_declared_names(s: &Stmt, out: &mut Vec<String>) {
    if let Stmt::Decl(d) = s {
        out.push(d.name.clone());
    }
    minic::interp::visit_child_stmts(s, &mut |c| collect_declared_names(c, out));
}

/// Replace identifier uses by name with replacement expressions (used for
/// shared-variable and reduction rewrites). Declarations shadowing the
/// name stop the replacement in their block… conservatively we replace all
/// uses; the translator avoids emitting shadowing declarations for renamed
/// variables.
pub fn rename_idents(s: &mut Stmt, map: &HashMap<String, Expr>) {
    if map.is_empty() {
        return;
    }
    match s {
        Stmt::Expr(e) => rename_expr(e, map),
        Stmt::Decl(d) => {
            if let Some(Init::Expr(e)) = &mut d.init {
                rename_expr(e, map);
            }
        }
        Stmt::Block(bl) => {
            for st in &mut bl.stmts {
                rename_idents(st, map);
            }
        }
        Stmt::If { cond, then_s, else_s } => {
            rename_expr(cond, map);
            rename_idents(then_s, map);
            if let Some(e) = else_s {
                rename_idents(e, map);
            }
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                rename_idents(i, map);
            }
            if let Some(c) = cond {
                rename_expr(c, map);
            }
            if let Some(st) = step {
                rename_expr(st, map);
            }
            rename_idents(body, map);
        }
        Stmt::While { cond, body } => {
            rename_expr(cond, map);
            rename_idents(body, map);
        }
        Stmt::DoWhile { body, cond } => {
            rename_idents(body, map);
            rename_expr(cond, map);
        }
        Stmt::Return(Some(e)) => rename_expr(e, map),
        Stmt::Omp(o) => {
            for c in &mut o.dir.clauses {
                use minic::omp::Clause as Cl;
                match c {
                    Cl::NumTeams(e)
                    | Cl::NumThreads(e)
                    | Cl::ThreadLimit(e)
                    | Cl::If(e)
                    | Cl::Device(e) => rename_expr(e, map),
                    Cl::Schedule { chunk: Some(e), .. } => rename_expr(e, map),
                    _ => {}
                }
            }
            if let Some(bd) = &mut o.body {
                rename_idents(bd, map);
            }
        }
        _ => {}
    }
}

pub fn rename_expr(e: &mut Expr, map: &HashMap<String, Expr>) {
    if let ExprKind::Ident(n, _) = &e.kind {
        if let Some(repl) = map.get(n) {
            *e = repl.clone();
            return;
        }
    }
    match &mut e.kind {
        ExprKind::Call { args, .. } => args.iter_mut().for_each(|a| rename_expr(a, map)),
        ExprKind::KernelLaunch { grid, block, args, .. } => {
            rename_expr(grid, map);
            rename_expr(block, map);
            args.iter_mut().for_each(|a| rename_expr(a, map));
        }
        ExprKind::Dim3 { x, y, z } => {
            rename_expr(x, map);
            if let Some(y) = y {
                rename_expr(y, map);
            }
            if let Some(z) = z {
                rename_expr(z, map);
            }
        }
        ExprKind::Member { base, .. } => rename_expr(base, map),
        ExprKind::Index { base, index } => {
            rename_expr(base, map);
            rename_expr(index, map);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::IncDec { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeofExpr(expr) => rename_expr(expr, map),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            rename_expr(lhs, map);
            rename_expr(rhs, map);
        }
        ExprKind::Ternary { cond, then_e, else_e } => {
            rename_expr(cond, map);
            rename_expr(then_e, map);
            rename_expr(else_e, map);
        }
        ExprKind::Comma(a, bx) => {
            rename_expr(a, map);
            rename_expr(bx, map);
        }
        _ => {}
    }
}
