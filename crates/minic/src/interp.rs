//! Host-side execution of mini-C programs: the [`Machine`] (linked
//! program image + guest memory) and the [`Interp`] execution façade.
//!
//! This stands in for "compile the translated C with gcc and run it on the
//! A57 cores": the OMPi translator rewrites OpenMP constructs into plain C
//! plus runtime calls, and this layer executes that C faithfully,
//! delegating every unknown function to pluggable [`Hooks`] (the OMPi host
//! runtime: `hostomp` + `cudadev`).
//!
//! Two engines implement the same semantics:
//!
//! * [`crate::vm::Vm`] — the production engine: programs are compiled once
//!   per machine to register bytecode ([`crate::compile`] →
//!   [`crate::bytecode`]) and dispatched from a flat instruction array.
//! * [`crate::walker::TreeWalker`] — the original tree-walking
//!   interpreter, retained as the differential-test oracle.
//!
//! [`Interp::new`] picks the engine from the machine (default VM; the
//! `OMPI_ENGINE=walker` environment variable or [`Machine::set_engine`]
//! selects the oracle). Both engines produce bit-identical results — same
//! values, same traps, same output — which the differential tests assert.
//!
//! All program state lives in a guest [`MemArena`], so `&x`, pointer
//! arithmetic and byte-exact `memcpy` to the simulated device all behave
//! like real C. Execution is thread-safe: host `parallel` regions run one
//! `Interp` per OS thread over the shared arena.
//!
//! Untranslated OpenMP programs can also be executed directly: directives
//! are then ignored (a legal single-thread OpenMP execution), which provides
//! the sequential reference behaviour used by differential tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use vmcommon::addr::{self, Space};
use vmcommon::alloc::AllocError;
use vmcommon::sync::Mutex;
use vmcommon::{BlockAllocator, MemArena, MemError, Value};

use crate::ast::*;
use crate::bytecode::CompiledProgram;
use crate::limits::{GuestLimitError, GuestLimits};
use crate::sema::ProgramInfo;

pub use crate::rt::convert;

/// Which frontend stage rejected the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontendStage {
    Parse,
    Sema,
}

/// A parse or semantic-analysis failure, with its source position intact
/// (previously these were flattened into an untyped `Trap` string).
#[derive(Clone, Debug)]
pub struct FrontendError {
    pub stage: FrontendStage,
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            FrontendStage::Parse => "parse",
            FrontendStage::Sema => "semantic",
        };
        write!(f, "{stage} error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl From<crate::parser::ParseError> for FrontendError {
    fn from(e: crate::parser::ParseError) -> Self {
        FrontendError { stage: FrontendStage::Parse, line: e.pos.line, col: e.pos.col, msg: e.msg }
    }
}

impl From<crate::sema::SemaError> for FrontendError {
    fn from(e: crate::sema::SemaError) -> Self {
        FrontendError { stage: FrontendStage::Sema, line: e.pos.line, col: e.pos.col, msg: e.msg }
    }
}

/// Runtime error raised by guest execution.
#[derive(Clone, Debug)]
pub enum InterpError {
    Mem(MemError),
    Alloc(AllocError),
    /// The program never started: parse or sema rejected it.
    Frontend(FrontendError),
    /// Any other guest misbehaviour (unknown function, bad cast, …).
    Trap(String),
    /// A configured resource limit stopped the program (fuel, memory
    /// ceiling, stack depth, job deadline). Recoverable by construction:
    /// the guest misbehaved, the host and device did not.
    Limit(GuestLimitError),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory fault: {e}"),
            InterpError::Alloc(e) => write!(f, "allocation fault: {e}"),
            InterpError::Frontend(e) => write!(f, "{e}"),
            InterpError::Trap(m) => write!(f, "trap: {m}"),
            InterpError::Limit(e) => write!(f, "guest limit: {e}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

impl From<AllocError> for InterpError {
    fn from(e: AllocError) -> Self {
        InterpError::Alloc(e)
    }
}

impl From<FrontendError> for InterpError {
    fn from(e: FrontendError) -> Self {
        InterpError::Frontend(e)
    }
}

impl From<GuestLimitError> for InterpError {
    fn from(e: GuestLimitError) -> Self {
        InterpError::Limit(e)
    }
}

pub type IResult<T> = Result<T, InterpError>;

/// Hooks connect the interpreter to the OMPi runtime libraries.
pub trait Hooks: Send + Sync {
    /// Handle a call to a function that is neither defined in the program
    /// nor a core builtin. Return `Ok(None)` to decline (the interpreter
    /// then traps with "unknown function").
    fn call(&self, name: &str, args: &[Value], ctx: &HookCtx<'_>) -> IResult<Option<Value>>;

    /// Handle a CUDA `kernel<<<grid, block>>>(args)` launch (host CUDA
    /// dialect). The default declines.
    fn kernel_launch(
        &self,
        name: &str,
        _grid: [u32; 3],
        _block: [u32; 3],
        _args: &[Value],
        _ctx: &HookCtx<'_>,
    ) -> IResult<()> {
        Err(InterpError::Trap(format!("no runtime to launch kernel `{name}`")))
    }
}

/// No-op hooks (pure programs).
pub struct NoHooks;

impl Hooks for NoHooks {
    fn call(&self, _name: &str, _args: &[Value], _ctx: &HookCtx<'_>) -> IResult<Option<Value>> {
        Ok(None)
    }
}

/// Context handed to hooks: enough to re-enter guest code and touch memory.
pub struct HookCtx<'a> {
    pub machine: &'a Arc<Machine>,
    pub hooks: &'a Arc<dyn Hooks>,
}

impl<'a> HookCtx<'a> {
    /// Call a guest function on the current thread (fresh stack).
    pub fn call_guest(&self, name: &str, args: &[Value]) -> IResult<Value> {
        let mut i = Interp::new(self.machine.clone(), self.hooks.clone())?;
        i.call(name, args)
    }

    pub fn mem(&self) -> &MemArena {
        &self.machine.mem
    }
}

/// Where `printf` and friends write.
pub type OutputSink = dyn Fn(&str) + Send + Sync;

/// Which execution engine an [`Interp`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Register bytecode VM (production default).
    Vm,
    /// Tree-walking oracle.
    Walker,
}

/// Totals drained from a machine's VM dispatch counters
/// (see [`Machine::drain_vm_counters`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct VmCounters {
    /// Instructions dispatched.
    pub instructions: u64,
    /// Per-category dispatch counts, indexed like
    /// [`crate::bytecode::OP_CATS`].
    pub dispatch: [u64; 6],
}

impl VmCounters {
    pub fn is_zero(&self) -> bool {
        self.instructions == 0 && self.dispatch.iter().all(|&c| c == 0)
    }
}

/// VM instruction counts attributed to one guest source line (see
/// [`Machine::line_profile`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineHit {
    /// Function (chunk) name.
    pub func: String,
    /// 1-based source line (0 = no line info).
    pub line: u32,
    /// Instructions dispatched on this line.
    pub instructions: u64,
    /// Per-category breakdown, indexed like [`crate::bytecode::OP_CATS`].
    pub dispatch: [u64; 6],
}

/// A linked, executable program image plus its guest memory.
pub struct Machine {
    pub prog: Program,
    pub info: ProgramInfo,
    pub mem: MemArena,
    pub heap: Mutex<BlockAllocator>,
    /// Global-variable addresses, indexed like `ProgramInfo::globals`.
    pub(crate) global_addrs: Vec<u64>,
    /// Interned string literals.
    rodata: HashMap<String, u64>,
    /// Function name → item index (definitions only).
    fn_defs: HashMap<String, usize>,
    /// Output sink for printf (also always captured).
    output: Mutex<Option<Box<OutputSink>>>,
    /// Captured output.
    pub captured: Mutex<String>,
    pub(crate) globals_ready: AtomicBool,
    /// Engine for new [`Interp`]s: 0 = VM, 1 = walker.
    engine: AtomicU8,
    /// Lazily compiled bytecode image (built on first VM execution).
    compiled: OnceLock<CompiledProgram>,
    /// VM observability: instructions dispatched, then per-category counts.
    vm_counters: [AtomicU64; 7],
    /// Attribute VM dispatch to source lines (costs one branch per op
    /// when off, a counter bump when on).
    hotspots: AtomicBool,
    /// Accumulated per-(chunk, line) dispatch counts, folded in by
    /// [`crate::vm::Vm`] once per top-level call.
    line_hits: Mutex<HashMap<(u32, u32), [u64; 6]>>,
    /// Guest resource governor: fuel, memory ceiling, stack depth,
    /// deadline. Shared by both engines and the runtime builtins.
    pub(crate) limits: GuestLimits,
}

/// Per-interp stack size (bytes).
pub(crate) const STACK_SIZE: u64 = 4 << 20;

impl Machine {
    /// Build a machine for an analyzed program with `mem_bytes` of guest
    /// memory. Global variables and string literals are laid out
    /// immediately; initializers run on the first [`Interp`] creation.
    pub fn new(prog: Program, info: ProgramInfo, mem_bytes: usize) -> IResult<Arc<Machine>> {
        let limits = GuestLimits::from_env().map_err(InterpError::Trap)?;
        Self::new_with_limits(prog, info, mem_bytes, limits)
    }

    /// Build a machine with pre-resolved guest limits, skipping the
    /// `OMPI_GUEST_*` environment read entirely. Long-running hosts (the
    /// batch server) snapshot the environment once at startup and must not
    /// re-read it per job — a `setenv` mid-soak would silently reconfigure
    /// every tenant.
    pub fn new_with_limits(
        prog: Program,
        info: ProgramInfo,
        mem_bytes: usize,
        limits: GuestLimits,
    ) -> IResult<Arc<Machine>> {
        let mem = MemArena::new(mem_bytes);
        // Reserve the first 256 bytes so offset 0 stays an unmapped "null".
        let mut cursor: u64 = 256;

        // Globals.
        let mut global_addrs = Vec::with_capacity(info.globals.len());
        for g in &info.globals {
            let size = g.ty.size().ok_or_else(|| {
                InterpError::Trap(format!("global `{}` has unsized type {}", g.name, g.ty))
            })?;
            cursor = cursor.next_multiple_of(g.ty.align().max(8));
            global_addrs.push(addr::make(Space::Host, cursor));
            cursor += size;
        }

        // String literals.
        let mut rodata = HashMap::new();
        let mut strings = Vec::new();
        collect_strings(&prog, &mut strings);
        for s in strings {
            if rodata.contains_key(&s) {
                continue;
            }
            cursor = cursor.next_multiple_of(8);
            mem.write_bytes(cursor, s.as_bytes())?;
            mem.store_u8(cursor + s.len() as u64, 0)?;
            rodata.insert(s.clone(), addr::make(Space::Host, cursor));
            cursor += s.len() as u64 + 1;
        }

        let heap = BlockAllocator::new(cursor, mem.size() as u64 - cursor);
        let mut fn_defs = HashMap::new();
        for (i, item) in prog.items.iter().enumerate() {
            if let Item::Func(f) = item {
                fn_defs.insert(f.sig.name.clone(), i);
            }
        }

        let engine = match std::env::var("OMPI_ENGINE").as_deref() {
            Ok("walker") => Engine::Walker,
            _ => Engine::Vm,
        };
        let hotspots = matches!(std::env::var("OMPI_HOTSPOTS").as_deref(),
                                Ok(v) if !v.is_empty() && v != "0");

        Ok(Arc::new(Machine {
            prog,
            info,
            mem,
            heap: Mutex::new(heap),
            global_addrs,
            rodata,
            fn_defs,
            output: Mutex::new(None),
            captured: Mutex::new(String::new()),
            globals_ready: AtomicBool::new(false),
            engine: AtomicU8::new(engine as u8),
            compiled: OnceLock::new(),
            vm_counters: Default::default(),
            hotspots: AtomicBool::new(hotspots),
            line_hits: Mutex::new(HashMap::new()),
            limits,
        }))
    }

    /// Convenience: parse + analyze + build with a default 64 MiB arena.
    pub fn from_source(src: &str) -> IResult<Arc<Machine>> {
        Self::from_source_with_mem(src, 64 << 20)
    }

    pub fn from_source_with_mem(src: &str, mem_bytes: usize) -> IResult<Arc<Machine>> {
        let mut prog = crate::parser::parse(src).map_err(FrontendError::from)?;
        let info = crate::sema::analyze(&mut prog).map_err(FrontendError::from)?;
        Machine::new(prog, info, mem_bytes)
    }

    /// Guest address of a global by name.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        let i = self.info.globals.iter().position(|g| g.name == name)?;
        Some(self.global_addrs[i])
    }

    /// Guest address of an interned string literal.
    pub(crate) fn rodata_addr(&self, s: &str) -> Option<u64> {
        self.rodata.get(s).copied()
    }

    /// The function definition item, by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.fn_defs.get(name).and_then(|&i| match &self.prog.items[i] {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Engine used by new [`Interp`]s on this machine.
    pub fn engine(&self) -> Engine {
        if self.engine.load(Ordering::Relaxed) == Engine::Walker as u8 {
            Engine::Walker
        } else {
            Engine::Vm
        }
    }

    /// Override the execution engine (tests, A/B measurement). Affects
    /// [`Interp`]s created after the call.
    pub fn set_engine(&self, engine: Engine) {
        self.engine.store(engine as u8, Ordering::Relaxed);
    }

    /// The bytecode image, compiled on first use.
    pub(crate) fn compiled(&self) -> &CompiledProgram {
        self.compiled.get_or_init(|| crate::compile::compile(self))
    }

    /// Add a VM execution's dispatch counts (flushed once per top-level
    /// guest call, not per instruction).
    pub(crate) fn add_vm_counters(&self, instructions: u64, dispatch: &[u64; 6]) {
        self.vm_counters[0].fetch_add(instructions, Ordering::Relaxed);
        for (slot, &n) in self.vm_counters[1..].iter().zip(dispatch) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Take the accumulated VM dispatch counters (resets them to zero).
    pub fn drain_vm_counters(&self) -> VmCounters {
        let mut c = VmCounters {
            instructions: self.vm_counters[0].swap(0, Ordering::Relaxed),
            ..Default::default()
        };
        for (out, slot) in c.dispatch.iter_mut().zip(&self.vm_counters[1..]) {
            *out = slot.swap(0, Ordering::Relaxed);
        }
        c
    }

    /// Is guest-source hotspot attribution on? (Set by the
    /// `OMPI_HOTSPOTS` environment variable or [`Machine::set_hotspots`].)
    pub fn hotspots_enabled(&self) -> bool {
        self.hotspots.load(Ordering::Relaxed)
    }

    /// Enable/disable hotspot attribution for [`Interp`]s created after
    /// the call.
    pub fn set_hotspots(&self, on: bool) {
        self.hotspots.store(on, Ordering::Relaxed);
    }

    /// Fold one chunk's per-pc hit counts into the per-line accumulator
    /// (flushed once per top-level guest call by the VM).
    pub(crate) fn add_line_hits(&self, chunk: u32, pc_hits: &[u64]) {
        let prog = self.compiled();
        let ch = &prog.chunks[chunk as usize];
        let table = &prog.line_tables[ch.line_table as usize];
        let mut hits = self.line_hits.lock();
        for (pc, &n) in pc_hits.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let line = crate::bytecode::line_for_pc(table, pc as u32);
            let cat = ch.code[pc].cat() as usize;
            hits.entry((chunk, line)).or_insert([0; 6])[cat] += n;
        }
    }

    /// The accumulated hotspot profile: VM dispatch counts per
    /// (function, source line), sorted by function name then line.
    /// Empty unless hotspot attribution was enabled during execution.
    pub fn line_profile(&self) -> Vec<LineHit> {
        let prog = self.compiled();
        let hits = self.line_hits.lock();
        let mut rows: Vec<LineHit> = hits
            .iter()
            .map(|(&(chunk, line), d)| LineHit {
                func: prog.chunks[chunk as usize].name.clone(),
                line,
                instructions: d.iter().sum(),
                dispatch: *d,
            })
            .collect();
        rows.sort_by(|a, b| a.func.cmp(&b.func).then(a.line.cmp(&b.line)));
        rows
    }

    /// The guest resource governor (fuel, memory ceiling, stack depth,
    /// deadline). Read the `OMPI_GUEST_*` environment at machine build;
    /// the runner overrides from [`RunnerConfig`]-style settings via the
    /// setters on [`GuestLimits`].
    pub fn limits(&self) -> &GuestLimits {
        &self.limits
    }

    /// Install a live output sink for `printf` (output is captured too).
    pub fn set_output(&self, sink: Box<OutputSink>) {
        *self.output.lock() = Some(sink);
    }

    pub(crate) fn emit(&self, s: &str) {
        if let Some(sink) = self.output.lock().as_ref() {
            sink(s);
        }
        self.captured.lock().push_str(s);
    }

    /// Take everything printed so far.
    pub fn take_output(&self) -> String {
        std::mem::take(&mut *self.captured.lock())
    }
}

fn collect_strings(prog: &Program, out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::StrLit(s) = &e.kind {
            out.push(s.clone());
        }
        visit_child_exprs(e, &mut |c| in_expr(c, out));
    }
    fn in_stmt(s: &Stmt, out: &mut Vec<String>) {
        visit_stmt_exprs(s, &mut |e| in_expr(e, out));
        visit_child_stmts(s, &mut |c| in_stmt(c, out));
    }
    for item in &prog.items {
        if let Item::Func(f) = item {
            for s in &f.body.stmts {
                in_stmt(s, out);
            }
        }
    }
}

/// Visit the direct child expressions of an expression.
pub fn visit_child_exprs(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    match &e.kind {
        ExprKind::Call { args, .. } => args.iter().for_each(&mut *f),
        ExprKind::KernelLaunch { grid, block, args, .. } => {
            f(grid);
            f(block);
            args.iter().for_each(&mut *f);
        }
        ExprKind::Dim3 { x, y, z } => {
            f(x);
            if let Some(y) = y {
                f(y);
            }
            if let Some(z) = z {
                f(z);
            }
        }
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::IncDec { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeofExpr(expr) => f(expr),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Ternary { cond, then_e, else_e } => {
            f(cond);
            f(then_e);
            f(else_e);
        }
        ExprKind::Comma(a, b) => {
            f(a);
            f(b);
        }
        _ => {}
    }
}

/// Visit the direct expressions of a statement (not recursing into child
/// statements).
pub fn visit_stmt_exprs(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match s {
        Stmt::Expr(e) => f(e),
        Stmt::Decl(d) => {
            if let Some(init) = &d.init {
                visit_init(init, f);
            }
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::For { cond, step, .. } => {
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
        }
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => f(cond),
        Stmt::Return(Some(e)) => f(e),
        _ => {}
    }
}

fn visit_init(i: &Init, f: &mut dyn FnMut(&Expr)) {
    match i {
        Init::Expr(e) => f(e),
        Init::List(list) => list.iter().for_each(|it| visit_init(it, f)),
    }
}

/// Visit the direct child statements of a statement.
pub fn visit_child_stmts(s: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    match s {
        Stmt::Block(b) => b.stmts.iter().for_each(&mut *f),
        Stmt::If { then_s, else_s, .. } => {
            f(then_s);
            if let Some(e) = else_s {
                f(e);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                f(i);
            }
            f(body);
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => f(body),
        Stmt::Omp(o) => {
            if let Some(b) = &o.body {
                f(b);
            }
        }
        _ => {}
    }
}

/// An execution context: one per OS thread, with its own guest stack.
///
/// A façade over the machine-selected engine; all production callers
/// (`core` runner, `hostomp` teams, `cudadev` replay) go through this.
pub enum Interp {
    Vm(crate::vm::Vm),
    Walker(crate::walker::TreeWalker),
}

impl Interp {
    /// Create an execution context with a fresh guest stack, using the
    /// machine's configured [`Engine`]. Runs global initializers on first
    /// creation per machine.
    pub fn new(machine: Arc<Machine>, hooks: Arc<dyn Hooks>) -> IResult<Interp> {
        match machine.engine() {
            Engine::Vm => Ok(Interp::Vm(crate::vm::Vm::new(machine, hooks)?)),
            Engine::Walker => Ok(Interp::Walker(crate::walker::TreeWalker::new(machine, hooks)?)),
        }
    }

    /// Run `main` (or any entry) with no arguments.
    pub fn run_main(&mut self) -> IResult<Value> {
        self.call("main", &[])
    }

    /// Call a guest function by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> IResult<Value> {
        match self {
            Interp::Vm(v) => v.call(name, args),
            Interp::Walker(w) => w.call(name, args),
        }
    }
}
