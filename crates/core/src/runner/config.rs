//! Config resolution: the one place `OMPI_*` runner knobs are read from
//! the environment.
//!
//! [`RunnerConfig`] keeps the user-facing builder shape — tunable fields
//! are `Option`s so "explicitly set" and "left at default" are different
//! states. [`ResolvedConfig::resolve`] snapshots it against the process
//! environment exactly once, with the documented precedence:
//!
//! 1. an explicit `RunnerConfig` field always wins,
//! 2. otherwise a well-formed env var applies,
//! 3. otherwise the built-in default.
//!
//! A malformed env var that would have applied (rule 2) is a typed
//! [`ConfigError`], never a silent fallback — the same stance
//! `OMPI_GUEST_FUEL` has taken since the guest governor landed. Long-lived
//! processes (the `serve` batch server) resolve once at startup and run
//! every job from the snapshot, so a mid-run `setenv` can never
//! reconfigure tenants behind their backs.

use std::sync::Arc;
use std::time::Duration;

use cudadev::RetryPolicy;
use gpusim::{ExecMode, FaultPlan};
use minic::limits::GuestLimits;

use super::RunnerConfig;

/// Default per-device DRAM size when neither config nor env say otherwise.
pub const DEFAULT_DEVICE_MEM: usize = 512 << 20;
/// Default hang-watchdog deadline (`OMPI_LAUNCH_TIMEOUT_MS`).
pub const DEFAULT_LAUNCH_TIMEOUT: Duration = Duration::from_millis(250);
/// Default reset budget before a device latches broken (`OMPI_MAX_RESETS`).
pub const DEFAULT_MAX_RESETS: u32 = 3;

/// A malformed `OMPI_*` value that was about to apply. Typed so callers
/// (and the batch server's admission path) can report it without string
/// matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Not parseable as the expected integer.
    Int { var: &'static str, value: String },
    /// Not a recognized boolean spelling (see [`obs::parse_bool`]).
    Bool { var: &'static str, value: String },
    /// `parse_size` rejected the value.
    Size { var: &'static str, msg: String },
    /// A parsed byte count that does not fit `usize` on this target —
    /// previously a silent `as usize` wrap on 32-bit.
    Overflow { var: &'static str, bytes: u64 },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Int { var, value } => {
                write!(f, "{var}: `{value}` is not an integer")
            }
            ConfigError::Bool { var, value } => {
                write!(f, "{var}: `{value}` is not a boolean (use 1/true/on/yes or 0/false/off/no)")
            }
            ConfigError::Size { var, msg } => write!(f, "{var}: {msg}"),
            ConfigError::Overflow { var, bytes } => {
                write!(f, "{var}: {bytes} bytes does not fit in usize on this target")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A fully-concrete runner configuration: every knob has its final value
/// and no environment read remains. One snapshot serves any number of
/// jobs; [`super::Runner::with_shared_registry`] takes it directly.
#[derive(Clone, Debug)]
pub struct ResolvedConfig {
    pub host_mem: usize,
    pub device_mem: usize,
    pub exec_mode: ExecMode,
    pub jit_cache_dir: std::path::PathBuf,
    pub launch_sampling: bool,
    pub num_devices: usize,
    pub async_streams: bool,
    pub fault_plan: Option<Arc<FaultPlan>>,
    pub fault_spec: Option<String>,
    pub retry: RetryPolicy,
    pub launch_timeout: Duration,
    pub max_resets: u32,
    pub fuel: Option<u64>,
    pub guest_mem: Option<u64>,
    pub guest_stack: Option<u32>,
    pub job_timeout: Option<Duration>,
    pub obs: Option<Arc<obs::Obs>>,
}

impl ResolvedConfig {
    /// Snapshot for the OpenMP offload path: all of `OMPI_DEV_MEM`,
    /// `OMPI_ASYNC`, `OMPI_LAUNCH_TIMEOUT_MS`, `OMPI_MAX_RESETS`,
    /// `OMPI_JOB_TIMEOUT_MS` and the `OMPI_GUEST_*` limits may apply
    /// (each only where the config left the field unset).
    pub fn resolve(cfg: &RunnerConfig) -> Result<ResolvedConfig, ConfigError> {
        Self::resolve_inner(cfg, true)
    }

    /// Snapshot for the pure-CUDA baseline: the device knobs come from the
    /// config alone (`OMPI_DEV_MEM` would just crash a baseline that
    /// manages raw device memory itself), while the job deadline and guest
    /// limits still honour their env vars.
    pub fn resolve_cuda(cfg: &RunnerConfig) -> Result<ResolvedConfig, ConfigError> {
        Self::resolve_inner(cfg, false)
    }

    fn resolve_inner(cfg: &RunnerConfig, runner_env: bool) -> Result<ResolvedConfig, ConfigError> {
        let device_mem = match (cfg.device_mem, runner_env) {
            (Some(m), _) => m,
            (None, true) => env_size_usize("OMPI_DEV_MEM")?.unwrap_or(DEFAULT_DEVICE_MEM),
            (None, false) => DEFAULT_DEVICE_MEM,
        };
        let async_streams = match (cfg.async_streams, runner_env) {
            (Some(a), _) => a,
            (None, true) => env_bool("OMPI_ASYNC")?.unwrap_or(false),
            (None, false) => false,
        };
        let launch_timeout = match (cfg.launch_timeout, runner_env) {
            (Some(t), _) => t,
            (None, true) => env_u64("OMPI_LAUNCH_TIMEOUT_MS")?
                .map(Duration::from_millis)
                .unwrap_or(DEFAULT_LAUNCH_TIMEOUT),
            (None, false) => DEFAULT_LAUNCH_TIMEOUT,
        };
        let max_resets = match (cfg.max_resets, runner_env) {
            (Some(n), _) => n,
            (None, true) => env_u32("OMPI_MAX_RESETS")?.unwrap_or(DEFAULT_MAX_RESETS),
            (None, false) => DEFAULT_MAX_RESETS,
        };
        let job_timeout = match cfg.job_timeout {
            Some(t) => Some(t),
            None => env_u64("OMPI_JOB_TIMEOUT_MS")?.map(Duration::from_millis),
        };
        let fuel = match cfg.fuel {
            Some(f) => Some(f),
            None => env_u64("OMPI_GUEST_FUEL")?,
        };
        let guest_mem = match cfg.guest_mem {
            Some(m) => Some(m),
            None => env_size("OMPI_GUEST_MEM")?,
        };
        let guest_stack = match cfg.guest_stack {
            Some(s) => Some(s),
            None => env_u32("OMPI_GUEST_STACK")?,
        };
        Ok(ResolvedConfig {
            host_mem: cfg.host_mem,
            device_mem,
            exec_mode: cfg.exec_mode,
            jit_cache_dir: cfg.jit_cache_dir.clone(),
            launch_sampling: cfg.launch_sampling,
            num_devices: cfg.num_devices,
            async_streams,
            fault_plan: cfg.fault_plan.clone(),
            fault_spec: cfg.fault_spec.clone(),
            retry: cfg.retry,
            launch_timeout,
            max_resets,
            fuel,
            guest_mem,
            guest_stack,
            job_timeout,
            obs: cfg.obs.clone(),
        })
    }

    /// The guest governor state for one job's machine, built from the
    /// snapshot — no environment read.
    pub fn guest_limits(&self) -> GuestLimits {
        let l = GuestLimits::default();
        l.set_fuel(self.fuel);
        l.set_mem_limit(self.guest_mem);
        if let Some(s) = self.guest_stack {
            l.set_stack_limit(s);
        }
        l
    }
}

fn env_u64(var: &'static str) -> Result<Option<u64>, ConfigError> {
    match std::env::var(var) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ConfigError::Int { var, value: s.clone() }),
        Err(_) => Ok(None),
    }
}

fn env_u32(var: &'static str) -> Result<Option<u32>, ConfigError> {
    match std::env::var(var) {
        Ok(s) => s
            .trim()
            .parse::<u32>()
            .map(Some)
            .map_err(|_| ConfigError::Int { var, value: s.clone() }),
        Err(_) => Ok(None),
    }
}

fn env_bool(var: &'static str) -> Result<Option<bool>, ConfigError> {
    match std::env::var(var) {
        Ok(s) => match obs::parse_bool(&s) {
            Some(b) => Ok(Some(b)),
            None => Err(ConfigError::Bool { var, value: s }),
        },
        Err(_) => Ok(None),
    }
}

fn env_size(var: &'static str) -> Result<Option<u64>, ConfigError> {
    match std::env::var(var) {
        Ok(s) => vmcommon::fmt::parse_size(&s)
            .map(Some)
            .map_err(|e| ConfigError::Size { var, msg: e.to_string() }),
        Err(_) => Ok(None),
    }
}

fn env_size_usize(var: &'static str) -> Result<Option<usize>, ConfigError> {
    match env_size(var)? {
        Some(bytes) => {
            usize::try_from(bytes).map(Some).map_err(|_| ConfigError::Overflow { var, bytes })
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-dependent resolution is covered by `tests/config_precedence.rs`,
    // which serializes on a process-wide lock; the pure paths are here.

    #[test]
    fn defaults_fill_unset_fields() {
        let rc = ResolvedConfig::resolve_cuda(&RunnerConfig::default()).unwrap();
        assert_eq!(rc.device_mem, DEFAULT_DEVICE_MEM);
        assert!(!rc.async_streams);
        assert_eq!(rc.launch_timeout, DEFAULT_LAUNCH_TIMEOUT);
        assert_eq!(rc.max_resets, DEFAULT_MAX_RESETS);
    }

    #[test]
    fn explicit_fields_pass_through() {
        let cfg = RunnerConfig {
            device_mem: Some(1 << 20),
            async_streams: Some(true),
            launch_timeout: Some(Duration::from_millis(7)),
            max_resets: Some(9),
            ..Default::default()
        };
        let rc = ResolvedConfig::resolve_cuda(&cfg).unwrap();
        assert_eq!(rc.device_mem, 1 << 20);
        assert!(rc.async_streams);
        assert_eq!(rc.launch_timeout, Duration::from_millis(7));
        assert_eq!(rc.max_resets, 9);
    }

    #[test]
    fn config_error_messages_name_the_variable() {
        let e = ConfigError::Bool { var: "OMPI_ASYNC", value: "off?".into() };
        assert!(e.to_string().contains("OMPI_ASYNC"));
        let e = ConfigError::Overflow { var: "OMPI_DEV_MEM", bytes: u64::MAX };
        assert!(e.to_string().contains("OMPI_DEV_MEM"));
        assert!(e.to_string().contains("does not fit"));
    }

    #[test]
    fn guest_limits_come_from_the_snapshot() {
        let cfg = RunnerConfig {
            fuel: Some(123),
            guest_mem: Some(456),
            guest_stack: Some(7),
            ..Default::default()
        };
        let rc = ResolvedConfig::resolve_cuda(&cfg).unwrap();
        let l = rc.guest_limits();
        assert_eq!(l.fuel_budget(), Some(123));
        assert_eq!(l.mem_limit(), Some(456));
        assert_eq!(l.stack_limit(), 7);
    }
}
