#!/usr/bin/env sh
# Repo-wide quality gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== module size ratchet (core, obs, serve, minic execution engine; 900 lines) =="
# The transform monolith was split into a pass pipeline; keep it split.
# The obs crate starts split (trace/metrics/profile/json, plus the PR-8
# flight recorder and hotspots modules, covered by the same find); keep
# it that way.
# The minic execution engine starts split too (interp facade / walker
# oracle / bytecode / compile/{mod,expr} / vm / rt, plus the PR-9 guest
# resource governor and the fuzz generator); keep each layer under
# the cap rather than letting the VM regrow into a monolith. (The parser
# predates the ratchet and is exempt until it gets the same treatment.)
minic_engine="
crates/minic/src/interp.rs
crates/minic/src/walker.rs
crates/minic/src/bytecode.rs
crates/minic/src/compile/mod.rs
crates/minic/src/compile/expr.rs
crates/minic/src/vm.rs
crates/minic/src/rt.rs
crates/minic/src/limits.rs
crates/minic/src/fuzzgen.rs
"
oversized=0
for f in $(find crates/core/src crates/obs/src crates/serve/src -name '*.rs') $minic_engine; do
    lines=$(wc -l < "$f")
    if [ "$lines" -gt 900 ]; then
        echo "FAIL: $f has $lines lines (limit 900)"
        oversized=1
    fi
done
[ "$oversized" -eq 0 ] || exit 1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --quiet

echo "All checks passed."
