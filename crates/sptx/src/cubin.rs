//! The `.cubin` binary container — the reproduction's AOT kernel artifact.
//!
//! A small hand-rolled format: magic, version, architecture tag, link flag,
//! then each function with its flattened node tree. A FNV-1a checksum guards
//! against truncation/corruption. cubin mode "performs all the compilation
//! steps and produces larger binaries" (§3.3) — here, the binary encodes the
//! already-lowered IR so no JIT step is needed at load time.

use crate::ir::*;
use vmcommon::hash::fnv1a;

const MAGIC: &[u8; 4] = b"SCBN";
const VERSION: u32 = 1;

/// Decode error.
#[derive(Clone, Debug)]
pub struct CubinError(pub String);

impl std::fmt::Display for CubinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cubin error: {}", self.0)
    }
}

impl std::error::Error for CubinError {}

// ----------------------------------------------------------------- writer

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Serialize a module.
pub fn encode(m: &Module) -> Vec<u8> {
    let mut w = W { buf: Vec::with_capacity(4096) };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.str(&m.name);
    w.str(&m.arch);
    w.u8(m.device_lib_linked as u8);
    w.u32(m.functions.len() as u32);
    for f in &m.functions {
        w.str(&f.name);
        w.u8(f.is_kernel as u8);
        w.u32(f.params.len() as u32);
        for p in &f.params {
            w.str(&p.name);
            w.u8(scalar_code(p.ty));
        }
        w.u32(f.num_regs);
        w.u64(f.local_size);
        w.u64(f.shared_size);
        write_nodes(&mut w, &f.body);
    }
    let sum = fnv1a(&w.buf);
    w.u64(sum);
    w.buf
}

fn scalar_code(t: ScalarTy) -> u8 {
    match t {
        ScalarTy::I32 => 0,
        ScalarTy::I64 => 1,
        ScalarTy::F32 => 2,
        ScalarTy::F64 => 3,
    }
}

fn mem_code(t: MemTy) -> u8 {
    match t {
        MemTy::B8 => 0,
        MemTy::B32 => 1,
        MemTy::B64 => 2,
        MemTy::F32 => 3,
        MemTy::F64 => 4,
    }
}

fn cvt_code(t: CvtTy) -> u8 {
    match t {
        CvtTy::S8 => 0,
        CvtTy::I32 => 1,
        CvtTy::I64 => 2,
        CvtTy::F32 => 3,
        CvtTy::F64 => 4,
    }
}

fn write_operand(w: &mut W, o: &Operand) {
    match o {
        Operand::Reg(Reg(n)) => {
            w.u8(0);
            w.u32(*n);
        }
        Operand::ImmI(v) => {
            w.u8(1);
            w.i64(*v);
        }
        Operand::ImmF(v) => {
            w.u8(2);
            w.f64(*v);
        }
        Operand::Special(s) => {
            w.u8(3);
            w.u8(*s as u8);
        }
        Operand::LocalBase => w.u8(4),
        Operand::SharedBase => w.u8(5),
    }
}

fn write_opt_operand(w: &mut W, o: &Option<Operand>) {
    match o {
        None => w.u8(0),
        Some(o) => {
            w.u8(1);
            write_operand(w, o);
        }
    }
}

fn write_nodes(w: &mut W, nodes: &[Node]) {
    w.u32(nodes.len() as u32);
    for n in nodes {
        match n {
            Node::Inst(i) => {
                w.u8(0);
                write_inst(w, i);
            }
            Node::If { cond, then_b, else_b } => {
                w.u8(1);
                write_operand(w, cond);
                write_nodes(w, then_b);
                write_nodes(w, else_b);
            }
            Node::Loop { body } => {
                w.u8(2);
                write_nodes(w, body);
            }
            Node::Break => w.u8(3),
            Node::Continue => w.u8(4),
        }
    }
}

fn write_inst(w: &mut W, i: &Inst) {
    match i {
        Inst::Bin { ty, op, dst, a, b } => {
            w.u8(0);
            w.u8(scalar_code(*ty));
            w.u8(*op as u8);
            w.u32(dst.0);
            write_operand(w, a);
            write_operand(w, b);
        }
        Inst::Un { ty, op, dst, a } => {
            w.u8(1);
            w.u8(scalar_code(*ty));
            w.u8(*op as u8);
            w.u32(dst.0);
            write_operand(w, a);
        }
        Inst::Mov { dst, src } => {
            w.u8(2);
            w.u32(dst.0);
            write_operand(w, src);
        }
        Inst::Cvt { to, from, dst, src } => {
            w.u8(3);
            w.u8(cvt_code(*to));
            w.u8(cvt_code(*from));
            w.u32(dst.0);
            write_operand(w, src);
        }
        Inst::Ld { ty, dst, addr, offset } => {
            w.u8(4);
            w.u8(mem_code(*ty));
            w.u32(dst.0);
            write_operand(w, addr);
            w.i64(*offset);
        }
        Inst::St { ty, src, addr, offset } => {
            w.u8(5);
            w.u8(mem_code(*ty));
            write_operand(w, src);
            write_operand(w, addr);
            w.i64(*offset);
        }
        Inst::AtomCas { dst, addr, expected, new } => {
            w.u8(6);
            w.u32(dst.0);
            write_operand(w, addr);
            write_operand(w, expected);
            write_operand(w, new);
        }
        Inst::Atom { op, dst, addr, val } => {
            w.u8(7);
            w.u8(*op as u8);
            w.u32(dst.0);
            write_operand(w, addr);
            write_operand(w, val);
        }
        Inst::BarSync { id, count } => {
            w.u8(8);
            write_operand(w, id);
            write_opt_operand(w, count);
        }
        Inst::Call { func, dst, args } => {
            w.u8(9);
            w.u32(*func);
            match dst {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u32(d.0);
                }
            }
            w.u32(args.len() as u32);
            for a in args {
                write_operand(w, a);
            }
        }
        Inst::Intrinsic { name, dst, args, sargs } => {
            w.u8(10);
            w.str(name);
            w.u32(sargs.len() as u32);
            for sa in sargs {
                w.str(sa);
            }
            match dst {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u32(d.0);
                }
            }
            w.u32(args.len() as u32);
            for a in args {
                write_operand(w, a);
            }
        }
        Inst::Ret { val } => {
            w.u8(11);
            write_opt_operand(w, val);
        }
        Inst::Trap { msg } => {
            w.u8(12);
            w.str(msg);
        }
    }
}

// ----------------------------------------------------------------- reader

struct R<'b> {
    buf: &'b [u8],
    i: usize,
}

impl<'b> R<'b> {
    fn need(&self, n: usize) -> Result<(), CubinError> {
        if self.i + n > self.buf.len() {
            Err(CubinError("truncated cubin".into()))
        } else {
            Ok(())
        }
    }
    fn u8(&mut self) -> Result<u8, CubinError> {
        self.need(1)?;
        let v = self.buf[self.i];
        self.i += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, CubinError> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.buf[self.i..self.i + 4].try_into().unwrap());
        self.i += 4;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, CubinError> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.buf[self.i..self.i + 8].try_into().unwrap());
        self.i += 8;
        Ok(v)
    }
    fn i64(&mut self) -> Result<i64, CubinError> {
        Ok(self.u64()? as i64)
    }
    fn f64(&mut self) -> Result<f64, CubinError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, CubinError> {
        let n = self.u32()? as usize;
        self.need(n)?;
        let s = String::from_utf8_lossy(&self.buf[self.i..self.i + n]).into_owned();
        self.i += n;
        Ok(s)
    }
}

fn scalar_from(code: u8) -> Result<ScalarTy, CubinError> {
    Ok(match code {
        0 => ScalarTy::I32,
        1 => ScalarTy::I64,
        2 => ScalarTy::F32,
        3 => ScalarTy::F64,
        _ => return Err(CubinError(format!("bad scalar code {code}"))),
    })
}

fn mem_from(code: u8) -> Result<MemTy, CubinError> {
    Ok(match code {
        0 => MemTy::B8,
        1 => MemTy::B32,
        2 => MemTy::B64,
        3 => MemTy::F32,
        4 => MemTy::F64,
        _ => return Err(CubinError(format!("bad mem code {code}"))),
    })
}

fn cvt_from(code: u8) -> Result<CvtTy, CubinError> {
    Ok(match code {
        0 => CvtTy::S8,
        1 => CvtTy::I32,
        2 => CvtTy::I64,
        3 => CvtTy::F32,
        4 => CvtTy::F64,
        _ => return Err(CubinError(format!("bad cvt code {code}"))),
    })
}

const BINOPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Min,
    BinOp::Max,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::SetLt,
    BinOp::SetLe,
    BinOp::SetGt,
    BinOp::SetGe,
    BinOp::SetEq,
    BinOp::SetNe,
];

const UNOPS: [UnOp; 11] = [
    UnOp::Neg,
    UnOp::Not,
    UnOp::BitNot,
    UnOp::Sqrt,
    UnOp::Abs,
    UnOp::Floor,
    UnOp::Ceil,
    UnOp::Exp,
    UnOp::Log,
    UnOp::Sin,
    UnOp::Cos,
];

const ATOMOPS: [AtomOp; 8] = [
    AtomOp::CasB32,
    AtomOp::AddI32,
    AtomOp::AddI64,
    AtomOp::AddF32,
    AtomOp::AddF64,
    AtomOp::ExchB32,
    AtomOp::MinI32,
    AtomOp::MaxI32,
];

const SPECIALS: [SpecialReg; 14] = [
    SpecialReg::TidX,
    SpecialReg::TidY,
    SpecialReg::TidZ,
    SpecialReg::NtidX,
    SpecialReg::NtidY,
    SpecialReg::NtidZ,
    SpecialReg::CtaidX,
    SpecialReg::CtaidY,
    SpecialReg::CtaidZ,
    SpecialReg::NctaidX,
    SpecialReg::NctaidY,
    SpecialReg::NctaidZ,
    SpecialReg::LaneId,
    SpecialReg::WarpId,
];

fn read_operand(r: &mut R) -> Result<Operand, CubinError> {
    Ok(match r.u8()? {
        0 => Operand::Reg(Reg(r.u32()?)),
        1 => Operand::ImmI(r.i64()?),
        2 => Operand::ImmF(r.f64()?),
        3 => {
            let c = r.u8()? as usize;
            Operand::Special(
                *SPECIALS.get(c).ok_or_else(|| CubinError(format!("bad special {c}")))?,
            )
        }
        4 => Operand::LocalBase,
        5 => Operand::SharedBase,
        other => return Err(CubinError(format!("bad operand tag {other}"))),
    })
}

fn read_opt_operand(r: &mut R) -> Result<Option<Operand>, CubinError> {
    Ok(if r.u8()? == 0 { None } else { Some(read_operand(r)?) })
}

fn read_opt_reg(r: &mut R) -> Result<Option<Reg>, CubinError> {
    Ok(if r.u8()? == 0 { None } else { Some(Reg(r.u32()?)) })
}

fn read_nodes(r: &mut R, depth: u32) -> Result<Vec<Node>, CubinError> {
    if depth > 128 {
        return Err(CubinError("node nesting too deep".into()));
    }
    let n = r.u32()? as usize;
    if n > 1 << 22 {
        return Err(CubinError("implausible node count".into()));
    }
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => Node::Inst(read_inst(r, depth)?),
            1 => {
                let cond = read_operand(r)?;
                let then_b = read_nodes(r, depth + 1)?;
                let else_b = read_nodes(r, depth + 1)?;
                Node::If { cond, then_b, else_b }
            }
            2 => Node::Loop { body: read_nodes(r, depth + 1)? },
            3 => Node::Break,
            4 => Node::Continue,
            other => return Err(CubinError(format!("bad node tag {other}"))),
        });
    }
    Ok(out)
}

fn read_inst(r: &mut R, _depth: u32) -> Result<Inst, CubinError> {
    Ok(match r.u8()? {
        0 => {
            let ty = scalar_from(r.u8()?)?;
            let opc = r.u8()? as usize;
            let op = *BINOPS.get(opc).ok_or_else(|| CubinError(format!("bad binop {opc}")))?;
            let dst = Reg(r.u32()?);
            Inst::Bin { ty, op, dst, a: read_operand(r)?, b: read_operand(r)? }
        }
        1 => {
            let ty = scalar_from(r.u8()?)?;
            let opc = r.u8()? as usize;
            let op = *UNOPS.get(opc).ok_or_else(|| CubinError(format!("bad unop {opc}")))?;
            let dst = Reg(r.u32()?);
            Inst::Un { ty, op, dst, a: read_operand(r)? }
        }
        2 => Inst::Mov { dst: Reg(r.u32()?), src: read_operand(r)? },
        3 => {
            let to = cvt_from(r.u8()?)?;
            let from = cvt_from(r.u8()?)?;
            Inst::Cvt { to, from, dst: Reg(r.u32()?), src: read_operand(r)? }
        }
        4 => {
            let ty = mem_from(r.u8()?)?;
            let dst = Reg(r.u32()?);
            let addr = read_operand(r)?;
            Inst::Ld { ty, dst, addr, offset: r.i64()? }
        }
        5 => {
            let ty = mem_from(r.u8()?)?;
            let src = read_operand(r)?;
            let addr = read_operand(r)?;
            Inst::St { ty, src, addr, offset: r.i64()? }
        }
        6 => Inst::AtomCas {
            dst: Reg(r.u32()?),
            addr: read_operand(r)?,
            expected: read_operand(r)?,
            new: read_operand(r)?,
        },
        7 => {
            let opc = r.u8()? as usize;
            let op = *ATOMOPS.get(opc).ok_or_else(|| CubinError(format!("bad atomop {opc}")))?;
            Inst::Atom { op, dst: Reg(r.u32()?), addr: read_operand(r)?, val: read_operand(r)? }
        }
        8 => Inst::BarSync { id: read_operand(r)?, count: read_opt_operand(r)? },
        9 => {
            let func = r.u32()?;
            let dst = read_opt_reg(r)?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(read_operand(r)?);
            }
            Inst::Call { func, dst, args }
        }
        10 => {
            let name = r.str()?;
            let ns = r.u32()? as usize;
            if ns > 64 {
                return Err(CubinError("implausible sarg count".into()));
            }
            let mut sargs = Vec::with_capacity(ns);
            for _ in 0..ns {
                sargs.push(r.str()?);
            }
            let dst = read_opt_reg(r)?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(read_operand(r)?);
            }
            Inst::Intrinsic { name, dst, args, sargs }
        }
        11 => Inst::Ret { val: read_opt_operand(r)? },
        12 => Inst::Trap { msg: r.str()? },
        other => return Err(CubinError(format!("bad inst tag {other}"))),
    })
}

/// Deserialize a module, verifying magic, version and checksum.
pub fn decode(buf: &[u8]) -> Result<Module, CubinError> {
    if buf.len() < 16 || &buf[..4] != MAGIC {
        return Err(CubinError("not a cubin (bad magic)".into()));
    }
    let body = &buf[..buf.len() - 8];
    let sum = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    if fnv1a(body) != sum {
        return Err(CubinError("checksum mismatch (corrupt cubin)".into()));
    }
    let mut r = R { buf: body, i: 4 };
    let version = r.u32()?;
    if version != VERSION {
        return Err(CubinError(format!("unsupported cubin version {version}")));
    }
    let name = r.str()?;
    let arch = r.str()?;
    let linked = r.u8()? != 0;
    let nfuncs = r.u32()? as usize;
    if nfuncs > 4096 {
        return Err(CubinError("implausible function count".into()));
    }
    let mut functions = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let fname = r.str()?;
        let is_kernel = r.u8()? != 0;
        let nparams = r.u32()? as usize;
        if nparams > 256 {
            return Err(CubinError("implausible param count".into()));
        }
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            let pname = r.str()?;
            params.push(ParamDecl { name: pname, ty: scalar_from(r.u8()?)? });
        }
        let num_regs = r.u32()?;
        let local_size = r.u64()?;
        let shared_size = r.u64()?;
        let body = read_nodes(&mut r, 0)?;
        functions.push(Function {
            name: fname,
            is_kernel,
            params,
            num_regs,
            local_size,
            shared_size,
            body,
        });
    }
    Ok(Module { name, arch, functions, device_lib_linked: linked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{op, FnBuilder};

    fn module() -> Module {
        let mut b = FnBuilder::new("k", true);
        let p = b.param("p", ScalarTy::I64);
        let v = b.ld(MemTy::F32, op::r(p), 8);
        let s = b.un(ScalarTy::F32, UnOp::Sqrt, op::r(v));
        b.begin_loop();
        b.begin_if();
        b.brk();
        b.end_if(op::i(1));
        b.end_loop();
        b.emit(Inst::BarSync { id: op::i(2), count: Some(op::i(96)) });
        b.emit(Inst::AtomCas { dst: Reg(100), addr: op::r(p), expected: op::i(0), new: op::i(1) });
        b.intrinsic("printf", vec![op::r(s), op::f(1.5)], true);
        b.st(MemTy::F32, op::r(s), op::r(p), 0);
        let f = b.build();
        Module {
            name: "m".into(),
            arch: "sm_53".into(),
            functions: vec![f],
            device_lib_linked: true,
        }
    }

    #[test]
    fn roundtrip() {
        let m = module();
        let bytes = encode(&m);
        let m2 = decode(&bytes).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn corruption_detected() {
        let m = module();
        let mut bytes = encode(&m);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let m = module();
        let bytes = encode(&m);
        assert!(decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode(b"NOPE00000000000000000000").is_err());
    }
}
