//! Property tests on the frontend: pretty-printing is a fixed point under
//! reparsing, for randomly generated expressions and programs. Random
//! structures come from a seeded deterministic RNG (`vmcommon::rng`).

use minic::ast::{BinOp, Expr, ExprKind, UnOp};
use minic::parser::parse_expr_str;
use minic::pretty;
use vmcommon::rng::XorShift64;

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::LogAnd,
    BinOp::LogOr,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
];

const UNOPS: &[UnOp] = &[UnOp::Neg, UnOp::Not, UnOp::BitNot];
const NAMES: &[&str] = &["x", "y", "n", "acc"];

/// Random (valid) expression over a fixed identifier pool, recursion
/// bounded by `depth`.
fn gen_expr(r: &mut XorShift64, depth: u32) -> Expr {
    use minic::ast::build as b;
    if depth == 0 || r.chance(1, 3) {
        return match r.below(3) {
            0 => b::int(r.range_i64(-1000, 1000)),
            1 => b::ident(r.pick::<&str>(NAMES)),
            _ => b::e(ExprKind::FloatLit(r.small_f32() as f64, true)),
        };
    }
    match r.below(5) {
        0 => b::bin(*r.pick(BINOPS), gen_expr(r, depth - 1), gen_expr(r, depth - 1)),
        1 => b::e(ExprKind::Unary { op: *r.pick(UNOPS), expr: Box::new(gen_expr(r, depth - 1)) }),
        2 => b::index(gen_expr(r, depth - 1), gen_expr(r, depth - 1)),
        3 => b::e(ExprKind::Ternary {
            cond: Box::new(gen_expr(r, depth - 1)),
            then_e: Box::new(gen_expr(r, depth - 1)),
            else_e: Box::new(gen_expr(r, depth - 1)),
        }),
        _ => {
            let nargs = 1 + r.below(3);
            b::call("f", (0..nargs).map(|_| gen_expr(r, depth - 1)).collect())
        }
    }
}

const CASES: u64 = 256;

/// print(parse(print(e))) == print(e): the printer emits enough
/// parentheses to preserve structure, and is a reparse fixed point.
#[test]
fn expr_print_parse_fixed_point() {
    for seed in 0..CASES {
        let e = gen_expr(&mut XorShift64::new(seed), 4);
        let printed = pretty::expr(&e);
        let reparsed = parse_expr_str(&printed).unwrap_or_else(|err| {
            panic!("seed {seed}: printed expr must reparse: `{printed}`: {err}")
        });
        assert_eq!(pretty::expr(&reparsed), printed, "seed {seed}");
    }
}

/// Random integer-expression evaluation agrees between the original
/// AST and the reparse of its printed form (structure really survives).
#[test]
fn expr_semantics_survive_roundtrip() {
    for seed in 0..CASES {
        let e = gen_expr(&mut XorShift64::new(7000 + seed), 4);
        let printed = pretty::expr(&e);
        let reparsed = parse_expr_str(&printed).unwrap();
        // Compare constant folds where both sides fold.
        if let (Some(a), Some(b)) = (e.const_int(), reparsed.const_int()) {
            assert_eq!(a, b, "seed {seed}: `{printed}`");
        }
    }
}

#[test]
fn program_print_is_reparse_fixed_point() {
    // A program exercising every statement form.
    let src = r#"
int g = 3;
float helper(float v) { return v * 2.0f; }
int main() {
    int a[4];
    float m[2][3];
    int i = 0;
    while (i < 4) { a[i] = i; i++; }
    do { i--; } while (i > 0);
    for (int k = 0; k < 2; k++)
        for (int j = 0; j < 3; j++)
            m[k][j] = helper((float) (k + j));
    if (a[1] > 0 && m[0][0] >= 0.0f) i = 5; else i = -5;
    int *p = &a[2];
    *p += 7;
    return g + i + a[2];
}
"#;
    let p1 = minic::parse(src).unwrap();
    let t1 = pretty::program(&p1);
    let p2 = minic::parse(&t1).unwrap();
    let t2 = pretty::program(&p2);
    assert_eq!(t1, t2);
}

#[test]
fn roundtripped_program_runs_identically() {
    use minic::interp::{Interp, Machine, NoHooks};
    use std::sync::Arc;
    let src = r#"
int main() {
    int s = 0;
    for (int i = 1; i <= 100; i++)
        if (i % 3 == 0 || i % 5 == 0) s += i;
    return s;
}
"#;
    let run = |text: &str| {
        let m = Machine::from_source(text).unwrap();
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        i.run_main().unwrap()
    };
    let printed = pretty::program(&minic::parse(src).unwrap());
    assert_eq!(run(src), run(&printed));
}
