/* atax — CUDA baseline. */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void atax_kernel1(int n, float *a, float *x, float *tmp)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float t = 0.0f;
        for (int j = 0; j < n; j++)
            t += a[i * n + j] * x[j];
        tmp[i] = t;
    }
}

__global__ void atax_kernel2(int n, float *a, float *y, float *tmp)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < n) {
        float t = 0.0f;
        for (int i = 0; i < n; i++)
            t += a[i * n + j] * tmp[i];
        y[j] = t;
    }
}

void run(int n, float *a, float *x, float *y, float *tmp)
{
    float *da;
    float *dx;
    float *dy;
    float *dtmp;
    long mbytes = (long) n * n * sizeof(float);
    long vbytes = (long) n * sizeof(float);
    cudaMalloc(&da, mbytes);
    cudaMalloc(&dx, vbytes);
    cudaMalloc(&dy, vbytes);
    cudaMalloc(&dtmp, vbytes);
    cudaMemcpy(da, a, mbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dx, x, vbytes, cudaMemcpyHostToDevice);
    dim3 block(256);
    dim3 grid((n + 255) / 256);
    atax_kernel1<<<grid, block>>>(n, da, dx, dtmp);
    atax_kernel2<<<grid, block>>>(n, da, dy, dtmp);
    cudaMemcpy(y, dy, vbytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(dx);
    cudaFree(dy);
    cudaFree(dtmp);
}
