//! Deterministic fault injection for the device runtime.
//!
//! A [`FaultPlan`] names *call sites* in the driver/simulator surface
//! ([`FaultSite`]) and injects an [`ExecError`] on chosen call numbers.
//! Plans are deterministic: the `n`-th call to a site always behaves the
//! same for a given plan, so robustness tests are exactly reproducible.
//!
//! Rules come in three flavours, mirroring real driver failure modes:
//!
//! * **transient** — a bounded run of failing calls (`times` finite), e.g.
//!   a launch that fails twice and then succeeds. Surfaced as
//!   [`ExecError::Transient`] so callers may retry.
//! * **terminal** — the site fails forever (`times == None`), e.g. a dead
//!   device. Surfaced as [`ExecError::DeviceLost`] so callers give up and
//!   fall back to the host.
//! * **hang** — the call never completes. Surfaced as [`ExecError::Hang`];
//!   the host driver's watchdog converts it into a timeout and attempts
//!   reset-and-replay recovery.
//!
//! The compact plan syntax (also accepted from the `OMPI_FAULT_PLAN`
//! environment variable) is a comma-separated list of
//! `[devN:][hang@]site[@first[xCOUNT|x*]]`:
//!
//! ```text
//! launch@2x3        calls 2,3,4 to `launch` fail transiently
//! alloc@1x*         every alloc from the first on fails terminally
//! h2d@5             exactly call 5 to memcpy H2D fails transiently
//! launch@2x3,h2d@5  both of the above
//! dev1:launch@1x*   device 1's launches fail terminally; other devices
//!                   are untouched
//! hang@launch       the first launch hangs (watchdog timeout)
//! hang@h2d@2x2      H2D copies 2 and 3 hang
//! ```
//!
//! A plan of the form `chaos:<seed>` instead generates a seeded random —
//! but completion-safe — rule mix via [`FaultPlan::chaos`]; see the chaos
//! soak harness.
//!
//! In a multi-device registry each device materializes its own plan with
//! [`FaultPlan::parse_for_device`]: `devN:` rules apply only to device `N`,
//! unprefixed rules apply to the default device (device 0), keeping
//! single-device plans backward compatible.

use std::sync::atomic::{AtomicU64, Ordering};

use vmcommon::rng::XorShift64;

use crate::device::ExecError;

/// A fault-injectable call site in the device runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Device creation / first touch (cudadev lazy init).
    Init,
    /// `cuMemAlloc`.
    Alloc,
    /// `cuMemcpyHtoD`.
    H2D,
    /// `cuMemcpyDtoH`.
    D2H,
    /// `cuModuleLoad` (cubin load or PTX JIT).
    ModuleLoad,
    /// `cuLaunchKernel`.
    Launch,
    /// JIT disk-cache read: the cached artifact decodes as garbage.
    JitCache,
    /// Arena pressure: when fired, the device permanently reserves about
    /// half of its currently-free global memory, shrinking what later
    /// allocations can get (simulates a shared 2 GB board filling up
    /// mid-run). Never an error by itself — it only makes `alloc` harder.
    Arena,
    /// `cuMemFree`: the free is rejected as an invalid/double free.
    Free,
}

impl FaultSite {
    pub const ALL: [FaultSite; 9] = [
        FaultSite::Init,
        FaultSite::Alloc,
        FaultSite::H2D,
        FaultSite::D2H,
        FaultSite::ModuleLoad,
        FaultSite::Launch,
        FaultSite::JitCache,
        FaultSite::Arena,
        FaultSite::Free,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::Init => 0,
            FaultSite::Alloc => 1,
            FaultSite::H2D => 2,
            FaultSite::D2H => 3,
            FaultSite::ModuleLoad => 4,
            FaultSite::Launch => 5,
            FaultSite::JitCache => 6,
            FaultSite::Arena => 7,
            FaultSite::Free => 8,
        }
    }

    /// Plan-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Init => "init",
            FaultSite::Alloc => "alloc",
            FaultSite::H2D => "h2d",
            FaultSite::D2H => "d2h",
            FaultSite::ModuleLoad => "modload",
            FaultSite::Launch => "launch",
            FaultSite::JitCache => "jitcache",
            FaultSite::Arena => "arena",
            FaultSite::Free => "free",
        }
    }

    fn from_name(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|f| f.name() == s)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a firing rule does to the call: fail it with an error, or never
/// complete it (the host watchdog turns hangs into timeouts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultKind {
    #[default]
    Error,
    Hang,
}

/// One injection rule: calls `first .. first+times` (1-based, half-open in
/// count) to `site` fail. `times == None` means "forever" — a terminal
/// fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    pub site: FaultSite,
    /// 1-based call number at which faults begin.
    pub first: u64,
    /// How many consecutive calls fail; `None` = all subsequent calls.
    pub times: Option<u64>,
    /// Error out, or hang until the watchdog fires.
    pub kind: FaultKind,
}

impl FaultRule {
    /// Does this rule fire on call number `n` (1-based)?
    fn fires(&self, n: u64) -> bool {
        n >= self.first && self.times.is_none_or(|t| n < self.first + t)
    }

    /// Terminal rules never stop firing.
    pub fn is_terminal(&self) -> bool {
        self.times.is_none()
    }

    /// Hang rules stall the call instead of erroring it.
    pub fn is_hang(&self) -> bool {
        self.kind == FaultKind::Hang
    }
}

impl std::fmt::Display for FaultRule {
    /// The plan syntax this rule parses back from:
    /// `[hang@]site[@first[xN|x*]]` (a one-shot rule omits the `x1`, and a
    /// one-shot hang on the first call omits the whole `@first` spec,
    /// matching what `parse` accepts).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_hang() {
            f.write_str("hang@")?;
            if (self.first, self.times) == (1, Some(1)) {
                return write!(f, "{}", self.site);
            }
        }
        write!(f, "{}@{}", self.site, self.first)?;
        match self.times {
            Some(1) => Ok(()),
            Some(n) => write!(f, "x{n}"),
            None => write!(f, "x*"),
        }
    }
}

/// A malformed fault plan, with the offending part preserved so the
/// runner can surface a precise message instead of aborting mid-parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A `pre:` prefix that is not `devN:`.
    BadDevicePrefix { part: String, prefix: String },
    /// No `@` between the site name and the call number.
    MissingSeparator { part: String },
    /// A site name that is not in [`FaultSite::ALL`].
    UnknownSite { part: String, site: String },
    /// An `xN` repeat count that is not a number.
    BadRepeatCount { part: String, count: String },
    /// `x0`: a repeat count of zero.
    ZeroRepeatCount { part: String },
    /// An `@first` call number that is not a number.
    BadCallNumber { part: String, number: String },
    /// `@0`: call numbers are 1-based.
    ZeroCallNumber { part: String },
    /// Two rules for the same site on the same device.
    DuplicateRule { part: String, site: FaultSite, device: u32 },
    /// A `chaos:<seed>` plan whose seed is not an unsigned integer.
    BadChaosSeed { seed: String },
    /// A `chaos:<seed>` part mixed into a comma-separated rule list: chaos
    /// must be the entire plan, it cannot be combined with explicit rules.
    ChaosNotAlone { part: String },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::BadDevicePrefix { part, prefix } => {
                write!(f, "fault rule `{part}`: bad device prefix `{prefix}:` (expected `devN:`)")
            }
            FaultPlanError::MissingSeparator { part } => {
                write!(f, "fault rule `{part}`: expected `site@first[xN|x*]`")
            }
            FaultPlanError::UnknownSite { part, site } => {
                write!(f, "fault rule `{part}`: unknown site `{site}`")
            }
            FaultPlanError::BadRepeatCount { part, count } => {
                write!(f, "fault rule `{part}`: bad repeat count `{count}`")
            }
            FaultPlanError::ZeroRepeatCount { part } => {
                write!(f, "fault rule `{part}`: repeat count must be at least 1")
            }
            FaultPlanError::BadCallNumber { part, number } => {
                write!(f, "fault rule `{part}`: bad call number `{number}`")
            }
            FaultPlanError::ZeroCallNumber { part } => {
                write!(f, "fault rule `{part}`: call numbers are 1-based")
            }
            FaultPlanError::DuplicateRule { part, site, device } => {
                write!(
                    f,
                    "fault rule `{part}`: duplicate rule for site `{site}` on device {device}"
                )
            }
            FaultPlanError::BadChaosSeed { seed } => {
                write!(f, "fault plan `chaos:{seed}`: seed must be an unsigned integer")
            }
            FaultPlanError::ChaosNotAlone { part } => {
                write!(
                    f,
                    "fault plan part `{part}`: `chaos:<seed>` must be the whole plan, \
                     not one rule in a list"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic fault plan: a rule list plus per-site call counters.
///
/// The plan is shared (`Arc`) between the test, the device and the driver
/// layer; counters are atomics so concurrent call sites still get unique
/// call numbers.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    counters: [AtomicU64; FaultSite::ALL.len()],
}

impl FaultPlan {
    /// Plan with an explicit rule list.
    pub fn new(rules: Vec<FaultRule>) -> FaultPlan {
        FaultPlan { rules, counters: Default::default() }
    }

    /// Parse the compact plan syntax (see module docs) for the default
    /// device: `devN:` rules other than `dev0:` are validated but dropped.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        FaultPlan::parse_for_device(text, 0)
    }

    /// Parse the compact plan syntax, keeping only the rules that apply to
    /// device `dev`: rules prefixed `dev<N>:` apply to device `N`,
    /// unprefixed rules apply to the default device (device 0). Every part
    /// is validated even when it targets another device, so a typo never
    /// silently disables injection. A `chaos:<seed>` plan instead expands
    /// to [`FaultPlan::chaos`] for this device.
    pub fn parse_for_device(text: &str, dev: u32) -> Result<FaultPlan, FaultPlanError> {
        if let Some(seed) = text.trim().strip_prefix("chaos:") {
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| FaultPlanError::BadChaosSeed { seed: seed.trim().into() })?;
            return Ok(FaultPlan::chaos(seed, dev));
        }
        let mut rules = Vec::new();
        let mut seen: Vec<(u32, FaultSite)> = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            // A `chaos:` part inside a rule list used to fall through to
            // the `devN:` prefix parser and report a misleading "bad
            // device prefix `chaos:`" — name the real problem instead.
            if let Some(seed) = part.strip_prefix("chaos:") {
                let seed = seed.trim();
                if seed.parse::<u64>().is_err() {
                    return Err(FaultPlanError::BadChaosSeed { seed: seed.into() });
                }
                return Err(FaultPlanError::ChaosNotAlone { part: part.into() });
            }
            let (scope, rule) = parse_scoped_rule(part)?;
            // Two rules for the same (device, site) would race on one call
            // counter with no defined precedence — reject the plan.
            let key = (scope.unwrap_or(0), rule.site);
            if seen.contains(&key) {
                return Err(FaultPlanError::DuplicateRule {
                    part: part.into(),
                    site: rule.site,
                    device: key.0,
                });
            }
            seen.push(key);
            if key.0 == dev {
                rules.push(rule);
            }
        }
        Ok(FaultPlan::new(rules))
    }

    /// Plan from the `OMPI_FAULT_PLAN` environment variable, if set.
    /// `Ok(None)` when the variable is unset or empty; a malformed plan is
    /// a typed error for the caller to surface (never a silent fault-free
    /// run).
    pub fn from_env() -> Result<Option<FaultPlan>, FaultPlanError> {
        FaultPlan::from_env_for_device(0)
    }

    /// Per-device variant of [`FaultPlan::from_env`]: the plan a registry
    /// device `dev` derives from `OMPI_FAULT_PLAN`. `Ok(None)` when the
    /// variable is unset, empty, or has no rules for this device.
    pub fn from_env_for_device(dev: u32) -> Result<Option<FaultPlan>, FaultPlanError> {
        let Ok(text) = std::env::var("OMPI_FAULT_PLAN") else { return Ok(None) };
        if text.trim().is_empty() {
            return Ok(None);
        }
        match FaultPlan::parse_for_device(&text, dev) {
            Ok(p) if p.rules.is_empty() => Ok(None),
            other => other.map(Some),
        }
    }

    /// A seeded random — but *completion-safe* — plan for the chaos soak
    /// harness (`OMPI_FAULT_PLAN=chaos:<seed>`): 2–4 rules, at most one
    /// per site, drawn so that every run still completes with bit-exact
    /// results. Concretely:
    ///
    /// * transient windows stay within the default retry budget (≤ 3),
    /// * hang windows stay under the default reset budget (≤ 2 in a row),
    ///   so reset-and-replay recovers them,
    /// * terminal rules fire from call #1 only — the device never commits
    ///   partial work, so the whole app cleanly degrades to the host — and
    ///   never on `d2h`, whose mid-run loss could strand a partial commit
    ///   as a (deliberate) hard error,
    /// * arena-pressure rules only shrink memory, pushing runs down the
    ///   governor's degradation ladder.
    ///
    /// The device id is folded into the seed so a multi-device registry
    /// does not replay one device's plan on all of them.
    pub fn chaos(seed: u64, dev: u32) -> FaultPlan {
        let mut rng = XorShift64::new(seed ^ (dev as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let n_rules = 2 + rng.below(3);
        let mut rules: Vec<FaultRule> = Vec::new();
        for _ in 0..n_rules {
            let roll = rng.below(100);
            let (kind, site, first, times) = if roll < 40 {
                let site = [
                    FaultSite::Launch,
                    FaultSite::H2D,
                    FaultSite::D2H,
                    FaultSite::Alloc,
                    FaultSite::ModuleLoad,
                ];
                (FaultKind::Error, *rng.pick(&site), rng.range_u64(1, 7), Some(rng.range_u64(1, 4)))
            } else if roll < 70 {
                let site = [FaultSite::Launch, FaultSite::H2D, FaultSite::Alloc];
                (FaultKind::Hang, *rng.pick(&site), rng.range_u64(1, 5), Some(rng.range_u64(1, 3)))
            } else if roll < 85 {
                (FaultKind::Error, FaultSite::Arena, rng.range_u64(1, 4), Some(rng.range_u64(1, 3)))
            } else {
                let site = [FaultSite::Launch, FaultSite::H2D, FaultSite::Alloc, FaultSite::Init];
                (FaultKind::Error, *rng.pick(&site), 1, None)
            };
            if rules.iter().any(|r| r.site == site) {
                continue;
            }
            rules.push(FaultRule { site, first, times, kind });
        }
        FaultPlan::new(rules)
    }

    /// Record one call to `site` and return the injected error, if any.
    ///
    /// Increments the site's call counter regardless of outcome, so call
    /// numbering is stable whether or not faults fire.
    pub fn check(&self, site: FaultSite) -> Result<(), ExecError> {
        let n = self.counters[site.index()].fetch_add(1, Ordering::AcqRel) + 1;
        for rule in &self.rules {
            if rule.site == site && rule.fires(n) {
                if rule.is_hang() {
                    return Err(ExecError::Hang(format!("injected hang: {site} call #{n}")));
                }
                let msg = format!("injected fault: {site} call #{n}");
                return Err(if rule.is_terminal() {
                    ExecError::DeviceLost(msg)
                } else {
                    ExecError::Transient(msg)
                });
            }
        }
        Ok(())
    }

    /// Number of calls observed at `site` so far.
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.counters[site.index()].load(Ordering::Acquire)
    }

    /// Does the plan contain a terminal rule for `site`?
    pub fn has_terminal(&self, site: FaultSite) -> bool {
        self.rules.iter().any(|r| r.site == site && r.is_terminal())
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

impl std::fmt::Display for FaultPlan {
    /// The comma-separated plan syntax; `FaultPlan::parse` of the output
    /// reproduces the rule list (for a single-device plan).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

/// Parse one `[devN:][hang@]site[@first[xN|x*]]` part into its device
/// scope (`None` = unprefixed, i.e. the default device) and rule.
fn parse_scoped_rule(part: &str) -> Result<(Option<u32>, FaultRule), FaultPlanError> {
    let (scope, body) = match part.split_once(':') {
        Some((pre, rest)) => {
            let id = pre
                .trim()
                .strip_prefix("dev")
                .filter(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| FaultPlanError::BadDevicePrefix {
                    part: part.into(),
                    prefix: pre.into(),
                })?;
            (Some(id), rest)
        }
        None => (None, part),
    };
    let (kind, body) = match body.trim().strip_prefix("hang@") {
        Some(rest) => (FaultKind::Hang, rest),
        None => (FaultKind::Error, body),
    };
    let (site, rest) = match body.split_once('@') {
        Some((site, rest)) => (site, Some(rest)),
        // A bare site is only valid for hangs: `hang@launch` means "the
        // first call hangs, once". Error rules keep requiring a spec.
        None if kind == FaultKind::Hang => (body, None),
        None => return Err(FaultPlanError::MissingSeparator { part: part.into() }),
    };
    let site = FaultSite::from_name(site.trim())
        .ok_or_else(|| FaultPlanError::UnknownSite { part: part.into(), site: site.into() })?;
    let Some(rest) = rest else {
        return Ok((scope, FaultRule { site, first: 1, times: Some(1), kind }));
    };
    let (first, times) = match rest.split_once('x') {
        None => (rest, Some(1)),
        Some((f, "*")) => (f, None),
        Some((f, n)) => {
            let n: u64 = n.trim().parse().map_err(|_| FaultPlanError::BadRepeatCount {
                part: part.into(),
                count: n.into(),
            })?;
            if n == 0 {
                return Err(FaultPlanError::ZeroRepeatCount { part: part.into() });
            }
            (f, Some(n))
        }
    };
    let first: u64 = first
        .trim()
        .parse()
        .map_err(|_| FaultPlanError::BadCallNumber { part: part.into(), number: first.into() })?;
    if first == 0 {
        return Err(FaultPlanError::ZeroCallNumber { part: part.into() });
    }
    Ok((scope, FaultRule { site, first, times, kind }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(site: FaultSite, first: u64, times: Option<u64>) -> FaultRule {
        FaultRule { site, first, times, kind: FaultKind::Error }
    }

    #[test]
    fn parse_compact_syntax() {
        let p = FaultPlan::parse("launch@2x3, alloc@1x*,h2d@5").unwrap();
        assert_eq!(
            p.rules(),
            &[
                rule(FaultSite::Launch, 2, Some(3)),
                rule(FaultSite::Alloc, 1, None),
                rule(FaultSite::H2D, 5, Some(1)),
            ]
        );
    }

    #[test]
    fn parse_hang_rules() {
        let p = FaultPlan::parse("hang@launch, hang@h2d@2x2, dev1:hang@alloc@3x*").unwrap();
        assert_eq!(
            p.rules(),
            &[
                FaultRule {
                    site: FaultSite::Launch,
                    first: 1,
                    times: Some(1),
                    kind: FaultKind::Hang
                },
                FaultRule { site: FaultSite::H2D, first: 2, times: Some(2), kind: FaultKind::Hang },
            ]
        );
        let p1 = FaultPlan::parse_for_device("dev1:hang@alloc@3x*", 1).unwrap();
        assert_eq!(
            p1.rules(),
            &[FaultRule { site: FaultSite::Alloc, first: 3, times: None, kind: FaultKind::Hang }]
        );
        // A bare site without a hang prefix still needs its `@first` spec.
        assert!(FaultPlan::parse("launch").is_err());
        assert!(FaultPlan::parse("hang@nosite").is_err());
        assert!(FaultPlan::parse("hang@launch@0").is_err());
    }

    #[test]
    fn hang_rules_surface_as_hang_errors() {
        let p = FaultPlan::parse("hang@launch@2").unwrap();
        assert!(p.check(FaultSite::Launch).is_ok());
        let e = p.check(FaultSite::Launch).unwrap_err();
        assert!(matches!(e, ExecError::Hang(_)), "expected a hang, got {e}");
        assert!(!e.is_transient(), "hangs are not retryable in place");
        assert!(e.is_terminal(), "hangs need watchdog intervention");
        assert!(p.check(FaultSite::Launch).is_ok(), "one-shot hang window closes");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("launch").is_err());
        assert!(FaultPlan::parse("nosite@1").is_err());
        assert!(FaultPlan::parse("launch@zero").is_err());
        assert!(FaultPlan::parse("launch@0").is_err(), "call numbers are 1-based");
        assert!(FaultPlan::parse("launch@1xbad").is_err());
        assert!(FaultPlan::parse("").unwrap().rules().is_empty());
    }

    #[test]
    fn parse_rejects_zero_repeat_count() {
        // `x0` used to be silently clamped to `x1`; it must be an error.
        let err = FaultPlan::parse("launch@1x0").unwrap_err();
        assert!(err.to_string().contains("repeat count"), "descriptive message, got: {err}");
        assert!(FaultPlan::parse("dev1:h2d@2x0").is_err(), "scoped rules validate too");
        assert!(FaultPlan::parse("launch@1x00").is_err());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        // Each class of malformation names the offending part.
        for (bad, needle) in [
            ("nosite@1", "unknown site"),
            ("devz:launch@1", "device prefix"),
            ("launch@1x0", "repeat count"),
            ("launch@0", "1-based"),
            ("launch@", "call number"),
        ] {
            let err = FaultPlan::parse(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` error should mention `{needle}`, got: {err}");
        }
    }

    /// The parse error is a typed value, not a bare string: callers can
    /// match on the malformation class and the offending part survives.
    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(
            FaultPlan::parse("launch@").unwrap_err(),
            FaultPlanError::BadCallNumber { part: "launch@".into(), number: "".into() }
        );
        assert_eq!(
            FaultPlan::parse("launch@1xz").unwrap_err(),
            FaultPlanError::BadRepeatCount { part: "launch@1xz".into(), count: "z".into() }
        );
        assert_eq!(
            FaultPlan::parse("h2d@5, nosite@1").unwrap_err(),
            FaultPlanError::UnknownSite { part: "nosite@1".into(), site: "nosite".into() }
        );
        assert_eq!(
            FaultPlan::parse("launch@1, launch@2").unwrap_err(),
            FaultPlanError::DuplicateRule {
                part: "launch@2".into(),
                site: FaultSite::Launch,
                device: 0
            }
        );
        assert_eq!(
            FaultPlan::parse("chaos:pi").unwrap_err(),
            FaultPlanError::BadChaosSeed { seed: "pi".into() }
        );
    }

    /// A `chaos:` token buried in a rule list must name the chaos token,
    /// not pattern-match it as a `devN:` device prefix.
    #[test]
    fn chaos_token_in_rule_list_is_reported_as_chaos() {
        assert_eq!(
            FaultPlan::parse("launch@1,chaos:3").unwrap_err(),
            FaultPlanError::ChaosNotAlone { part: "chaos:3".into() }
        );
        // Malformed seed mid-list still reports the seed problem.
        assert_eq!(
            FaultPlan::parse("launch@1, chaos:pi").unwrap_err(),
            FaultPlanError::BadChaosSeed { seed: "pi".into() }
        );
        let msg = FaultPlan::parse("h2d@2,chaos:7,launch@1").unwrap_err().to_string();
        assert!(msg.contains("chaos:7") && msg.contains("whole plan"), "got: {msg}");
        assert!(!msg.contains("device prefix"), "must not misreport as devN:, got: {msg}");
    }

    /// Chaos plans are deterministic per (seed, device) and only contain
    /// completion-safe rules (see `FaultPlan::chaos`).
    #[test]
    fn chaos_plans_are_deterministic_and_safe() {
        for seed in 0..200u64 {
            let p = FaultPlan::chaos(seed, 0);
            let q = FaultPlan::parse_for_device(&format!("chaos:{seed}"), 0).unwrap();
            assert_eq!(p.rules(), q.rules(), "seed {seed}: parse must reproduce chaos()");
            assert!(!p.rules().is_empty(), "seed {seed}: at least one rule");
            assert!(p.rules().len() <= 4, "seed {seed}: at most four rules");
            for r in p.rules() {
                let sites: Vec<_> = p.rules().iter().filter(|o| o.site == r.site).collect();
                assert_eq!(sites.len(), 1, "seed {seed}: one rule per site");
                match (r.kind, r.times) {
                    (FaultKind::Hang, Some(t)) => assert!(t <= 2, "seed {seed}: hang window"),
                    (FaultKind::Hang, None) => panic!("seed {seed}: terminal hangs are unsafe"),
                    (FaultKind::Error, Some(t)) => {
                        assert!(t <= 3, "seed {seed}: transient window exceeds retry budget")
                    }
                    (FaultKind::Error, None) => {
                        assert_eq!(r.first, 1, "seed {seed}: terminal rules fire from call #1");
                        assert_ne!(
                            r.site,
                            FaultSite::D2H,
                            "seed {seed}: terminal d2h strands partial commits"
                        );
                    }
                }
            }
        }
        // Distinct devices get distinct plans for the same seed (usually).
        let differs =
            (0..32u64).any(|s| FaultPlan::chaos(s, 0).rules() != FaultPlan::chaos(s, 1).rules());
        assert!(differs, "device id must be folded into the chaos seed");
    }

    #[test]
    fn memory_sites_parse() {
        let p = FaultPlan::parse("arena@2,free@1x*").unwrap();
        assert_eq!(
            p.rules(),
            &[rule(FaultSite::Arena, 2, Some(1)), rule(FaultSite::Free, 1, None)]
        );
        assert!(p.check(FaultSite::Arena).is_ok());
        assert!(p.check(FaultSite::Arena).is_err());
        assert!(p.check(FaultSite::Free).is_err());
    }

    #[test]
    fn transient_window_fires_exactly() {
        let p = FaultPlan::parse("launch@2x3").unwrap();
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(p.check(FaultSite::Launch).is_err());
        }
        assert_eq!(outcomes, [false, true, true, true, false, false]);
        assert!(matches!(
            FaultPlan::parse("launch@1").unwrap().check(FaultSite::Launch),
            Err(ExecError::Transient(_))
        ));
    }

    #[test]
    fn terminal_rule_fires_forever() {
        let p = FaultPlan::parse("alloc@3x*").unwrap();
        assert!(p.check(FaultSite::Alloc).is_ok());
        assert!(p.check(FaultSite::Alloc).is_ok());
        for _ in 0..10 {
            assert!(matches!(p.check(FaultSite::Alloc), Err(ExecError::DeviceLost(_))));
        }
        assert!(p.has_terminal(FaultSite::Alloc));
        assert!(!p.has_terminal(FaultSite::Launch));
    }

    #[test]
    fn device_prefix_scopes_rules() {
        // Unprefixed rules belong to the default device (0); dev1: rules
        // only materialize in device 1's plan.
        let text = "launch@2x3, dev1:alloc@1x*, dev0:h2d@5";
        let p0 = FaultPlan::parse_for_device(text, 0).unwrap();
        assert_eq!(
            p0.rules(),
            &[rule(FaultSite::Launch, 2, Some(3)), rule(FaultSite::H2D, 5, Some(1))]
        );
        let p1 = FaultPlan::parse_for_device(text, 1).unwrap();
        assert_eq!(p1.rules(), &[rule(FaultSite::Alloc, 1, None)]);
        assert!(FaultPlan::parse_for_device(text, 2).unwrap().rules().is_empty());
        // `parse` keeps its historical meaning: the default device's view.
        assert_eq!(FaultPlan::parse(text).unwrap().rules(), p0.rules());
    }

    #[test]
    fn malformed_device_prefixes_are_rejected() {
        for bad in
            ["dev:launch@1", "devx:launch@1", "device1:launch@1", "1:launch@1", "dev-1:launch@1"]
        {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        // A rule scoped to another device is still validated.
        assert!(FaultPlan::parse_for_device("dev1:nosite@1", 0).is_err());
        assert!(FaultPlan::parse_for_device("dev1:launch@0", 0).is_err());
        // Leading zeros and whitespace around the prefix are tolerated.
        assert_eq!(FaultPlan::parse_for_device("dev01:launch@1", 1).unwrap().rules().len(), 1);
        assert_eq!(FaultPlan::parse_for_device(" dev2:launch@1 ", 2).unwrap().rules().len(), 1);
    }

    #[test]
    fn duplicate_site_rules_are_rejected() {
        // Same site twice on the same device: rejected no matter how the
        // duplicate is spelled (unprefixed = dev0).
        assert!(FaultPlan::parse("launch@1,launch@5x2").is_err());
        assert!(FaultPlan::parse("launch@1,dev0:launch@5").is_err());
        assert!(
            FaultPlan::parse_for_device("dev1:h2d@1,dev1:h2d@2", 0).is_err(),
            "duplicates are rejected even when scoped to another device"
        );
        // Same site on *different* devices is fine.
        let ok = "dev0:launch@1,dev1:launch@1";
        assert_eq!(FaultPlan::parse_for_device(ok, 0).unwrap().rules().len(), 1);
        assert_eq!(FaultPlan::parse_for_device(ok, 1).unwrap().rules().len(), 1);
        // Different sites on one device are fine too.
        assert!(FaultPlan::parse("launch@1,h2d@1").is_ok());
    }

    #[test]
    fn malformed_site_separator_is_rejected() {
        // `devX@...` — a device prefix without `:` is not a site name.
        assert!(FaultPlan::parse("dev0@1").is_err());
        assert!(FaultPlan::parse("dev1@1x2").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in [
            "launch@2x3",
            "alloc@1x*",
            "h2d@5",
            "launch@2x3,alloc@1x*,h2d@5",
            "hang@launch",
            "hang@h2d@2x2",
            "hang@alloc@1x2,launch@3",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text, "Display is the canonical spelling");
            let back = FaultPlan::parse(&plan.to_string()).unwrap();
            assert_eq!(back.rules(), plan.rules(), "parse(Display) round-trips");
        }
        // Non-canonical spellings normalize: x1 is dropped, whitespace goes.
        let plan = FaultPlan::parse(" launch@4x1 , d2h@2x2 ").unwrap();
        assert_eq!(plan.to_string(), "launch@4,d2h@2x2");
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap().rules(), plan.rules());
    }

    #[test]
    fn sites_count_independently() {
        let p = FaultPlan::parse("h2d@1x1").unwrap();
        assert!(p.check(FaultSite::D2H).is_ok());
        assert!(p.check(FaultSite::H2D).is_err());
        assert!(p.check(FaultSite::H2D).is_ok());
        assert_eq!(p.calls(FaultSite::H2D), 2);
        assert_eq!(p.calls(FaultSite::D2H), 1);
        assert_eq!(p.calls(FaultSite::Launch), 0);
    }
}
