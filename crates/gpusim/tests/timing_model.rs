//! Timing-model invariants: the simulated clock must respond to workload
//! properties the way the real board does qualitatively.

use gpusim::{launch, Device, ExecMode, LaunchConfig, NoLib};
use sptx::builder::{op, FnBuilder};
use sptx::{BinOp, CvtTy, MemTy, ScalarTy, SpecialReg};

fn device() -> Device {
    Device::new(16 << 20)
}

/// Kernel: per-thread loop of `iters` FMAs on f32 or f64.
fn fma_kernel(iters: i64, f64ty: bool) -> sptx::Module {
    let ty = if f64ty { ScalarTy::F64 } else { ScalarTy::F32 };
    let mut b = FnBuilder::new("fma", true);
    let out = b.param("out", ScalarTy::I64);
    let acc = b.mov(op::f(1.0));
    let i = b.mov(op::i(0));
    b.begin_loop();
    let done = b.bin(ScalarTy::I32, BinOp::SetGe, op::r(i), op::i(iters));
    b.begin_if();
    b.brk();
    b.end_if(op::r(done));
    let t = b.bin(ty, BinOp::Mul, op::r(acc), op::f(1.000001));
    let t2 = b.bin(ty, BinOp::Add, op::r(t), op::f(0.000001));
    b.mov_to(acc, op::r(t2));
    let i2 = b.bin(ScalarTy::I32, BinOp::Add, op::r(i), op::i(1));
    b.mov_to(i, op::r(i2));
    b.end_loop();
    let low = b.cvt(CvtTy::I32, if f64ty { CvtTy::F64 } else { CvtTy::F32 }, op::r(acc));
    let tid = b.mov(op::sp(SpecialReg::TidX));
    let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
    let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
    let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
    b.st(MemTy::B32, op::r(low), op::r(addr), 0);
    sptx::Module {
        name: "fma".into(),
        arch: "sm_53".into(),
        functions: vec![b.build()],
        device_lib_linked: true,
    }
}

fn run_cycles(m: &sptx::Module, grid: u32, block: u32, d: &Device, buf: u64) -> u64 {
    let cfg = LaunchConfig { grid: [grid, 1, 1], block: [block, 1, 1], params: vec![buf] };
    launch(d, m, "fma", &cfg, &NoLib, ExecMode::Functional).unwrap().kernel_cycles
}

#[test]
fn more_iterations_cost_more() {
    let d = device();
    let buf = d.mem_alloc(4 * 256).unwrap();
    let short = run_cycles(&fma_kernel(100, false), 1, 128, &d, buf);
    let long = run_cycles(&fma_kernel(1000, false), 1, 128, &d, buf);
    assert!(long > short * 5, "10x work must cost >5x cycles ({short} vs {long})");
}

#[test]
fn f64_much_slower_than_f32() {
    // Maxwell has a 1/32 DP rate; the model must reflect a large penalty.
    let d = device();
    let buf = d.mem_alloc(4 * 256).unwrap();
    let single = run_cycles(&fma_kernel(500, false), 1, 128, &d, buf);
    let double = run_cycles(&fma_kernel(500, true), 1, 128, &d, buf);
    assert!(
        double as f64 > single as f64 * 2.0,
        "f64 kernel must be much slower ({single} vs {double})"
    );
}

#[test]
fn more_blocks_scale_time_but_sublinearly_with_occupancy() {
    // 8 blocks of 256 threads are co-resident on the SMM: the wave count
    // is 1 for ≤8 blocks, so 8 blocks must cost < 8 × one block.
    let d = device();
    let buf = d.mem_alloc(4 * 256 * 64).unwrap();
    let m = fma_kernel(200, false);
    let one = run_cycles(&m, 1, 256, &d, buf);
    let eight = run_cycles(&m, 8, 256, &d, buf);
    let sixtyfour = run_cycles(&m, 64, 256, &d, buf);
    assert!(eight < one * 8, "co-resident blocks overlap ({one} vs {eight})");
    assert!(sixtyfour > eight * 4, "64 blocks need multiple waves ({eight} vs {sixtyfour})");
}

#[test]
fn coalesced_beats_strided_memory() {
    // out[tid] (coalesced) vs out[tid * 32] (one transaction per lane).
    let build = |stride: i64| {
        let mut b = FnBuilder::new("mem", true);
        let out = b.param("out", ScalarTy::I64);
        let lin0 =
            b.bin(ScalarTy::I32, BinOp::Mul, op::sp(SpecialReg::CtaidX), op::sp(SpecialReg::NtidX));
        let lin = b.bin(ScalarTy::I32, BinOp::Add, op::r(lin0), op::sp(SpecialReg::TidX));
        let idx = b.bin(ScalarTy::I32, BinOp::Mul, op::r(lin), op::i(stride));
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(idx));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        let v = b.ld(MemTy::F32, op::r(addr), 0);
        let v2 = b.bin(ScalarTy::F32, BinOp::Add, op::r(v), op::f(1.0));
        b.st(MemTy::F32, op::r(v2), op::r(addr), 0);
        sptx::Module {
            name: "mem".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        }
    };
    let d = device();
    let buf = d.mem_alloc(4 * 256 * 64 * 32).unwrap();
    let cfg = |m: &sptx::Module| {
        let c = LaunchConfig { grid: [64, 1, 1], block: [256, 1, 1], params: vec![buf] };
        launch(&d, m, "mem", &c, &NoLib, ExecMode::Functional).unwrap()
    };
    let coalesced = cfg(&build(1));
    let strided = cfg(&build(32));
    assert!(
        strided.mem_transactions >= coalesced.mem_transactions * 6,
        "strided access must need many more transactions ({} vs {})",
        coalesced.mem_transactions,
        strided.mem_transactions
    );
    assert!(
        strided.kernel_cycles > coalesced.kernel_cycles * 2,
        "and cost correspondingly more cycles ({} vs {})",
        coalesced.kernel_cycles,
        strided.kernel_cycles
    );
}

#[test]
fn divergence_is_counted_and_costed() {
    // Same arithmetic, once uniform, once split by lane parity.
    let build = |divergent: bool| {
        let mut b = FnBuilder::new("div", true);
        let out = b.param("out", ScalarTy::I64);
        let tid = b.mov(op::sp(SpecialReg::TidX));
        let cond = if divergent {
            let parity = b.bin(ScalarTy::I32, BinOp::Rem, op::r(tid), op::i(2));
            op::r(parity)
        } else {
            op::i(1)
        };
        let dst = b.alloc();
        for _ in 0..32 {
            b.begin_if();
            let v = b.bin(ScalarTy::I32, BinOp::Add, op::r(tid), op::i(1));
            b.mov_to(dst, op::r(v));
            b.begin_else();
            let v = b.bin(ScalarTy::I32, BinOp::Add, op::r(tid), op::i(2));
            b.mov_to(dst, op::r(v));
            b.end_if_else(cond);
        }
        let t64 = b.cvt(CvtTy::I64, CvtTy::I32, op::r(tid));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, op::r(t64), op::i(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, op::r(out), op::r(off));
        b.st(MemTy::B32, op::r(dst), op::r(addr), 0);
        sptx::Module {
            name: "div".into(),
            arch: "sm_53".into(),
            functions: vec![b.build()],
            device_lib_linked: true,
        }
    };
    let d = device();
    let buf = d.mem_alloc(4 * 128).unwrap();
    let cfg = |m: &sptx::Module| {
        let c = LaunchConfig { grid: [1, 1, 1], block: [128, 1, 1], params: vec![buf] };
        launch(&d, m, "div", &c, &NoLib, ExecMode::Functional).unwrap()
    };
    let uniform = cfg(&build(false));
    let divergent = cfg(&build(true));
    assert_eq!(uniform.divergent_branches, 0);
    assert!(divergent.divergent_branches >= 32 * 4, "4 warps × 32 divergent ifs");
    assert!(divergent.kernel_cycles > uniform.kernel_cycles);
}

#[test]
fn launch_overhead_dominates_tiny_kernels() {
    let d = device();
    let buf = d.mem_alloc(4 * 32).unwrap();
    let m = fma_kernel(1, false);
    let cfg = LaunchConfig { grid: [1, 1, 1], block: [32, 1, 1], params: vec![buf] };
    let s = launch(&d, &m, "fma", &cfg, &NoLib, ExecMode::Functional).unwrap();
    assert!(
        s.time_s >= gpusim::timing::LAUNCH_OVERHEAD_S,
        "time includes the fixed launch overhead"
    );
    assert!(s.time_s < 2.0 * gpusim::timing::LAUNCH_OVERHEAD_S + 1e-3);
}
