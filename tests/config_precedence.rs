//! The config-precedence matrix: for every `OMPI_*` runner knob the
//! contract is
//!
//! 1. an explicit `RunnerConfig` field always wins,
//! 2. otherwise a well-formed env var applies,
//! 3. otherwise the built-in default,
//!
//! and a malformed env var that *would have applied* (rule 2) is a typed
//! [`ConfigError`] naming the variable — never a silent fallback. These
//! are regression tests for three real bugs: env vars used to overwrite
//! explicitly-set config fields, `OMPI_ASYNC` treated any non-empty
//! non-`"0"` string as true (`OMPI_ASYNC=off` meant *on*), and
//! `OMPI_DEV_MEM` truncated through `as usize`.

use std::sync::Mutex;
use std::time::Duration;

use ompi_nano::ompi_core::{DEFAULT_DEVICE_MEM, DEFAULT_LAUNCH_TIMEOUT, DEFAULT_MAX_RESETS};
use ompi_nano::{ConfigError, Ompicc, ResolvedConfig, Runner, RunnerConfig};

/// Env vars are process globals; every test here serializes on this.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the given env vars set (`None` = explicitly unset),
/// restoring the previous state afterwards.
fn with_env<T>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK.lock().unwrap();
    let saved: Vec<(String, Option<String>)> =
        vars.iter().map(|(k, _)| (k.to_string(), std::env::var(k).ok())).collect();
    for (k, v) in vars {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    let out = f();
    for (k, v) in saved {
        match v {
            Some(v) => std::env::set_var(&k, v),
            None => std::env::remove_var(&k),
        }
    }
    out
}

const ALL_VARS: &[(&str, Option<&str>)] = &[
    ("OMPI_DEV_MEM", None),
    ("OMPI_ASYNC", None),
    ("OMPI_LAUNCH_TIMEOUT_MS", None),
    ("OMPI_MAX_RESETS", None),
    ("OMPI_JOB_TIMEOUT_MS", None),
    ("OMPI_GUEST_FUEL", None),
    ("OMPI_GUEST_MEM", None),
    ("OMPI_GUEST_STACK", None),
];

#[test]
fn defaults_apply_with_clean_env() {
    with_env(ALL_VARS, || {
        let rc = ResolvedConfig::resolve(&RunnerConfig::default()).unwrap();
        assert_eq!(rc.device_mem, DEFAULT_DEVICE_MEM);
        assert!(!rc.async_streams);
        assert_eq!(rc.launch_timeout, DEFAULT_LAUNCH_TIMEOUT);
        assert_eq!(rc.max_resets, DEFAULT_MAX_RESETS);
        assert_eq!(rc.job_timeout, None);
        assert_eq!(rc.fuel, None);
        assert_eq!(rc.guest_mem, None);
        assert_eq!(rc.guest_stack, None);
    });
}

#[test]
fn well_formed_env_fills_unset_fields() {
    with_env(
        &[
            ("OMPI_DEV_MEM", Some("64M")),
            ("OMPI_ASYNC", Some("on")),
            ("OMPI_LAUNCH_TIMEOUT_MS", Some("123")),
            ("OMPI_MAX_RESETS", Some("7")),
            ("OMPI_JOB_TIMEOUT_MS", Some("4500")),
            ("OMPI_GUEST_FUEL", Some("1000")),
            ("OMPI_GUEST_MEM", Some("1M")),
            ("OMPI_GUEST_STACK", Some("64")),
        ],
        || {
            let rc = ResolvedConfig::resolve(&RunnerConfig::default()).unwrap();
            assert_eq!(rc.device_mem, 64 << 20);
            assert!(rc.async_streams);
            assert_eq!(rc.launch_timeout, Duration::from_millis(123));
            assert_eq!(rc.max_resets, 7);
            assert_eq!(rc.job_timeout, Some(Duration::from_millis(4500)));
            assert_eq!(rc.fuel, Some(1000));
            assert_eq!(rc.guest_mem, Some(1 << 20));
            assert_eq!(rc.guest_stack, Some(64));
        },
    );
}

/// The headline bugfix: before the Option-ization, every one of these env
/// vars unconditionally overwrote the explicitly-configured field.
#[test]
fn explicit_config_beats_env_for_every_knob() {
    with_env(
        &[
            ("OMPI_DEV_MEM", Some("64M")),
            ("OMPI_ASYNC", Some("on")),
            ("OMPI_LAUNCH_TIMEOUT_MS", Some("123")),
            ("OMPI_MAX_RESETS", Some("7")),
            ("OMPI_JOB_TIMEOUT_MS", Some("4500")),
            ("OMPI_GUEST_FUEL", Some("1000")),
            ("OMPI_GUEST_MEM", Some("1M")),
            ("OMPI_GUEST_STACK", Some("64")),
        ],
        || {
            let cfg = RunnerConfig {
                device_mem: Some(32 << 20),
                async_streams: Some(false),
                launch_timeout: Some(Duration::from_millis(999)),
                max_resets: Some(2),
                job_timeout: Some(Duration::from_millis(8000)),
                fuel: Some(5),
                guest_mem: Some(2 << 20),
                guest_stack: Some(16),
                ..Default::default()
            };
            let rc = ResolvedConfig::resolve(&cfg).unwrap();
            assert_eq!(rc.device_mem, 32 << 20, "explicit device_mem must beat OMPI_DEV_MEM");
            assert!(!rc.async_streams, "explicit async_streams=false must beat OMPI_ASYNC=on");
            assert_eq!(rc.launch_timeout, Duration::from_millis(999));
            assert_eq!(rc.max_resets, 2);
            assert_eq!(rc.job_timeout, Some(Duration::from_millis(8000)));
            assert_eq!(rc.fuel, Some(5));
            assert_eq!(rc.guest_mem, Some(2 << 20));
            assert_eq!(rc.guest_stack, Some(16));
        },
    );
}

/// A malformed env var that would apply is a typed error naming the var.
#[test]
fn malformed_env_that_would_apply_is_a_typed_error() {
    let cases: &[(&str, &str)] = &[
        ("OMPI_DEV_MEM", "banana"),
        ("OMPI_ASYNC", "banana"),
        ("OMPI_LAUNCH_TIMEOUT_MS", "fast"),
        ("OMPI_MAX_RESETS", "-1"),
        ("OMPI_JOB_TIMEOUT_MS", "1.5s"),
        ("OMPI_GUEST_FUEL", "lots"),
        ("OMPI_GUEST_MEM", "banana"),
        ("OMPI_GUEST_STACK", "deep"),
    ];
    for (var, value) in cases {
        with_env(&[(var, Some(value))], || {
            let err = ResolvedConfig::resolve(&RunnerConfig::default())
                .expect_err(&format!("{var}={value} must be rejected"));
            assert!(
                err.to_string().contains(var),
                "error for {var} must name the variable, got: {err}"
            );
        });
    }
}

/// ...but the same malformed var is harmless when the explicit config
/// means it would never apply (matching `OMPI_JOB_TIMEOUT_MS` precedent:
/// the env var is not even read).
#[test]
fn malformed_env_is_ignored_under_explicit_config() {
    with_env(
        &[
            ("OMPI_DEV_MEM", Some("banana")),
            ("OMPI_ASYNC", Some("banana")),
            ("OMPI_LAUNCH_TIMEOUT_MS", Some("fast")),
            ("OMPI_MAX_RESETS", Some("-1")),
        ],
        || {
            let cfg = RunnerConfig {
                device_mem: Some(8 << 20),
                async_streams: Some(true),
                launch_timeout: Some(Duration::from_millis(50)),
                max_resets: Some(1),
                ..Default::default()
            };
            let rc = ResolvedConfig::resolve(&cfg).unwrap();
            assert_eq!(rc.device_mem, 8 << 20);
            assert!(rc.async_streams);
        },
    );
}

/// The `OMPI_ASYNC=off` bug: the old parser treated any non-empty string
/// other than `"0"` as true. The strict parser accepts both polarity
/// families and rejects everything else.
#[test]
fn async_env_uses_strict_boolean_spellings() {
    for v in ["1", "true", "on", "yes", "TRUE", " On "] {
        with_env(&[("OMPI_ASYNC", Some(v))], || {
            let rc = ResolvedConfig::resolve(&RunnerConfig::default()).unwrap();
            assert!(rc.async_streams, "OMPI_ASYNC={v} must mean true");
        });
    }
    for v in ["0", "false", "off", "no", "FALSE", " Off "] {
        with_env(&[("OMPI_ASYNC", Some(v))], || {
            let rc = ResolvedConfig::resolve(&RunnerConfig::default()).unwrap();
            assert!(!rc.async_streams, "OMPI_ASYNC={v} must mean false");
        });
    }
    with_env(&[("OMPI_ASYNC", Some("2"))], || {
        match ResolvedConfig::resolve(&RunnerConfig::default()) {
            Err(ConfigError::Bool { var: "OMPI_ASYNC", .. }) => {}
            other => panic!("OMPI_ASYNC=2 must be a typed Bool error, got {other:?}"),
        }
    });
}

/// `OMPI_DEV_MEM` used to truncate through `as usize`; sizes that cannot
/// be represented are typed errors now (`parse_size` catches the u64
/// overflow, `ConfigError::Overflow` the usize one on 32-bit targets).
#[test]
fn dev_mem_overflow_is_typed_not_truncated() {
    with_env(&[("OMPI_DEV_MEM", Some("99999999999g"))], || {
        let err = ResolvedConfig::resolve(&RunnerConfig::default())
            .expect_err("an unrepresentable size must not wrap");
        assert!(err.to_string().contains("OMPI_DEV_MEM"), "got: {err}");
    });
}

/// The CUDA baseline manages raw device memory itself: the four runner
/// device knobs never apply there (even malformed values are unread),
/// while the job deadline and guest limits still do.
#[test]
fn cuda_path_ignores_runner_env_but_honours_guest_env() {
    with_env(
        &[
            ("OMPI_DEV_MEM", Some("banana")),
            ("OMPI_ASYNC", Some("banana")),
            ("OMPI_LAUNCH_TIMEOUT_MS", Some("fast")),
            ("OMPI_MAX_RESETS", Some("-1")),
            ("OMPI_JOB_TIMEOUT_MS", Some("2500")),
            ("OMPI_GUEST_FUEL", Some("777")),
        ],
        || {
            let rc = ResolvedConfig::resolve_cuda(&RunnerConfig::default()).unwrap();
            assert_eq!(rc.device_mem, DEFAULT_DEVICE_MEM);
            assert!(!rc.async_streams);
            assert_eq!(rc.launch_timeout, DEFAULT_LAUNCH_TIMEOUT);
            assert_eq!(rc.max_resets, DEFAULT_MAX_RESETS);
            assert_eq!(rc.job_timeout, Some(Duration::from_millis(2500)));
            assert_eq!(rc.fuel, Some(777));
        },
    );
}

const TRIVIAL: &str = r#"
int main() {
    int n = 64;
    float x[64];
    for (int i = 0; i < n; i++) x[i] = 1.0f;
    #pragma omp target teams distribute parallel for map(tofrom: x[0:n])
    for (int i = 0; i < n; i++)
        x[i] = x[i] + 1.0f;
    return 0;
}
"#;

/// End to end: `Runner::new` surfaces the typed error (as a trap naming
/// the variable) instead of silently running with a bad config.
#[test]
fn runner_new_reports_malformed_env() {
    with_env(&[("OMPI_ASYNC", Some("banana"))], || {
        let dir = std::env::temp_dir().join(format!("ompinano-precedence-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = Ompicc::new(&dir).compile(TRIVIAL).unwrap();
        let err = Runner::new(&app, &RunnerConfig::default())
            .err()
            .expect("malformed OMPI_ASYNC must fail Runner::new");
        assert!(err.to_string().contains("OMPI_ASYNC"), "got: {err}");

        // The same env is harmless once the field is explicit.
        let cfg = RunnerConfig { async_streams: Some(false), ..Default::default() };
        let runner = Runner::new(&app, &cfg).unwrap();
        assert_eq!(runner.run_main().unwrap(), ompi_nano::Value::I32(0));
    });
}
