/* bicg: s = A^T r ; q = A p — OpenMP offload. */
void run(int n, float *a, float *r, float *s, float *p, float *q)
{
    #pragma omp target data map(to: a[0:n*n], r[0:n], p[0:n]) map(from: s[0:n], q[0:n])
    {
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n], r[0:n]) map(from: s[0:n])
        for (int j = 0; j < n; j++) {
            float t = 0.0f;
            for (int i = 0; i < n; i++)
                t += a[i * n + j] * r[i];
            s[j] = t;
        }
        #pragma omp target teams distribute parallel for num_threads(256) \
                map(to: a[0:n*n], p[0:n]) map(from: q[0:n])
        for (int i = 0; i < n; i++) {
            float t = 0.0f;
            for (int j = 0; j < n; j++)
                t += a[i * n + j] * p[j];
            q[i] = t;
        }
    }
}
