//! Loop schedules on the device: the same loop with static, dynamic and
//! guided schedules, with per-schedule simulated timing.
//!
//!     cargo run --release --example schedules

use ompi_nano::{Ompicc, Runner, RunnerConfig};

fn src(schedule: &str) -> String {
    format!(
        r#"
int main() {{
    int n = 4096;
    float v[4096];
    for (int i = 0; i < n; i++) v[i] = (float) i;
    #pragma omp target teams distribute parallel for schedule({schedule}) \
            map(tofrom: v[0:n]) num_teams(1) num_threads(128)
    for (int i = 0; i < n; i++) {{
        float acc = v[i];
        for (int k = 0; k < i % 64; k++)
            acc = acc * 1.0001f + 0.5f;
        v[i] = acc;
    }}
    return 0;
}}
"#
    )
}

fn main() {
    for sched in ["static", "static, 16", "dynamic, 16", "guided"] {
        let work = std::env::temp_dir()
            .join(format!("ompi-example-sched-{}", sched.replace([',', ' '], "")));
        let app = Ompicc::new(&work).compile(&src(sched)).expect("ompicc");
        let runner = Runner::new(&app, &RunnerConfig::default()).expect("runner");
        runner.run_main().expect("run");
        println!("schedule({sched:<11}): {:.6}s simulated", runner.dev_clock().total_s());
    }
}
