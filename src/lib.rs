//! # ompi-nano — OpenMP offloading for a (simulated) Jetson Nano
//!
//! A reproduction of *"OpenMP Offloading in the Jetson Nano Platform"*
//! (Kasmeridis & Dimakopoulos, ICPP Workshops 2022): the OMPi
//! source-to-source compiler extended with CUDA offloading, its cudadev
//! runtime module, and everything underneath — down to a SIMT simulator of
//! the board's 128-core Maxwell GPU, since no Jetson hardware is assumed.
//!
//! ## Layers (bottom to top)
//!
//! | crate      | role |
//! |------------|------|
//! | [`vmcommon`] | guest memory arenas, schedules, printf, hashing |
//! | [`minic`]    | C-subset frontend + host interpreter (OpenMP + CUDA dialects) |
//! | [`sptx`]     | the kernel IR, `.sptx` text ("PTX") and `.cubin` binaries |
//! | [`nvccsim`]  | the nvcc stand-in: CUDA C → SPTX |
//! | [`gpusim`]   | the Maxwell SMM simulator (warps, named barriers, timing model) |
//! | [`cudadev`]  | the OMPi device module: host part + device runtime library |
//! | [`hostomp`]  | the host OpenMP runtime (thread teams, worksharing) |
//! | [`ompi_core`]| the translator, `ompicc` driver and application runner |
//! | [`serve`]    | the multi-tenant batch server over the device fleet |
//! | [`unibench`] | the paper's evaluation applications |
//!
//! ## Quickstart
//!
//! ```no_run
//! use ompi_nano::{Ompicc, Runner, RunnerConfig};
//!
//! let src = r#"
//! int main() {
//!     int n = 1024;
//!     float x[1024]; float y[1024];
//!     for (int i = 0; i < n; i++) { x[i] = (float) i; y[i] = 1.0f; }
//!     #pragma omp target teams distribute parallel for map(to: x[0:n]) map(tofrom: y[0:n])
//!     for (int i = 0; i < n; i++)
//!         y[i] = 2.0f * x[i] + y[i];
//!     return 0;
//! }
//! "#;
//! let app = Ompicc::new("/tmp/quickstart").compile(src).unwrap();
//! let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
//! runner.run_main().unwrap();
//! println!("simulated device time: {:.6}s", runner.dev_clock().total_s());
//! ```

pub use cudadev;
pub use devmod;
pub use gpusim;
pub use hostomp;
pub use minic;
pub use nvccsim;
pub use ompi_core;
pub use serve;
pub use sptx;
pub use unibench;
pub use vmcommon;

pub use cudadev::{BreakerState, CudadevError, DevClock, RetryPolicy};
pub use devmod::{DeviceKind, DeviceModule, DeviceRegistry, HostDevice};
pub use gpusim::ExecMode;
pub use gpusim::{FaultKind, FaultPlan, FaultPlanError, FaultRule, FaultSite};
pub use nvccsim::BinMode;
pub use ompi_core::{
    CompiledApp, ConfigError, CudaCc, Ompicc, ResolvedConfig, Runner, RunnerConfig,
};
pub use vmcommon::Value;
