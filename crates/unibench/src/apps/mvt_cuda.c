/* mvt — CUDA baseline. */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void mvt_kernel1(int n, float *a, float *x1, float *y1)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float t = x1[i];
        for (int j = 0; j < n; j++)
            t += a[i * n + j] * y1[j];
        x1[i] = t;
    }
}

__global__ void mvt_kernel2(int n, float *a, float *x2, float *y2)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float t = x2[i];
        for (int j = 0; j < n; j++)
            t += a[j * n + i] * y2[j];
        x2[i] = t;
    }
}

void run(int n, float *a, float *x1, float *x2, float *y1, float *y2)
{
    float *da;
    float *dx1;
    float *dx2;
    float *dy1;
    float *dy2;
    long mbytes = (long) n * n * sizeof(float);
    long vbytes = (long) n * sizeof(float);
    cudaMalloc(&da, mbytes);
    cudaMalloc(&dx1, vbytes);
    cudaMalloc(&dx2, vbytes);
    cudaMalloc(&dy1, vbytes);
    cudaMalloc(&dy2, vbytes);
    cudaMemcpy(da, a, mbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dx1, x1, vbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dx2, x2, vbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dy1, y1, vbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dy2, y2, vbytes, cudaMemcpyHostToDevice);
    dim3 block(256);
    dim3 grid((n + 255) / 256);
    mvt_kernel1<<<grid, block>>>(n, da, dx1, dy1);
    mvt_kernel2<<<grid, block>>>(n, da, dx2, dy2);
    cudaMemcpy(x1, dx1, vbytes, cudaMemcpyDeviceToHost);
    cudaMemcpy(x2, dx2, vbytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(dx1);
    cudaFree(dx2);
    cudaFree(dy1);
    cudaFree(dy2);
}
