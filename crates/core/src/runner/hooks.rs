//! The runtime hook implementation: every `ort_*` (hostomp) and
//! `__dev_*` (offload) call the translated program makes lands in
//! [`OmpiHooks::call`], which dispatches through the device registry —
//! including the memory governor's pressured-offload path and the
//! OOM-annotated host fallback.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cudadev::{CudadevError, MapKind, PressureOutcome, TileParam};
use devmod::{DeviceModule, DeviceRegistry};
use hostomp::{HostRt, WsState};
use minic::interp::{HookCtx, Hooks, IResult, Interp, InterpError};
use vmcommon::sync::Mutex;
use vmcommon::Value;

thread_local! {
    /// Current worksharing loop of this host thread.
    static LOOP_WS: RefCell<Option<Arc<WsState>>> = const { RefCell::new(None) };
    /// Current sections region (state, total).
    static SECT_WS: RefCell<Option<(Arc<WsState>, u64)>> = const { RefCell::new(None) };
}

/// The runtime hook implementation.
pub struct OmpiHooks {
    pub rt: Arc<HostRt>,
    /// All offload devices plus the host shim and the default-device ICV.
    pub registry: Arc<DeviceRegistry>,
    /// `omp_set_num_threads` ICV (0 = unset).
    nthreads_icv: AtomicUsize,
    /// For pure CUDA applications: the module kernels live in.
    cuda_module: Option<String>,
    /// First error raised inside a parallel region.
    parallel_error: Mutex<Option<String>>,
    /// Copy-backs committed to host memory since the current region's
    /// launch — guards host fallback against mixed device/host state.
    /// Target regions execute sequentially on the host thread, so one
    /// counter suffices even with several registered devices.
    region_commits: AtomicUsize,
    /// Trace + metrics sink shared with every device module.
    pub(super) obs: Arc<obs::Obs>,
    /// The current region's offload was declined by the memory governor
    /// (OOM fallback) rather than lost to a device failure — decides the
    /// `reason` recorded on the fallback span.
    fb_oom: std::sync::atomic::AtomicBool,
    /// Wall-clock start of the fallback body currently executing (the host
    /// has no cycle model; its elapsed time becomes simulated fallback
    /// time — documented substitution).
    fb_start: Mutex<Option<std::time::Instant>>,
    /// `(device idx, simulated begin time)` of the target region currently
    /// open — feeds the per-region offload-latency histogram. One slot is
    /// enough: target regions execute sequentially on the host thread (see
    /// `region_commits`).
    region_start: Mutex<Option<(usize, f64)>>,
}

impl OmpiHooks {
    pub(super) fn new(
        registry: Arc<DeviceRegistry>,
        cuda_module: Option<String>,
        obs: Arc<obs::Obs>,
    ) -> OmpiHooks {
        OmpiHooks {
            rt: registry.host().rt().clone(),
            registry,
            nthreads_icv: AtomicUsize::new(0),
            cuda_module,
            parallel_error: Mutex::new(None),
            region_commits: AtomicUsize::new(0),
            obs,
            fb_oom: std::sync::atomic::AtomicBool::new(false),
            fb_start: Mutex::new(None),
            region_start: Mutex::new(None),
        }
    }

    /// Trace pid of the host shim (one Chrome-trace "process" per device;
    /// the initial device comes after the offload devices — unless the
    /// registry pinned it elsewhere, as the batch server's per-job
    /// single-device fleet views do).
    pub(super) fn host_pid(&self) -> u64 {
        self.registry.host_pid()
    }

    /// Simulated time on device `idx` right now (`idx == num_devices()`
    /// reads the host shim's clock).
    fn sim_now(&self, idx: usize) -> f64 {
        self.registry.clock_of(idx).unwrap_or_default().total_s()
    }

    /// Graceful-degradation filter for `__dev_*` hooks: terminal device
    /// failures are absorbed (the region falls back to host execution),
    /// anything else is a genuine trap.
    fn degrade(&self, dev: &dyn DeviceModule, e: CudadevError) -> IResult<()> {
        if e.is_device_lost() || dev.is_broken() {
            Ok(())
        } else {
            Err(InterpError::Trap(e.to_string()))
        }
    }

    /// Device 0's raw simulator, for the CUDA-baseline runtime hooks
    /// (`cudaMalloc` & friends bypass the mapping layer).
    fn baseline_device(&self) -> IResult<Arc<gpusim::Device>> {
        self.registry
            .device(0)
            .and_then(|d| d.raw_device())
            .ok_or_else(|| InterpError::Trap("no offload device available".into()))
    }

    fn map_kind(code: i64) -> MapKind {
        match code {
            0 => MapKind::To,
            1 => MapKind::From,
            3 => MapKind::Alloc,
            4 => MapKind::Release,
            5 => MapKind::Delete,
            _ => MapKind::ToFrom,
        }
    }

    /// Convert interpreter values to raw kernel-parameter bits according to
    /// the kernel's parameter types — the "parameter preparation" phase:
    /// host pointers are looked up in the device's map table.
    fn prepare_params(
        &self,
        dev: &dyn DeviceModule,
        kernel: &sptx::Function,
        args: &[Value],
    ) -> IResult<Vec<u64>> {
        if args.len() != kernel.params.len() {
            return Err(InterpError::Trap(format!(
                "kernel `{}` takes {} parameters, offload provided {}",
                kernel.name,
                kernel.params.len(),
                args.len()
            )));
        }
        let mut out = Vec::with_capacity(args.len());
        for (v, p) in args.iter().zip(&kernel.params) {
            let bits = match (v, p.ty) {
                (Value::Ptr(host), _) => dev.dev_addr(*host).ok_or_else(|| {
                    InterpError::Trap(format!(
                        "kernel argument {host:#x} is not mapped to the device (missing map clause?)"
                    ))
                })?,
                (_, sptx::ScalarTy::F32) => v.as_f32().to_bits() as u64,
                (_, sptx::ScalarTy::F64) => v.as_f64().to_bits(),
                (_, sptx::ScalarTy::I32) => v.as_i32() as u32 as u64,
                (_, sptx::ScalarTy::I64) => v.as_i64() as u64,
            };
            out.push(bits);
        }
        Ok(out)
    }

    /// Grid/block geometry for an offload (§5: scalar num_teams /
    /// num_threads are mapped to multi-dimensional shapes matching the
    /// hand-written CUDA versions; dimensionality comes from the collapsed
    /// nest depth).
    fn geometry(
        mw: bool,
        ndims: i64,
        tcs: [i64; 3],
        teams: i64,
        threads: i64,
    ) -> ([u32; 3], [u32; 3]) {
        if mw {
            return ([1, 1, 1], [cudadev::MW_BLOCK_THREADS, 1, 1]);
        }
        let threads = if threads > 0 { threads as u32 } else { 128 }.clamp(1, 1024);
        let ceil =
            |a: i64, b: u32| -> u32 { ((a.max(1) as u64).div_ceil(b as u64)).min(65535) as u32 };
        match ndims {
            2 => {
                let block = [32u32, (threads / 32).max(1), 1];
                let grid = [ceil(tcs[1], block[0]), ceil(tcs[0], block[1]), 1];
                (grid, block)
            }
            3 => {
                let block = [32u32, 4, (threads / 128).max(1)];
                let grid = [ceil(tcs[2], block[0]), ceil(tcs[1], block[1]), ceil(tcs[0], block[2])];
                (grid, block)
            }
            _ => {
                let block = [threads, 1, 1];
                let mut gx = ceil(tcs[0], block[0]);
                if teams > 0 {
                    gx = teams.clamp(1, 65535) as u32;
                }
                (([gx, 1, 1]), block)
            }
        }
    }
}

impl Hooks for OmpiHooks {
    fn call(&self, name: &str, args: &[Value], ctx: &HookCtx<'_>) -> IResult<Option<Value>> {
        let a = |i: usize| args.get(i).copied().unwrap_or(Value::I32(0));
        let mem = ctx.mem();
        let read_str = |i: usize| -> IResult<String> {
            Ok(mem.read_cstr(vmcommon::addr::offset(a(i).as_ptr()))?)
        };
        let write_i64 = |addr: Value, v: i64| -> IResult<()> {
            mem.store_u64(vmcommon::addr::offset(addr.as_ptr()), v as u64)?;
            Ok(())
        };
        // `__dev_*` hooks carry the device id in argument 0.
        let resolve = |i: usize| self.registry.resolve(a(i).as_i64());

        match name {
            // ---------------------------------------- region observability
            "__dev_region_begin" => {
                // (dev, construct-kind string): opens the target-region span
                // on the resolved device's driver track.
                let idx = self.registry.resolve_id(a(0).as_i64());
                let construct = read_str(1)?;
                self.fb_oom.store(false, Ordering::Relaxed);
                if let Some(dev) = self.registry.device(idx) {
                    dev.stream_region_begin();
                }
                self.obs.metrics.incr(idx as u64, "target_regions", 1);
                let t0 = self.sim_now(idx);
                *self.region_start.lock() = Some((idx, t0));
                // Unconditional (no `is_enabled` gate): a disabled tracer
                // drops the span at one atomic load, but the flight ring
                // still captures it for post-mortems.
                self.obs.tracer.begin(
                    idx as u64,
                    0,
                    &construct,
                    "region",
                    t0,
                    vec![("device", (idx as u64).into())],
                );
                Ok(Some(Value::I32(0)))
            }
            "__dev_region_end" => {
                let idx = self.registry.resolve_id(a(0).as_i64());
                self.obs.tracer.end_track(idx as u64, 0, self.sim_now(idx));
                // A synchronization point unless the region was marked
                // `nowait` (the span end above reads only flushed time, so
                // it does not force a drain either way).
                if let Some(dev) = self.registry.device(idx) {
                    dev.stream_region_end();
                }
                // Region latency (µs of simulated time, begin→after-sync)
                // into the per-device histogram the profile table
                // summarizes as p50/p95/p99.
                if let Some((bidx, t0)) = self.region_start.lock().take() {
                    if bidx == idx {
                        let dt_us = ((self.sim_now(idx) - t0) * 1e6).max(0.0) as u64;
                        self.obs.metrics.observe(idx as u64, "region_latency_us", dt_us);
                    }
                }
                Ok(Some(Value::I32(0)))
            }
            "__dev_taskwait" => {
                // Wait for all queued device work (the `nowait` target
                // regions still in flight on the command streams).
                self.registry.sync_streams();
                Ok(Some(Value::I32(0)))
            }
            "__dev_fb_begin" => {
                // The region's fallback body is about to run on the host
                // thread team (offload declined or failed).
                let from = self.registry.resolve_id(a(0).as_i64());
                let host_pid = self.host_pid();
                *self.fb_start.lock() = Some(std::time::Instant::now());
                // Why are we here? `OomFallback` (the memory governor
                // declined the region — the device is fine) vs a lost or
                // unavailable device.
                let oom = self.fb_oom.swap(false, Ordering::Relaxed);
                let reason = if oom { "oom" } else { "device_lost" };
                self.obs.metrics.incr(host_pid, "fallbacks", 1);
                self.obs.metrics.incr(host_pid, &format!("fallbacks.{reason}"), 1);
                self.obs.tracer.begin(
                    host_pid,
                    0,
                    "host fallback",
                    "fallback",
                    self.sim_now(host_pid as usize),
                    vec![("from_device", (from as u64).into()), ("reason", reason.into())],
                );
                Ok(Some(Value::I32(0)))
            }
            "__dev_fb_end" => {
                // The fallback body rewrote host memory; any device
                // buffers still mapped (enclosing `target data`) are now
                // stale and must be refreshed before the next launch that
                // reads them.
                resolve(0).mark_all_host_dirty();
                let host_pid = self.host_pid();
                if let Some(t0) = self.fb_start.lock().take() {
                    self.registry.host().record_fallback(t0.elapsed().as_secs_f64());
                }
                self.obs.tracer.end_track(host_pid, 0, self.sim_now(host_pid as usize));
                Ok(Some(Value::I32(0)))
            }

            // ------------------------------------------------- offloading
            "__dev_ok" => {
                // Guard emitted before every offload region: is the device
                // worth trying? A broken (or terminally fault-injected)
                // device answers 0 and the region runs on the host instead —
                // as does the host shim behind the initial-device number.
                let dev = resolve(0);
                let ok = !dev.is_broken() && dev.is_available();
                Ok(Some(Value::I32(ok as i32)))
            }
            "__dev_map" => {
                let dev = resolve(0);
                if dev.is_broken() {
                    // Dead device: the region will run on the host, where
                    // host memory is already authoritative — mapping is a
                    // no-op.
                    return Ok(Some(Value::I32(0)));
                }
                let kind = Self::map_kind(a(3).as_i64());
                match dev.map(mem, a(1).as_ptr(), a(2).as_i64().max(0) as u64, kind) {
                    Ok(_) => Ok(Some(Value::I32(0))),
                    Err(e) => self.degrade(&*dev, e).map(|_| Some(Value::I32(0))),
                }
            }
            "__dev_unmap" => {
                // Returns 1 when the host holds this buffer's correct data
                // afterwards (copy-back committed, or none was needed), 0
                // when a needed copy-back was lost — the region must then
                // re-execute on the host.
                let dev = resolve(0);
                let kind = Self::map_kind(a(2).as_i64());
                let copies_back = matches!(kind, MapKind::From | MapKind::ToFrom);
                if dev.is_broken() {
                    // Skip copy-back entirely; host memory is pre-kernel
                    // state, authoritative for the fallback execution.
                    return Ok(Some(Value::I32(!copies_back as i32)));
                }
                match dev.unmap(mem, a(1).as_ptr(), kind) {
                    Ok(()) => {
                        if copies_back {
                            self.region_commits.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Some(Value::I32(1)))
                    }
                    Err(e) if copies_back => {
                        if self.region_commits.load(Ordering::Relaxed) > 0 {
                            // Another buffer already committed its device
                            // results: host state is mixed, re-executing
                            // would double-apply. Surface the loss instead.
                            return Err(InterpError::Trap(format!(
                                "device lost during copy-back after a partial commit: {e}"
                            )));
                        }
                        self.degrade(&*dev, e).map(|_| Some(Value::I32(0)))
                    }
                    Err(e) => self.degrade(&*dev, e).map(|_| Some(Value::I32(1))),
                }
            }
            "__dev_update" => {
                let dev = resolve(0);
                if dev.is_broken() {
                    return Ok(Some(Value::I32(0)));
                }
                match dev.update(mem, a(1).as_ptr(), a(2).as_i64().max(0) as u64, a(3).is_truthy())
                {
                    Ok(()) => Ok(Some(Value::I32(0))),
                    Err(e) => self.degrade(&*dev, e).map(|_| Some(Value::I32(0))),
                }
            }
            "__dev_offload" => {
                // (dev, module, kernel, mw, ndims, tc0, tc1, tc2, teams,
                // threads, tileable, nowait, (kernel arg, row_bytes)…)
                // Returns 1 when the kernel ran on the device —
                // monolithically or tiled by the memory governor — and 0
                // when the region must re-execute on the host: terminal
                // device failure, or an OOM fallback (the governor
                // declined a region it cannot tile).
                self.region_commits.store(0, Ordering::Relaxed);
                let dev = resolve(0);
                if dev.is_broken() {
                    return Ok(Some(Value::I32(0)));
                }
                let module = read_str(1)?;
                let kernel = read_str(2)?;
                let mw = a(3).is_truthy();
                let ndims = a(4).as_i64();
                let tcs = [a(5).as_i64(), a(6).as_i64(), a(7).as_i64()];
                let teams = a(8).as_i64();
                let threads = a(9).as_i64();
                let tileable = a(10).is_truthy();
                if a(11).is_truthy() {
                    // `nowait`: the region's queued async work may outlive
                    // region end (drained at `taskwait` or the next report).
                    dev.stream_mark_nowait();
                }
                let pairs = args.get(12..).unwrap_or(&[]);
                if pairs.len() % 2 != 0 {
                    return Err(InterpError::Trap(
                        "__dev_offload: launch arguments must come as (arg, row) pairs".into(),
                    ));
                }
                let lvals: Vec<Value> = pairs.iter().step_by(2).copied().collect();
                let rows: Vec<u64> =
                    pairs.iter().skip(1).step_by(2).map(|v| v.as_i64().max(0) as u64).collect();
                let m = match dev.load_module(&module) {
                    Ok(m) => m,
                    Err(e) => return self.degrade(&*dev, e).map(|_| Some(Value::I32(0))),
                };
                let kf = m.function(&kernel).ok_or_else(|| {
                    InterpError::Trap(format!("kernel `{kernel}` not in `{module}`"))
                })?;
                if lvals.len() != kf.params.len() {
                    return Err(InterpError::Trap(format!(
                        "kernel `{kernel}` takes {} parameters, offload provided {}",
                        kf.params.len(),
                        lvals.len()
                    )));
                }
                let (grid, block) = Self::geometry(mw, ndims, tcs, teams, threads);
                let haddrs: Vec<u64> = lvals
                    .iter()
                    .filter_map(|v| match v {
                        Value::Ptr(h) => Some(*h),
                        _ => None,
                    })
                    .collect();
                if dev.has_pending_maps(&haddrs) {
                    // Memory pressure: some mapped buffers have no device
                    // copy. Hand the region to the governor, which tiles
                    // the iteration space when the translator proved it
                    // safe — or declines, making this an OOM fallback.
                    let tparams: Vec<TileParam> = lvals
                        .iter()
                        .zip(&kf.params)
                        .zip(&rows)
                        .map(|((v, p), row)| match (v, p.ty) {
                            (Value::Ptr(h), _) => TileParam::Buf { host: *h, row_bytes: *row },
                            (_, sptx::ScalarTy::F32) => {
                                TileParam::Scalar(v.as_f32().to_bits() as u64)
                            }
                            (_, sptx::ScalarTy::F64) => TileParam::Scalar(v.as_f64().to_bits()),
                            (_, sptx::ScalarTy::I32) => TileParam::Scalar(v.as_i32() as u32 as u64),
                            (_, sptx::ScalarTy::I64) => TileParam::Scalar(v.as_i64() as u64),
                        })
                        .collect();
                    let total = tcs[0].max(0) as u64;
                    let tileable = tileable && !mw && ndims <= 1;
                    return match dev.offload_pressured(
                        mem, &module, &kernel, tileable, total, grid, block, &tparams,
                    ) {
                        Ok(PressureOutcome::Ran) => {
                            // Tiled results are already committed to host
                            // memory: a later copy-back loss must trap, not
                            // silently re-execute.
                            self.region_commits.fetch_add(1, Ordering::Relaxed);
                            Ok(Some(Value::I32(1)))
                        }
                        Ok(PressureOutcome::Declined) => {
                            self.fb_oom.store(true, Ordering::Relaxed);
                            Ok(Some(Value::I32(0)))
                        }
                        Err(e) => self.degrade(&*dev, e).map(|_| Some(Value::I32(0))),
                    };
                }
                // Re-upload any device buffers a host fallback left stale
                // (host-dirty under an enclosing `target data`).
                if let Err(e) = dev.refresh_args(mem, &haddrs) {
                    return self.degrade(&*dev, e).map(|_| Some(Value::I32(0)));
                }
                let params = self.prepare_params(&*dev, kf, &lvals)?;
                match dev.launch(mem, &module, &kernel, grid, block, params) {
                    Ok(_) => Ok(Some(Value::I32(1))),
                    Err(e) => self.degrade(&*dev, e).map(|_| Some(Value::I32(0))),
                }
            }

            // --------------------------------------------- host parallelism
            "ort_execute_parallel" => {
                let fname = read_str(0)?;
                let env = a(1);
                let nthr_req = a(2).as_i64();
                let icv = self.nthreads_icv.load(Ordering::Relaxed);
                let nthr = if nthr_req > 0 {
                    Some(nthr_req as usize)
                } else if icv > 0 {
                    Some(icv)
                } else {
                    None
                };
                let machine = ctx.machine.clone();
                let hooks = ctx.hooks.clone();
                self.rt.parallel(nthr, |_tid| {
                    let r = Interp::new(machine.clone(), hooks.clone())
                        .and_then(|mut i| i.call(&fname, &[Value::I64(env.as_i64())]));
                    if let Err(e) = r {
                        let mut slot = self.parallel_error.lock();
                        if slot.is_none() {
                            *slot = Some(e.to_string());
                        }
                    }
                });
                if let Some(e) = self.parallel_error.lock().take() {
                    return Err(InterpError::Trap(format!("in parallel region: {e}")));
                }
                Ok(Some(Value::I32(0)))
            }
            "ort_barrier" => {
                self.rt.barrier();
                Ok(Some(Value::I32(0)))
            }
            "ort_critical_enter" => {
                self.rt.critical_enter(&read_str(0)?);
                Ok(Some(Value::I32(0)))
            }
            "ort_critical_exit" => {
                self.rt.critical_exit(&read_str(0)?);
                Ok(Some(Value::I32(0)))
            }
            "ort_single" => Ok(Some(Value::I32(self.rt.single_enter() as i32))),
            "ort_sections_begin" => {
                let n = a(0).as_i64().max(0) as u64;
                let ws = self.rt.sections_begin();
                SECT_WS.with(|s| *s.borrow_mut() = Some((ws, n)));
                Ok(Some(Value::I32(0)))
            }
            "ort_sections_next" => {
                let r = SECT_WS.with(|s| {
                    let b = s.borrow();
                    b.as_ref().and_then(|(ws, n)| ws.sections_next(*n))
                });
                Ok(Some(Value::I64(r.map(|v| v as i64).unwrap_or(-1))))
            }
            "ort_loop_begin" => {
                let ws = self.rt.loop_begin(a(0).as_i64().max(0) as u64);
                LOOP_WS.with(|s| *s.borrow_mut() = Some(ws));
                Ok(Some(Value::I32(0)))
            }
            "ort_static_chunk" => {
                // (chunk, &lb, &ub) over the current loop.
                let ws = LOOP_WS
                    .with(|s| s.borrow().clone())
                    .ok_or_else(|| InterpError::Trap("ort_static_chunk without a loop".into()))?;
                let nthr = self.rt.num_threads() as u64;
                let tid = self.rt.thread_num() as u64;
                // `schedule(static, chunk)` degenerates to the blocked
                // partition (any exact partition is a legal static
                // schedule for correctness purposes; documented in
                // DESIGN.md).
                let (lo, hi) = vmcommon::sched::static_block(ws.total, nthr, tid);
                write_i64(a(1), lo as i64)?;
                write_i64(a(2), hi as i64)?;
                Ok(Some(Value::I32(0)))
            }
            "ort_dynamic_next" => {
                let ws = LOOP_WS
                    .with(|s| s.borrow().clone())
                    .ok_or_else(|| InterpError::Trap("ort_dynamic_next without a loop".into()))?;
                match ws.dynamic.next_chunk(ws.total, a(0).as_i64().max(1) as u64) {
                    Some((lo, hi)) => {
                        write_i64(a(1), lo as i64)?;
                        write_i64(a(2), hi as i64)?;
                        Ok(Some(Value::I32(1)))
                    }
                    None => Ok(Some(Value::I32(0))),
                }
            }
            "ort_guided_next" => {
                let ws = LOOP_WS
                    .with(|s| s.borrow().clone())
                    .ok_or_else(|| InterpError::Trap("ort_guided_next without a loop".into()))?;
                let nthr = self.rt.num_threads() as u64;
                match ws.guided.next_chunk(ws.total, nthr, a(0).as_i64().max(1) as u64) {
                    Some((lo, hi)) => {
                        write_i64(a(1), lo as i64)?;
                        write_i64(a(2), hi as i64)?;
                        Ok(Some(Value::I32(1)))
                    }
                    None => Ok(Some(Value::I32(0))),
                }
            }

            // ------------------------------------------------- omp_* API
            "omp_get_thread_num" => Ok(Some(Value::I32(self.rt.thread_num() as i32))),
            "omp_get_num_threads" => Ok(Some(Value::I32(self.rt.num_threads() as i32))),
            "omp_get_max_threads" => {
                let icv = self.nthreads_icv.load(Ordering::Relaxed);
                Ok(Some(Value::I32(if icv > 0 { icv } else { self.rt.default_threads } as i32)))
            }
            "omp_in_parallel" => Ok(Some(Value::I32(self.rt.in_parallel() as i32))),
            "omp_set_num_threads" => {
                self.nthreads_icv.store(a(0).as_i64().max(1) as usize, Ordering::Relaxed);
                Ok(Some(Value::I32(0)))
            }
            "omp_get_wtime" => {
                // Simulated time, not wall time: the default device's
                // virtual clock, so interpreted programs measure the same
                // quantity the harness reports.
                let idx = self.registry.resolve_id(-1);
                Ok(Some(Value::F64(self.sim_now(idx))))
            }
            "omp_get_wtick" => {
                // Resolution of the simulated clock: one GPU core cycle.
                Ok(Some(Value::F64(1.0 / gpusim::timing::CLOCK_HZ)))
            }
            "omp_get_num_procs" => Ok(Some(Value::I32(4))), // quad-core A57
            "omp_get_num_devices" => Ok(Some(Value::I32(self.registry.num_devices() as i32))),
            "omp_get_default_device" => Ok(Some(Value::I32(self.registry.default_device() as i32))),
            "omp_set_default_device" => {
                self.registry.set_default_device(a(0).as_i64());
                Ok(Some(Value::I32(0)))
            }
            "omp_get_initial_device" => {
                Ok(Some(Value::I32(self.registry.initial_device_id() as i32)))
            }
            "omp_is_initial_device" => Ok(Some(Value::I32(1))),
            "omp_get_team_num" => Ok(Some(Value::I32(0))),
            "omp_get_num_teams" => Ok(Some(Value::I32(1))),

            // ----------------------------------- CUDA runtime (baselines)
            "cudaMalloc" => {
                // cudaMalloc(&ptr, size)
                let size = a(1).as_i64().max(0) as u64;
                let dp = self
                    .baseline_device()?
                    .mem_alloc(size)
                    .map_err(|e| InterpError::Trap(e.to_string()))?;
                mem.store_u64(vmcommon::addr::offset(a(0).as_ptr()), dp)?;
                Ok(Some(Value::I32(0)))
            }
            "cudaFree" => {
                self.baseline_device()?
                    .mem_free(a(0).as_ptr())
                    .map_err(|e| InterpError::Trap(e.to_string()))?;
                Ok(Some(Value::I32(0)))
            }
            "cudaMemcpy" => {
                // cudaMemcpy(dst, src, bytes, kind): 1 = HtoD, 2 = DtoH.
                let bytes = a(2).as_i64().max(0) as usize;
                let kind = a(3).as_i64();
                let device = self.baseline_device()?;
                let t = match kind {
                    1 => {
                        let mut buf = vec![0u8; bytes];
                        mem.read_bytes(vmcommon::addr::offset(a(1).as_ptr()), &mut buf)?;
                        device
                            .memcpy_h2d(a(0).as_ptr(), &buf)
                            .map_err(|e| InterpError::Trap(e.to_string()))?
                    }
                    2 => {
                        let mut buf = vec![0u8; bytes];
                        let t = device
                            .memcpy_d2h(&mut buf, a(1).as_ptr())
                            .map_err(|e| InterpError::Trap(e.to_string()))?;
                        mem.write_bytes(vmcommon::addr::offset(a(0).as_ptr()), &buf)?;
                        t
                    }
                    other => {
                        return Err(InterpError::Trap(format!(
                            "cudaMemcpy kind {other} unsupported"
                        )))
                    }
                };
                if let Some(d) = self.registry.device(0) {
                    let (h2d, d2h) = if kind == 1 { (bytes as u64, 0) } else { (0, bytes as u64) };
                    d.record_memcpy(t, h2d, d2h);
                }
                Ok(Some(Value::I32(0)))
            }
            "cudaDeviceSynchronize" | "cudaThreadSynchronize" => Ok(Some(Value::I32(0))),
            "cudaMemset" => {
                self.baseline_device()?
                    .memset_d8(a(0).as_ptr(), a(1).as_i64() as u8, a(2).as_i64().max(0) as u64)
                    .map_err(|e| InterpError::Trap(e.to_string()))?;
                Ok(Some(Value::I32(0)))
            }

            _ => Ok(None),
        }
    }

    fn kernel_launch(
        &self,
        name: &str,
        grid: [u32; 3],
        block: [u32; 3],
        args: &[Value],
        ctx: &HookCtx<'_>,
    ) -> IResult<()> {
        let module = self
            .cuda_module
            .clone()
            .ok_or_else(|| InterpError::Trap("no CUDA module registered for launches".into()))?;
        let dev = self
            .registry
            .device(0)
            .ok_or_else(|| InterpError::Trap("no offload device available".into()))?;
        let m = dev.load_module(&module).map_err(|e| InterpError::Trap(e.to_string()))?;
        let kf = m
            .function(name)
            .ok_or_else(|| InterpError::Trap(format!("kernel `{name}` not in `{module}`")))?;
        // CUDA host code passes raw device pointers — no map translation.
        let mut params = Vec::with_capacity(args.len());
        for (v, p) in args.iter().zip(&kf.params) {
            params.push(match (v, p.ty) {
                (Value::Ptr(dp), _) => *dp,
                (_, sptx::ScalarTy::F32) => v.as_f32().to_bits() as u64,
                (_, sptx::ScalarTy::F64) => v.as_f64().to_bits(),
                (_, sptx::ScalarTy::I32) => v.as_i32() as u32 as u64,
                (_, sptx::ScalarTy::I64) => v.as_i64() as u64,
            });
        }
        if args.len() != kf.params.len() {
            return Err(InterpError::Trap(format!(
                "kernel `{name}` takes {} parameters, launch provided {}",
                kf.params.len(),
                args.len()
            )));
        }
        dev.launch(ctx.mem(), &module, name, grid, block, params)
            .map_err(|e| InterpError::Trap(e.to_string()))?;
        Ok(())
    }
}
