/* gemm (UniBench/Polybench): C = alpha*A*B + beta*C — OpenMP offload.
 * Combined construct with collapse(2), the paper's recommended form. */
void run(int n, float *a, float *b, float *c)
{
    #pragma omp target teams distribute parallel for collapse(2) \
            map(to: a[0:n*n], b[0:n*n]) map(tofrom: c[0:n*n]) \
            num_teams((n + 31) / 32 * ((n + 7) / 8)) num_threads(256)
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = c[i * n + j] * 2123.0f;
            for (int k = 0; k < n; k++)
                acc += 32412.0f * a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }
    }
}
