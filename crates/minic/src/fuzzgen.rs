//! Seeded random generator of well-formed-ish mini-C programs, the input
//! side of the differential fuzzer (`tests/fuzz_differential.rs`).
//!
//! Programs are generated from a [`XorShift64`] stream, so a seed fully
//! determines the program: a failing seed reproduces the failure exactly.
//! The generator aims for the sweet spot the V100 compiler-assessment
//! paper highlights — programs weird enough to diverge implementations,
//! but structured enough to exercise the whole
//! lexer→parser→sema→compile→vm pipeline rather than bouncing off the
//! parser:
//!
//! * mostly-terminating control flow (bounded `for`/`while`, guarded
//!   self-recursion), with a rare deliberately unbounded loop — the fuel
//!   governor's job is to stop it;
//! * `int`/`long`/`double` scalars, a fixed `int` array with masked
//!   (always in-bounds) indexing, and helper functions;
//! * trap-prone operations (`/`, `%`, deep recursion) at low probability:
//!   both engines must produce byte-identical trap messages.
//!
//! The generated source never depends on anything but the seed, and the
//! generator itself never panics.

use vmcommon::rng::XorShift64;

/// Generate the program for `seed`.
pub fn generate(seed: u64) -> String {
    Gen::new(seed).program()
}

struct Gen {
    rng: XorShift64,
    /// In-scope `int`-ish scalar names (ints and longs both mix fine).
    ints: Vec<String>,
    /// In-scope `double` names.
    doubles: Vec<String>,
    /// Helper signatures emitted so far: name, arity (all-`int` params).
    helpers: Vec<(String, usize)>,
    /// Is `main`'s fixed array in scope? (Helpers must not reference it.)
    has_arr: bool,
    /// Only one unbounded loop per program — one is enough to need fuel,
    /// more just slows every fuel-limited run down.
    unbounded_done: bool,
    /// Fresh-name counter.
    next_id: u32,
}

/// Size of the `int` array in `main`; indices are masked with `& 15`.
const ARR_LEN: usize = 16;

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            // Mix the seed so 0 and small consecutive seeds still produce
            // unrelated streams.
            rng: XorShift64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)),
            ints: Vec::new(),
            doubles: Vec::new(),
            helpers: Vec::new(),
            has_arr: false,
            unbounded_done: false,
            next_id: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn program(&mut self) -> String {
        let mut out = String::new();

        // Globals: a few scalars with constant initializers.
        for _ in 0..self.rng.below(3) {
            let name = self.fresh("g");
            if self.rng.chance(1, 3) {
                out.push_str(&format!("double {name} = {}.5;\n", self.rng.range_i64(-50, 50)));
                self.doubles.push(name);
            } else {
                out.push_str(&format!("int {name} = {};\n", self.rng.range_i64(-100, 100)));
                self.ints.push(name);
            }
        }

        // Helpers: all-`int` signatures; bodies may call earlier helpers
        // and recurse with a strictly decreasing guard.
        for _ in 0..1 + self.rng.below(2) {
            let h = self.helper();
            out.push_str(&h);
        }

        out.push_str(&self.main_fn());
        out
    }

    fn helper(&mut self) -> String {
        let name = self.fresh("f");
        let arity = 1 + self.rng.below(2) as usize;
        let params: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();

        // Helper bodies see only the int globals (name prefix `g`) plus
        // their own parameters.
        let saved_ints = std::mem::take(&mut self.ints);
        let mut scope: Vec<String> =
            saved_ints.iter().filter(|n| n.starts_with('g')).cloned().collect();
        scope.extend(params.iter().cloned());
        self.ints = scope;
        let saved_doubles = std::mem::take(&mut self.doubles);

        let mut body = String::new();
        if self.rng.chance(1, 2) {
            // Guarded self-recursion: the first argument strictly
            // decreases, so the call tree is finite for any input (deep
            // inputs hit the stack limit — a deterministic, identical
            // trap on both engines).
            let step = 1 + self.rng.below(3);
            let rec_args: Vec<String> = std::iter::once(format!("(a0 - {step})"))
                .chain(params.iter().skip(1).map(|p| format!("({p} + 1)")))
                .collect();
            body.push_str(&format!(
                "  if (a0 > {}) return {name}({}) + {};\n",
                step,
                rec_args.join(", "),
                self.rng.range_i64(0, 9),
            ));
        }
        let t = self.fresh("t");
        let init = self.int_expr(2);
        self.ints.push(t.clone());
        body.push_str(&format!("  int {t} = {init};\n"));
        let ret = self.int_expr(2);
        body.push_str(&format!("  return {ret};\n"));

        self.ints = saved_ints;
        self.doubles = saved_doubles;
        self.helpers.push((name.clone(), arity));

        let sig: Vec<String> = params.iter().map(|p| format!("int {p}")).collect();
        format!("int {name}({}) {{\n{body}}}\n", sig.join(", "))
    }

    fn main_fn(&mut self) -> String {
        self.has_arr = true;
        let mut body = String::new();

        // Locals: 2–4 ints/longs, 0–2 doubles, one fixed array.
        for _ in 0..2 + self.rng.below(3) {
            let name = self.fresh("x");
            let ty = if self.rng.chance(1, 4) { "long" } else { "int" };
            body.push_str(&format!("  {ty} {name} = {};\n", self.rng.range_i64(-100, 100)));
            self.ints.push(name);
        }
        for _ in 0..self.rng.below(3) {
            let name = self.fresh("d");
            body.push_str(&format!("  double {name} = {}.25;\n", self.rng.range_i64(-20, 20)));
            self.doubles.push(name);
        }
        body.push_str(&format!("  int arr[{ARR_LEN}];\n"));
        body.push_str(&format!(
            "  for (int z0 = 0; z0 < {ARR_LEN}; z0++) arr[z0] = z0 * {};\n",
            self.rng.range_i64(-5, 5)
        ));

        let n = 3 + self.rng.below(5);
        for _ in 0..n {
            let s = self.stmt(0);
            body.push_str(&s);
        }

        let ret = self.int_expr(2);
        body.push_str(&format!("  return ({ret}) & 255;\n"));
        format!("int main() {{\n{body}}}\n")
    }

    /// One statement at nesting depth `d` (indented two spaces per level).
    fn stmt(&mut self, d: u32) -> String {
        let pad = "  ".repeat(d as usize + 1);
        // Rare hostile case: an unbounded loop. Only the fuel governor
        // terminates this one.
        if !self.unbounded_done && d == 0 && self.rng.chance(1, 12) {
            self.unbounded_done = true;
            let v = self.ints[self.rng.below(self.ints.len() as u64) as usize].clone();
            return format!("{pad}while (1) {{ {v} = {v} + 1; }}\n");
        }
        match self.rng.below(if d < 2 { 7 } else { 4 }) {
            // Scalar assignment.
            0 => {
                let v = self.ints[self.rng.below(self.ints.len() as u64) as usize].clone();
                let e = self.int_expr(2);
                format!("{pad}{v} = {e};\n")
            }
            // Array store, masked in-bounds.
            1 => {
                let i = self.int_expr(1);
                let e = self.int_expr(2);
                format!("{pad}arr[({i}) & {}] = {e};\n", ARR_LEN - 1)
            }
            // printf.
            2 => {
                if !self.doubles.is_empty() && self.rng.chance(1, 3) {
                    let e = self.double_expr(2);
                    format!("{pad}printf(\"%f\\n\", {e});\n")
                } else {
                    let e = self.int_expr(2);
                    format!("{pad}printf(\"%d\\n\", {e});\n")
                }
            }
            // Double assignment (or scalar again when none declared).
            3 => {
                if self.doubles.is_empty() {
                    let v = self.ints[self.rng.below(self.ints.len() as u64) as usize].clone();
                    let e = self.int_expr(2);
                    format!("{pad}{v} = {e};\n")
                } else {
                    let v =
                        self.doubles[self.rng.below(self.doubles.len() as u64) as usize].clone();
                    let e = self.double_expr(2);
                    format!("{pad}{v} = {e};\n")
                }
            }
            // Bounded for loop with a fresh counter.
            4 => {
                let i = self.fresh("i");
                let k = 1 + self.rng.below(12);
                self.ints.push(i.clone());
                let inner = self.block(d + 1);
                self.ints.pop();
                format!("{pad}for (int {i} = 0; {i} < {k}; {i}++) {{\n{inner}{pad}}}\n")
            }
            // Bounded while loop over a fresh countdown.
            5 => {
                let t = self.fresh("w");
                let k = 1 + self.rng.below(10);
                self.ints.push(t.clone());
                let inner = self.block(d + 1);
                self.ints.pop();
                format!(
                    "{pad}{{ int {t} = {k}; while ({t} > 0) {{ {t} = {t} - 1;\n{inner}{pad}}} }}\n"
                )
            }
            // if / else.
            _ => {
                let c = self.int_expr(2);
                let then_b = self.block(d + 1);
                if self.rng.chance(1, 2) {
                    let else_b = self.block(d + 1);
                    format!("{pad}if ({c}) {{\n{then_b}{pad}}} else {{\n{else_b}{pad}}}\n")
                } else {
                    format!("{pad}if ({c}) {{\n{then_b}{pad}}}\n")
                }
            }
        }
    }

    fn block(&mut self, d: u32) -> String {
        let mut out = String::new();
        for _ in 0..1 + self.rng.below(3) {
            let s = self.stmt(d);
            out.push_str(&s);
        }
        out
    }

    /// A random `int`-typed expression with at most `d` operator levels.
    fn int_expr(&mut self, d: u32) -> String {
        if d == 0 || self.rng.chance(1, 3) {
            return match self.rng.below(3) {
                0 => format!("{}", self.rng.range_i64(-100, 100)),
                1 if !self.ints.is_empty() => {
                    self.ints[self.rng.below(self.ints.len() as u64) as usize].clone()
                }
                _ => {
                    let v = self.rng.range_i64(-100, 100);
                    format!("{v}")
                }
            };
        }
        match self.rng.below(10) {
            0..=2 => {
                let op = *self.rng.pick(&["+", "-", "*"]);
                let a = self.int_expr(d - 1);
                let b = self.int_expr(d - 1);
                format!("({a} {op} {b})")
            }
            3..=4 => {
                let op = *self.rng.pick(&["<", ">", "==", "!=", "<=", ">="]);
                let a = self.int_expr(d - 1);
                let b = self.int_expr(d - 1);
                format!("({a} {op} {b})")
            }
            5 => {
                let op = *self.rng.pick(&["&", "|", "^"]);
                let a = self.int_expr(d - 1);
                let b = self.int_expr(d - 1);
                format!("({a} {op} {b})")
            }
            // Division and remainder: the divisor may be zero — a trap
            // both engines must report byte-identically.
            6 => {
                let op = *self.rng.pick(&["/", "%"]);
                let a = self.int_expr(d - 1);
                let b = self.int_expr(d - 1);
                format!("({a} {op} {b})")
            }
            7 if self.has_arr => {
                let i = self.int_expr(d - 1);
                format!("arr[({i}) & {}]", ARR_LEN - 1)
            }
            8 if !self.helpers.is_empty() => {
                // Mask arguments small so recursion stays shallow (deep
                // calls still appear via large products at low rates).
                let (name, arity) =
                    self.helpers[self.rng.below(self.helpers.len() as u64) as usize].clone();
                let args: Vec<String> = (0..arity)
                    .map(|_| {
                        let e = self.int_expr(d - 1);
                        format!("(({e}) & 63)")
                    })
                    .collect();
                format!("{name}({})", args.join(", "))
            }
            _ => {
                let a = self.int_expr(d - 1);
                format!("(-({a}))")
            }
        }
    }

    /// A random `double`-typed expression with at most `d` operator levels.
    fn double_expr(&mut self, d: u32) -> String {
        if d == 0 || self.doubles.is_empty() || self.rng.chance(1, 3) {
            if !self.doubles.is_empty() && self.rng.chance(1, 2) {
                return self.doubles[self.rng.below(self.doubles.len() as u64) as usize].clone();
            }
            return format!("{}.125", self.rng.range_i64(-40, 40));
        }
        let op = *self.rng.pick(&["+", "-", "*"]);
        let a = self.double_expr(d - 1);
        // Mixing an int operand in exercises the promotion rules.
        let b = if self.rng.chance(1, 3) { self.int_expr(d - 1) } else { self.double_expr(d - 1) };
        format!("({a} {op} {b})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_program() {
        assert_eq!(generate(42), generate(42));
        // Different seeds give different streams (not guaranteed for every
        // pair, but a collision across neighbours would mean the seed mix
        // is broken).
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_programs_pass_the_frontend() {
        // The generator's output should essentially always parse and pass
        // sema — the fuzzer is after execution divergence, not parser
        // noise. Hold a broad sample to 100%.
        for seed in 0..200 {
            let src = generate(seed);
            let mut prog = crate::parser::parse(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e:?}\n{src}"));
            crate::sema::analyze(&mut prog)
                .unwrap_or_else(|e| panic!("seed {seed}: sema failed: {e:?}\n{src}"));
        }
    }
}
