//! The device-memory **governor**: allocation failure on the (simulated)
//! 2 GB shared arena degrades gracefully instead of killing the offload.
//!
//! Four rungs, tried in order, each traced as a `pressure` instant (with a
//! `rung` argument) and counted as `pressure.<rung>` in the metrics:
//!
//! 1. **evict** — buffers whose mapping refcount dropped to zero are kept
//!    as an LRU cache for transfer reuse; under pressure they are freed
//!    (they were written back at unmap time, so eviction is just a free)
//!    and the allocation is retried.
//! 2. **stage** — host↔device copies larger than the configured staging
//!    bound ([`super::CudaDevConfig::staging_bytes`]) are split into
//!    chunked transfers, capping peak transient usage.
//! 3. **tile** — a combined `target teams distribute parallel for` region
//!    whose mapped arrays still don't fit runs as a sequence of smaller
//!    grids: each tile streams the slices of oversized (*pending*) arrays
//!    it touches, and the kernel observes the *logical* grid via
//!    [`gpusim::TileView`], so `cudadev_get_distribute_chunk` computes the
//!    same per-team bounds as the monolithic launch — results are
//!    bit-identical.
//! 4. **host fallback** — the region is declined ([`PressureOutcome::
//!    Declined`]) and the runtime re-executes it on the host, annotated
//!    with an `oom` reason distinct from `device_lost`.
//!
//! Slicing assumes the translator's conservative shape analysis: a buffer
//! is sliceable only when every access indexes it as `i*stride + rest`
//! with `i` the distribute-loop variable and `rest` an unscaled inner
//! index — the row-major convention that `rest < stride`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gpusim::{Device, ExecError, LaunchConfig, TileView};
use vmcommon::alloc::AllocError;
use vmcommon::sched::static_block;
use vmcommon::MemArena;

use super::{CudaDev, MapEntry};
use crate::error::CudadevError;

/// One kernel parameter of a pressure-aware offload, as the runtime
/// describes it to the governor.
#[derive(Clone, Copy, Debug)]
pub enum TileParam {
    /// Raw scalar bits, passed through unchanged.
    Scalar(u64),
    /// A mapped buffer, identified by host address. `row_bytes` is the
    /// byte stride per distribute-loop iteration when the translator
    /// proved the buffer sliceable, 0 when it must stay resident.
    Buf { host: u64, row_bytes: u64 },
}

/// What the governor did with a pressured offload request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PressureOutcome {
    /// The region ran on the device (tiled); results are on the host side
    /// for pending buffers and on the device for resident ones.
    Ran,
    /// The region cannot run under the current memory pressure; the
    /// runtime must re-execute it on the host (OOM fallback).
    Declined,
}

/// A device's memory standing, exported for admission control: how big
/// the arena is, how much is free right now, how much of the used space is
/// merely LRU-cached (reclaimable by eviction), and how many governor
/// ladder rungs this device has ever had to take. A scheduler reading
/// `free_bytes + cached_bytes` gets the bytes a new job could claim
/// without degrading anyone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemPressure {
    pub total_bytes: u64,
    pub free_bytes: u64,
    pub cached_bytes: u64,
    pub pressure_events: u64,
}

/// One cached (unmapped but not yet freed) device buffer.
#[derive(Clone, Debug)]
pub(super) struct CacheEntry {
    pub dev_ptr: u64,
    pub len: u64,
    /// Hash of the buffer contents *as last synced with the host* (set
    /// when the unmap copy-back ran, so device == host at insert time).
    /// `None` when the device copy was never re-read — reuse must then
    /// re-upload.
    pub synced_hash: Option<u64>,
    /// LRU stamp; smallest is evicted first.
    pub tick: u64,
}

/// FNV-1a, enough to recognize "the host bytes have not changed since the
/// last sync" for transfer reuse. Collisions only cost a skipped upload of
/// stale data in an adversarial setting; for the deterministic benchmark
/// workloads the hash is exact bookkeeping.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A pending buffer being streamed slice-by-slice during a tiled launch.
struct SliceStream {
    host_addr: u64,
    row: u64,
    len: u64,
    param_idx: usize,
    /// Device buffer sized for the largest tile, reused across tiles.
    dev_ptr: u64,
    /// Full host contents at tiling start (restored on mid-run failure so
    /// a subsequent host fallback re-executes from pristine inputs).
    pristine: Vec<u8>,
}

impl CudaDev {
    /// Emit one `pressure` trace instant + counter for a ladder rung.
    pub(super) fn pressure(&self, rung: &str, mut args: Vec<(&'static str, obs::ArgValue)>) {
        self.pressure_events.fetch_add(1, Ordering::Relaxed);
        let obs = &self.cfg.obs;
        args.insert(0, ("rung", rung.into()));
        obs.tracer.instant(self.pid(), 0, "pressure", "pressure", self.now(), args);
        obs.metrics.incr(self.pid(), &format!("pressure.{rung}"), 1);
    }

    /// Memory-pressure snapshot for admission control. Deliberately does
    /// *not* force lazy init: an untouched device reports its configured
    /// arena as fully free, and a broken one reports zero free bytes.
    pub fn mem_pressure(&self) -> MemPressure {
        let total = self.cfg.global_mem as u64;
        let free = if !self.is_initialized() {
            total
        } else {
            self.try_device().map(|d| d.mem_free_bytes()).unwrap_or(0)
        };
        MemPressure {
            total_bytes: total,
            free_bytes: free,
            cached_bytes: self.cached_bytes(),
            pressure_events: self.pressure_events.load(Ordering::Relaxed),
        }
    }

    /// Free a device buffer, surfacing driver rejection as the typed
    /// [`CudadevError::InvalidFree`] instead of an opaque data error.
    pub(super) fn free_dev(&self, device: &Device, dev_ptr: u64) -> Result<(), CudadevError> {
        match device.mem_free(dev_ptr) {
            Ok(()) => Ok(()),
            Err(ExecError::Alloc(AllocError::InvalidFree { .. })) => {
                self.cfg.obs.metrics.incr(self.pid(), "invalid_frees", 1);
                Err(CudadevError::InvalidFree { dev_ptr })
            }
            Err(e) => Err(CudadevError::Data(self.latch("free", e))),
        }
    }

    // ------------------------------------------------ rung 1: evict (LRU)

    /// Allocate `len` bytes, evicting cached buffers (LRU first) while the
    /// arena is out of memory. `Ok(None)` means the arena cannot hold the
    /// buffer even with an empty cache — the mapping goes pending.
    /// Terminal failures are returned raw (no latch): the caller — `map`
    /// — hands them to the recovery manager.
    pub(super) fn alloc_pressured(
        &self,
        device: &Arc<Device>,
        len: u64,
    ) -> Result<Option<u64>, CudadevError> {
        loop {
            match self.retrying("alloc", || device.mem_alloc(len)) {
                Ok(p) => return Ok(Some(p)),
                Err(ExecError::Alloc(AllocError::OutOfMemory { .. })) => {
                    if !self.evict_lru(device)? {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(CudadevError::Data(e)),
            }
        }
    }

    /// Evict the least-recently-used cache entry. Returns false when the
    /// cache is empty.
    fn evict_lru(&self, device: &Arc<Device>) -> Result<bool, CudadevError> {
        let victim = {
            let mut cache = self.cache.lock();
            let key = cache.iter().min_by_key(|(_, c)| c.tick).map(|(&k, _)| k);
            key.and_then(|k| cache.remove(&k).map(|c| (k, c)))
        };
        let Some((host, c)) = victim else {
            return Ok(false);
        };
        self.pressure("evict", vec![("bytes", c.len.into()), ("host", host.into())]);
        self.cfg.obs.metrics.observe(self.pid(), "evicted_bytes", c.len);
        self.free_dev(device, c.dev_ptr)?;
        Ok(true)
    }

    /// Take a cached buffer of exactly this shape for reuse. A cached
    /// buffer with a different length is stale (the program re-mapped the
    /// address at another size) and is dropped here.
    pub(super) fn cache_take(&self, host_addr: u64, len: u64) -> Option<CacheEntry> {
        let mut cache = self.cache.lock();
        match cache.get(&host_addr) {
            Some(c) if c.len == len => cache.remove(&host_addr),
            Some(_) => {
                let c = cache.remove(&host_addr).unwrap();
                drop(cache);
                if let Ok(d) = self.try_device() {
                    let _ = self.free_dev(&d, c.dev_ptr);
                }
                None
            }
            None => None,
        }
    }

    /// Do the host bytes still match what the cached device buffer holds?
    pub(super) fn cache_contents_match(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        cached: &CacheEntry,
    ) -> bool {
        let Some(expect) = cached.synced_hash else {
            return false;
        };
        let mut buf = vec![0u8; len as usize];
        if host_mem.read_bytes(vmcommon::addr::offset(host_addr), &mut buf).is_err() {
            return false;
        }
        fnv64(&buf) == expect
    }

    /// Park an unmapped buffer in the LRU cache. `synced` carries the
    /// bytes just copied back to the host (device == host), enabling a
    /// hash-verified upload skip on the next map.
    pub(super) fn cache_insert(&self, host_addr: u64, entry: &MapEntry, synced: Option<Vec<u8>>) {
        let tick = self.lru_tick.fetch_add(1, Ordering::Relaxed);
        let ce = CacheEntry {
            dev_ptr: entry.dev_ptr,
            len: entry.len,
            synced_hash: synced.as_deref().map(fnv64),
            tick,
        };
        self.cache.lock().insert(host_addr, ce);
        self.cfg.obs.metrics.incr(self.pid(), "cache.insert", 1);
    }

    /// Bytes currently parked in the LRU cache (diagnostic).
    pub fn cached_bytes(&self) -> u64 {
        self.cache.lock().values().map(|c| c.len).sum()
    }

    /// Drop every cached buffer, freeing its device memory.
    pub fn trim_cache(&self) -> Result<(), CudadevError> {
        let drained: Vec<CacheEntry> = self.cache.lock().drain().map(|(_, c)| c).collect();
        if drained.is_empty() {
            return Ok(());
        }
        let device = self.try_device()?;
        for c in drained {
            self.free_dev(&device, c.dev_ptr)?;
        }
        Ok(())
    }

    // ------------------------------------------- rung 2: staged transfers

    /// Host→device copy, chunked through the staging bound. Emits the
    /// `h2d` span and charges the clock exactly like the unchunked path,
    /// so small copies keep their historical trace/fault numbering. On an
    /// async stream the copy still executes eagerly, but its simulated
    /// time is queued on the copy engine and drawn on the stream's track.
    pub(super) fn h2d_copy(
        &self,
        device: &Device,
        dev_ptr: u64,
        buf: &[u8],
    ) -> Result<(), ExecError> {
        let obs = &self.cfg.obs;
        let len = buf.len() as u64;
        let async_stream = self.async_stream();
        let _span = async_stream.is_none().then(|| {
            obs.tracer.span(
                self.pid(),
                0,
                "h2d",
                "memcpy",
                || self.now(),
                vec![("bytes", len.into())],
            )
        });
        let cap = self.staging_cap();
        let mut total = 0.0;
        if buf.len() > cap {
            let chunks = buf.len().div_ceil(cap) as u64;
            self.pressure(
                "stage",
                vec![("dir", "h2d".into()), ("bytes", len.into()), ("chunks", chunks.into())],
            );
            obs.metrics.incr(self.pid(), "staged_chunks", chunks);
        }
        for (i, chunk) in buf.chunks(cap).enumerate() {
            let dst = dev_ptr + (i * cap) as u64;
            total += self.retrying("h2d", || device.memcpy_h2d(dst, chunk))?;
        }
        let mut clk = self.clock.lock();
        clk.h2d_bytes += len;
        match async_stream {
            Some(s) => {
                drop(clk);
                self.async_copy(s, /*h2d*/ true, total, len);
            }
            None => {
                clk.h2d_s += total;
                drop(clk);
            }
        }
        obs.metrics.incr(self.pid(), "h2d_bytes", len);
        Ok(())
    }

    /// Device→host copy into `buf`, chunked through the staging bound.
    pub(super) fn d2h_copy(
        &self,
        device: &Device,
        dev_ptr: u64,
        buf: &mut [u8],
    ) -> Result<(), ExecError> {
        let obs = &self.cfg.obs;
        let len = buf.len() as u64;
        let async_stream = self.async_stream();
        let _span = async_stream.is_none().then(|| {
            obs.tracer.span(
                self.pid(),
                0,
                "d2h",
                "memcpy",
                || self.now(),
                vec![("bytes", len.into())],
            )
        });
        let cap = self.staging_cap();
        let mut total = 0.0;
        if buf.len() > cap {
            let chunks = buf.len().div_ceil(cap) as u64;
            self.pressure(
                "stage",
                vec![("dir", "d2h".into()), ("bytes", len.into()), ("chunks", chunks.into())],
            );
            obs.metrics.incr(self.pid(), "staged_chunks", chunks);
        }
        for (i, chunk) in buf.chunks_mut(cap).enumerate() {
            let src = dev_ptr + (i * cap) as u64;
            total += self.retrying("d2h", || device.memcpy_d2h(chunk, src))?;
        }
        let mut clk = self.clock.lock();
        clk.d2h_bytes += len;
        match async_stream {
            Some(s) => {
                drop(clk);
                self.async_copy(s, /*h2d*/ false, total, len);
            }
            None => {
                clk.d2h_s += total;
                drop(clk);
            }
        }
        obs.metrics.incr(self.pid(), "d2h_bytes", len);
        Ok(())
    }

    fn staging_cap(&self) -> usize {
        (self.cfg.staging_bytes.max(vmcommon::alloc::BlockAllocator::ALIGN)) as usize
    }

    // ----------------------------------------- dirty tracking (fallback)

    /// After a host fallback ran under an enclosing `target data`, every
    /// live device copy is stale: mark them so copy-back is skipped and
    /// the next launch that uses them re-uploads first.
    pub fn mark_all_host_dirty(&self) {
        for e in self.maps.lock().values_mut() {
            if !e.pending {
                e.host_dirty = true;
            }
        }
    }

    /// Drop every live mapping without copy-back, freeing the device
    /// buffers. The runtime calls this when a guest job was aborted by a
    /// resource limit: nothing will ever read those buffers again, but the
    /// device itself is healthy and must stay usable for the next job —
    /// so driver errors here are swallowed, never latched.
    pub fn release_mappings(&self) -> usize {
        let entries: Vec<_> = {
            let mut maps = self.maps.lock();
            std::mem::take(&mut *maps).into_values().collect()
        };
        let n = entries.len();
        if let Ok(device) = self.try_device() {
            for e in entries {
                if !e.pending {
                    // Raw free, not `free_dev`: a driver error here only
                    // leaks simulated DRAM and must not reach `latch`.
                    let _ = device.mem_free(e.dev_ptr);
                }
            }
        }
        if n > 0 {
            self.cfg.obs.metrics.incr(self.pid(), "maps_released", n as u64);
        }
        n
    }

    /// Does any of these host addresses have a pending (buffer-less)
    /// mapping?
    pub fn has_pending(&self, host_addrs: &[u64]) -> bool {
        let maps = self.maps.lock();
        host_addrs.iter().any(|a| maps.get(a).is_some_and(|e| e.pending))
    }

    /// Re-upload any stale (host-dirty) device copies among `host_addrs`
    /// before a launch reads them.
    pub fn refresh_args(
        &self,
        host_mem: &MemArena,
        host_addrs: &[u64],
    ) -> Result<(), CudadevError> {
        for &addr in host_addrs {
            let (dev_ptr, len) = {
                let maps = self.maps.lock();
                match maps.get(&addr) {
                    Some(e) if e.host_dirty && !e.pending => (e.dev_ptr, e.len),
                    _ => continue,
                }
            };
            let device = self.try_device()?;
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            self.h2d_copy(&device, dev_ptr, &buf).map_err(|e| self.latch("h2d", e))?;
            self.cfg.obs.metrics.incr(self.pid(), "dirty_refresh", 1);
            if let Some(e) = self.maps.lock().get_mut(&addr) {
                e.host_dirty = false;
                e.device_dirty = false;
            }
        }
        Ok(())
    }

    /// Make host memory authoritative before an OOM-declined fallback:
    /// copy every live (non-pending) device buffer back to the host.
    /// Earlier regions of an enclosing `target data` may have left their
    /// results device-side only (e.g. an `alloc`-mapped intermediate); the
    /// fallback body reads them from host memory. Host-dirty entries are
    /// skipped — there the host is already fresher.
    fn sync_host(&self, host_mem: &MemArena) -> Result<(), CudadevError> {
        let live: Vec<(u64, u64, u64)> = self
            .maps
            .lock()
            .iter()
            .filter(|(_, e)| !e.pending && !e.host_dirty)
            .map(|(&h, e)| (h, e.dev_ptr, e.len))
            .collect();
        if live.is_empty() {
            return Ok(());
        }
        let device = self.try_device()?;
        let mut synced = 0u64;
        for (host, dev_ptr, len) in live {
            let mut buf = vec![0u8; len as usize];
            self.d2h_copy(&device, dev_ptr, &mut buf).map_err(|e| self.latch("d2h", e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host), &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            if let Some(e) = self.maps.lock().get_mut(&host) {
                // The host copy is now current.
                e.device_dirty = false;
            }
            synced += len;
        }
        self.cfg.obs.metrics.observe(self.pid(), "oom_sync_bytes", synced);
        Ok(())
    }

    // -------------------------------------------------- rung 3/4: tiling

    /// Run an offload whose data environment has pending (buffer-less)
    /// mappings: tile the iteration space and stream slices when the
    /// translator proved the region tileable, else decline so the runtime
    /// falls back to the host (`rung=fallback`).
    ///
    /// `total` is the distribute trip count, `logical_grid`/`block` the
    /// geometry the monolithic launch would use.
    #[allow(clippy::too_many_arguments)]
    pub fn offload_pressured(
        &self,
        host_mem: &MemArena,
        module: &str,
        kernel: &str,
        tileable: bool,
        total: u64,
        logical_grid: [u32; 3],
        block: [u32; 3],
        params: &[TileParam],
    ) -> Result<PressureOutcome, CudadevError> {
        let device = self.try_device()?;
        let lib = self.devlib()?;
        let m = self.load_module(module)?;

        let decline = |reason: &str| {
            self.pressure(
                "fallback",
                vec![("kernel", kernel.into()), ("reason", reason.to_string().into())],
            );
            // The host is about to re-execute the region: make it
            // authoritative first (device-side intermediates from earlier
            // regions would otherwise be invisible to the fallback body).
            self.sync_host(host_mem)?;
            Ok(PressureOutcome::Declined)
        };

        // Resolve parameters: scalars pass through, resident buffers
        // translate to device pointers, pending sliceable buffers become
        // slice streams.
        let mut vals = vec![0u64; params.len()];
        let mut pending: Vec<(usize, u64, u64, u64)> = Vec::new(); // (param_idx, host, row, len)
        let mut resident: Vec<u64> = Vec::new();
        {
            let maps = self.maps.lock();
            for (i, p) in params.iter().enumerate() {
                match *p {
                    TileParam::Scalar(v) => vals[i] = v,
                    TileParam::Buf { host, row_bytes } => match maps.get(&host) {
                        Some(e) if !e.pending => {
                            vals[i] = e.dev_ptr;
                            resident.push(host);
                        }
                        Some(e) => pending.push((i, host, row_bytes, e.len)),
                        None => {
                            return Err(CudadevError::Data(ExecError::Trap(format!(
                                "launch argument {host:#x} is not mapped"
                            ))))
                        }
                    },
                }
            }
        }
        if pending.is_empty() {
            // Nothing is actually pending; the caller should use the
            // normal launch path. Treat as declined rather than guessing.
            return decline("no pending buffers");
        }
        if !tileable {
            return decline("region not tileable");
        }
        if logical_grid[1] != 1 || logical_grid[2] != 1 || total == 0 {
            return decline("non-1d grid");
        }
        for &(_, _, row, len) in &pending {
            if row == 0 {
                return decline("unsliceable pending buffer");
            }
            if row.checked_mul(total) != Some(len) {
                return decline("buffer shape does not match trip count");
            }
        }

        // Tile sizing: the largest per-team iteration count bounds each
        // slice, and the whole tile's slices must fit in the free arena
        // with headroom.
        let gx = logical_grid[0] as u64;
        let per_team = total.div_ceil(gx);
        let row_sum: u64 = pending.iter().map(|&(_, _, row, _)| row).sum();
        let free = device.mem_free_bytes();
        let mut budget = free - free / 8;
        if self.async_stream().is_some() {
            // Async mode wants a second buffer set for double-buffered
            // tiling: size the tile to half the budget so both sets fit.
            // (If the alt allocation still fails the loop degrades to
            // single-buffered tiles — smaller than they could have been,
            // but correct.)
            budget /= 2;
        }
        // Start from the budgeted estimate but always try at least one
        // team per tile — the halve-on-OOM loop below is the arbiter of
        // what actually fits.
        let mut teams_per_tile = (budget / (row_sum * per_team).max(1)).clamp(1, gx);

        // Refresh stale resident inputs before anything runs.
        self.refresh_args(host_mem, &resident)?;

        // Allocate the slice buffers once (max tile size), halving the
        // tile on fragmentation, and reuse them across tiles. In async
        // mode a second (alt) buffer set is allocated in the same loop so
        // both sets shrink together: double-buffered tiling needs tile
        // k+1's slices live while tile k's are still in flight. The alt
        // set is best-effort — at one team per tile the loop settles for
        // single buffering rather than declining the region.
        let want_alt = self.async_stream().is_some();
        let mut streams: Vec<SliceStream> = Vec::new();
        let mut alt_streams: Vec<SliceStream> = Vec::new();
        'size: while teams_per_tile >= 1 {
            // Each attempt starts from a clean slate.
            for s in streams.drain(..).chain(alt_streams.drain(..)) {
                self.free_dev(&device, s.dev_ptr)?;
            }
            match self.try_alloc_set(&device, &pending, teams_per_tile, per_team)? {
                Some(set) => streams = set,
                None => {
                    if !self.evict_lru(&device)? {
                        teams_per_tile /= 2;
                    }
                    continue 'size; // retry: emptier arena or smaller tile
                }
            }
            if want_alt && teams_per_tile < gx {
                match self.try_alloc_set(&device, &pending, teams_per_tile, per_team)? {
                    Some(set) => alt_streams = set,
                    None => {
                        if self.evict_lru(&device)? {
                            continue 'size;
                        }
                        if teams_per_tile > 1 {
                            teams_per_tile /= 2;
                            continue 'size;
                        }
                        // Nothing evictable and already at one team per
                        // tile: settle for single buffering.
                    }
                }
            }
            break 'size;
        }
        if teams_per_tile == 0 || streams.len() != pending.len() {
            for s in streams.drain(..).chain(alt_streams.drain(..)) {
                self.free_dev(&device, s.dev_ptr)?;
            }
            return decline("slices do not fit even one team per tile");
        }

        // Snapshot pending host contents: if the device dies mid-tiling,
        // the host copies are restored so the fallback re-executes the
        // region from pristine inputs (tiles may have streamed partial
        // results back already).
        for s in &mut streams {
            let mut buf = vec![0u8; s.len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(s.host_addr), &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            s.pristine = buf;
        }

        let ntiles = gx.div_ceil(teams_per_tile);
        self.pressure(
            "tile",
            vec![
                ("kernel", kernel.into()),
                ("tiles", ntiles.into()),
                ("teams_per_tile", teams_per_tile.into()),
                ("pending_buffers", (pending.len() as u64).into()),
            ],
        );
        self.cfg.obs.metrics.incr(self.pid(), "tile_launches", ntiles);

        // Double buffering (async mode): the second buffer set on a second
        // stream lets tile k+1 upload — and tile k−1 download — while
        // tile k computes. Without the alt set the serial loop still runs
        // correctly, just with no overlap.
        let alt: Option<(Vec<SliceStream>, [usize; 2])> = match self.async_stream() {
            Some(sid) if !alt_streams.is_empty() => {
                Some((std::mem::take(&mut alt_streams), [sid, self.new_stream()]))
            }
            _ => None,
        };
        if alt.is_some() {
            self.cfg.obs.metrics.incr(self.pid(), "tile_double_buffered", 1);
        }

        let result = self.run_tiles(
            host_mem,
            &device,
            &m,
            lib.as_ref(),
            kernel,
            total,
            logical_grid,
            block,
            &mut vals,
            &streams,
            alt.as_ref().map(|(a, sids)| (a.as_slice(), *sids)),
            teams_per_tile,
        );
        if result.is_err() {
            // Put the host copies back the way the region found them.
            for s in &streams {
                let _ = host_mem.write_bytes(vmcommon::addr::offset(s.host_addr), &s.pristine);
            }
        } else {
            // Resident buffers may have been written by the tiled kernel
            // and have no streamed copy-back; salvage them on any reset.
            let mut maps = self.maps.lock();
            for h in &resident {
                if let Some(e) = maps.get_mut(h) {
                    e.device_dirty = true;
                }
            }
        }
        for s in streams.iter().chain(alt.iter().flat_map(|(a, _)| a.iter())) {
            // Best-effort: on a lost device the frees may fail; the arena
            // dies with the device.
            let _ = self.free_dev(&device, s.dev_ptr);
        }
        result.map(|()| PressureOutcome::Ran)
    }

    /// Try to allocate one full slice-buffer set for a tile of
    /// `teams_per_tile` teams. `Ok(None)` means the set does not fit
    /// (partial allocations freed — the caller evicts or shrinks the
    /// tile); other allocation failures propagate.
    fn try_alloc_set(
        &self,
        device: &Arc<Device>,
        pending: &[(usize, u64, u64, u64)],
        teams_per_tile: u64,
        per_team: u64,
    ) -> Result<Option<Vec<SliceStream>>, CudadevError> {
        let mut out: Vec<SliceStream> = Vec::with_capacity(pending.len());
        for &(param_idx, host, row, len) in pending {
            let cap = (teams_per_tile * per_team * row).min(len);
            match self.retrying("alloc", || device.mem_alloc(cap)) {
                Ok(dev_ptr) => out.push(SliceStream {
                    host_addr: host,
                    row,
                    len,
                    param_idx,
                    dev_ptr,
                    pristine: Vec::new(),
                }),
                Err(ExecError::Alloc(AllocError::OutOfMemory { .. })) => {
                    for s in out {
                        self.free_dev(device, s.dev_ptr)?;
                    }
                    return Ok(None);
                }
                Err(e) => {
                    for s in out {
                        self.free_dev(device, s.dev_ptr)?;
                    }
                    return Err(CudadevError::Data(self.latch("alloc", e)));
                }
            }
        }
        Ok(Some(out))
    }

    /// The tile loop proper: upload slices, launch the windowed grid,
    /// stream results back to the host. With an `alt` buffer set (async
    /// mode) the loop is software-pipelined: tile k+1's upload is queued
    /// before tile k's launch, so on the virtual timeline the copy engine
    /// fills the next tile's slices (and drains the previous tile's
    /// results) while the compute engine runs the current tile.
    #[allow(clippy::too_many_arguments)]
    fn run_tiles(
        &self,
        host_mem: &MemArena,
        device: &Arc<Device>,
        m: &sptx::Module,
        lib: &dyn gpusim::DeviceLib,
        kernel: &str,
        total: u64,
        logical_grid: [u32; 3],
        block: [u32; 3],
        vals: &mut [u64],
        streams: &[SliceStream],
        alt: Option<(&[SliceStream], [usize; 2])>,
        teams_per_tile: u64,
    ) -> Result<(), CudadevError> {
        let gx = logical_grid[0] as u64;
        // Tile windows [t0, t1) with their iteration bounds; teams with
        // empty chunks do no work.
        let mut tiles: Vec<(u64, u64, u64, u64)> = Vec::new();
        let mut t0 = 0u64;
        while t0 < gx {
            let t1 = (t0 + teams_per_tile).min(gx);
            let (lb, _) = static_block(total, gx, t0);
            let (_, ub) = static_block(total, gx, t1 - 1);
            if lb < ub {
                tiles.push((t0, t1, lb, ub));
            }
            t0 = t1;
        }
        let Some((alt_streams, sids)) = alt else {
            // Single-buffered: strictly serial — every tile reuses the one
            // buffer set, so its upload must wait for the previous
            // download anyway.
            for &(t0, t1, lb, ub) in &tiles {
                self.upload_tile(host_mem, device, streams, lb, ub)?;
                self.launch_tile(
                    device,
                    m,
                    lib,
                    kernel,
                    vals,
                    streams,
                    logical_grid,
                    block,
                    (t0, t1, lb),
                )?;
                self.download_tile(host_mem, device, streams, lb, ub)?;
            }
            return Ok(());
        };
        // Double-buffered: tile k lives on buffer set / stream k % 2. A
        // stream serializes its own operations, so tile k+2's upload waits
        // for tile k's download (same buffers, same stream) automatically.
        let bufs = [streams, alt_streams];
        for (k, &(t0, t1, lb, ub)) in tiles.iter().enumerate() {
            if k == 0 {
                let _g = self.override_stream(sids[0]);
                self.upload_tile(host_mem, device, bufs[0], lb, ub)?;
            }
            if let Some(&(_, _, nlb, nub)) = tiles.get(k + 1) {
                let _g = self.override_stream(sids[(k + 1) % 2]);
                self.upload_tile(host_mem, device, bufs[(k + 1) % 2], nlb, nub)?;
            }
            let _g = self.override_stream(sids[k % 2]);
            self.launch_tile(
                device,
                m,
                lib,
                kernel,
                vals,
                bufs[k % 2],
                logical_grid,
                block,
                (t0, t1, lb),
            )?;
            self.download_tile(host_mem, device, bufs[k % 2], lb, ub)?;
        }
        Ok(())
    }

    /// Upload the slice rows `[lb, ub)` of every buffer in `bufs`.
    fn upload_tile(
        &self,
        host_mem: &MemArena,
        device: &Arc<Device>,
        bufs: &[SliceStream],
        lb: u64,
        ub: u64,
    ) -> Result<(), CudadevError> {
        for s in bufs {
            let lo = (lb * s.row).min(s.len);
            let hi = (ub * s.row).min(s.len);
            let mut buf = vec![0u8; (hi - lo) as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(s.host_addr) + lo, &mut buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
            self.h2d_copy(device, s.dev_ptr, &buf).map_err(|e| self.latch("h2d", e))?;
        }
        Ok(())
    }

    /// Stream the slice rows `[lb, ub)` of every buffer back to the host.
    fn download_tile(
        &self,
        host_mem: &MemArena,
        device: &Arc<Device>,
        bufs: &[SliceStream],
        lb: u64,
        ub: u64,
    ) -> Result<(), CudadevError> {
        for s in bufs {
            let lo = (lb * s.row).min(s.len);
            let hi = (ub * s.row).min(s.len);
            let mut buf = vec![0u8; (hi - lo) as usize];
            self.d2h_copy(device, s.dev_ptr, &mut buf).map_err(|e| self.latch("d2h", e))?;
            host_mem
                .write_bytes(vmcommon::addr::offset(s.host_addr) + lo, &buf)
                .map_err(|e| CudadevError::Data(ExecError::Mem(e)))?;
        }
        Ok(())
    }

    /// Launch one tile's windowed grid from the buffer set in `bufs`;
    /// `window` is `(t0, t1, lb)`.
    #[allow(clippy::too_many_arguments)]
    fn launch_tile(
        &self,
        device: &Arc<Device>,
        m: &sptx::Module,
        lib: &dyn gpusim::DeviceLib,
        kernel: &str,
        vals: &mut [u64],
        bufs: &[SliceStream],
        logical_grid: [u32; 3],
        block: [u32; 3],
        window: (u64, u64, u64),
    ) -> Result<(), CudadevError> {
        let (t0, t1, lb) = window;
        for s in bufs {
            // The kernel indexes the buffer from its logical base; the
            // slice holds rows [lb, ub), so bias the base pointer back by
            // the slice start. Intermediate wrap-around is fine: in-tile
            // accesses land back inside the slice.
            vals[s.param_idx] = s.dev_ptr.wrapping_sub((lb * s.row).min(s.len));
        }
        let cfg = LaunchConfig { grid: [(t1 - t0) as u32, 1, 1], block, params: vals.to_vec() };
        let tile = TileView { team_base: t0, logical_grid };
        let stats = self
            .retrying("launch", || {
                device.set_trace_base(self.launch_base());
                gpusim::launch_tiled(device, m, kernel, &cfg, lib, self.cfg.exec_mode, tile)
            })
            .map_err(|e| CudadevError::Launch {
                kernel: kernel.to_string(),
                error: self.latch("launch", e),
            })?;
        self.finish_launch(kernel, &stats);
        Ok(())
    }
}
