//! Per-device counters and histograms.
//!
//! Keys are `(pid, name)` where `pid` matches the trace process numbering
//! (device number; host shim = `num_devices`). Histograms use log2 buckets
//! — bucket `i` counts values with bit-length `i` — which is plenty for the
//! quantities tracked here (bytes per transfer, cycles per launch), and
//! supports deterministic percentile summaries ([`Hist::percentile`]): a
//! reported percentile is the inclusive upper bound of the bucket the
//! target rank falls in (`2^i - 1`; bucket 0 reports 0).
//!
//! Every delta is also mirrored into the shared [`FlightRecorder`] ring,
//! so a post-mortem dump shows the metric activity interleaved with spans.

use std::collections::BTreeMap;
use std::sync::Arc;

use vmcommon::sync::Mutex;

use crate::flight::FlightRecorder;

/// A log2-bucket histogram.
#[derive(Clone, Debug)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    /// `buckets[i]` counts observations with bit-length `i` (0 → bucket 0).
    pub buckets: [u64; 33],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { count: 0, sum: 0, buckets: [0; 33] }
    }
}

impl Hist {
    fn bucket(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(32)
    }

    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile as the inclusive upper bound of the log2
    /// bucket holding the target rank: bucket 0 reports 0, bucket `i`
    /// reports `2^i - 1`. Deterministic, and an upper bound on the true
    /// percentile (never an underestimate).
    ///
    /// `p` is clamped to `[0, 100]`: `p = 0` reports the minimum bucket
    /// bound, `p = 100` (or anything above) the maximum. An empty histogram
    /// has no percentiles and reports `None`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        unreachable!("buckets sum to count")
    }
}

/// The metrics registry. Always-on: a counter bump is one short critical
/// section on a `BTreeMap`, far off every hot path that matters here.
pub struct Metrics {
    counters: Mutex<BTreeMap<(u64, String), u64>>,
    hists: Mutex<BTreeMap<(u64, String), Hist>>,
    /// Shared post-mortem ring; deltas are mirrored here.
    flight: Arc<FlightRecorder>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::with_flight(Arc::new(FlightRecorder::default()))
    }
}

impl Metrics {
    /// A registry mirroring its deltas into a shared flight ring (the
    /// [`crate::Obs`] constructors pass the tracer's ring).
    pub fn with_flight(flight: Arc<FlightRecorder>) -> Metrics {
        Metrics {
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            flight,
        }
    }

    pub fn incr(&self, pid: u64, name: &str, by: u64) {
        if by == 0 {
            return;
        }
        self.flight.record("ctr", pid, 0, 0.0, name, "metric", format!("+{by}"));
        *self.counters.lock().entry((pid, name.to_string())).or_insert(0) += by;
    }

    pub fn observe(&self, pid: u64, name: &str, value: u64) {
        self.flight.record("obs", pid, 0, 0.0, name, "metric", format!("={value}"));
        self.hists.lock().entry((pid, name.to_string())).or_default().observe(value);
    }

    pub fn counter(&self, pid: u64, name: &str) -> u64 {
        self.counters.lock().get(&(pid, name.to_string())).copied().unwrap_or(0)
    }

    pub fn hist(&self, pid: u64, name: &str) -> Option<Hist> {
        self.hists.lock().get(&(pid, name.to_string())).cloned()
    }

    /// All counters for one device, name-sorted.
    pub fn counters_for(&self, pid: u64) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .filter(|((p, _), _)| *p == pid)
            .map(|((_, name), v)| (name.clone(), *v))
            .collect()
    }

    /// Plain-text dump of every counter and histogram, for reports.
    /// Deterministically ordered: counters first, then histograms, each
    /// sorted by `(pid, name)` (the `BTreeMap` key order).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for ((pid, name), v) in self.counters.lock().iter() {
            out.push_str(&format!("dev{pid} {name} = {v}\n"));
        }
        for ((pid, name), h) in self.hists.lock().iter() {
            out.push_str(&format!(
                "dev{pid} {name}: count={} sum={} mean={:.1} p50={} p95={} p99={}\n",
                h.count,
                h.sum,
                h.mean(),
                h.percentile(50.0).unwrap_or(0),
                h.percentile(95.0).unwrap_or(0),
                h.percentile(99.0).unwrap_or(0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_per_device() {
        let m = Metrics::default();
        m.incr(0, "launches", 2);
        m.incr(1, "launches", 5);
        m.incr(0, "launches", 1);
        assert_eq!(m.counter(0, "launches"), 3);
        assert_eq!(m.counter(1, "launches"), 5);
        assert_eq!(m.counter(2, "launches"), 0);
        assert_eq!(m.counters_for(0), vec![("launches".to_string(), 3)]);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let m = Metrics::default();
        for v in [0u64, 1, 1, 7, 4096] {
            m.observe(0, "bytes", v);
        }
        let h = m.hist(0, "bytes").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 4105);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 2); // 1, 1
        assert_eq!(h.buckets[3], 1); // 7
        assert_eq!(h.buckets[13], 1); // 4096
        assert!(m.hist(0, "other").is_none());
    }

    #[test]
    fn percentiles_on_hand_built_buckets() {
        // 10 zeros (bucket 0), 80 values of bit-length 4 (bucket 4,
        // upper bound 15), 10 of bit-length 10 (bucket 10, bound 1023).
        let mut h = Hist { count: 100, ..Hist::default() };
        h.buckets[0] = 10;
        h.buckets[4] = 80;
        h.buckets[10] = 10;
        assert_eq!(h.percentile(5.0), Some(0)); // rank 5 → bucket 0
        assert_eq!(h.percentile(10.0), Some(0)); // rank 10, still bucket 0
        assert_eq!(h.percentile(50.0), Some(15)); // rank 50 → bucket 4
        assert_eq!(h.percentile(90.0), Some(15)); // rank 90, last of bucket 4
        assert_eq!(h.percentile(95.0), Some(1023)); // rank 95 → bucket 10
        assert_eq!(h.percentile(99.0), Some(1023));
        assert_eq!(h.percentile(100.0), Some(1023));
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Hist::default();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_single_observation() {
        let mut h = Hist::default();
        h.observe(4096); // bucket 13, upper bound 8191
                         // Every percentile of a single observation is that observation's
                         // bucket bound, including both clamp edges.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(8191));
        }
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let mut h = Hist { count: 100, ..Hist::default() };
        h.buckets[0] = 10;
        h.buckets[4] = 90;
        // p below 0 → minimum bucket bound; above 100 → maximum. Neither
        // may fall off the bucket scan (the old code returned u64::MAX for
        // p > 100).
        assert_eq!(h.percentile(-5.0), Some(0));
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(15));
        assert_eq!(h.percentile(250.0), Some(15));
        // NaN survives the clamp but the rank floor of 1 still applies, so
        // it degrades to the minimum instead of panicking or escaping.
        assert_eq!(h.percentile(f64::NAN), Some(0));
    }

    #[test]
    fn dump_order_is_deterministic() {
        let build = |order: &[(u64, &str, u64)]| {
            let m = Metrics::default();
            for &(pid, name, v) in order {
                m.incr(pid, name, v);
            }
            m.observe(1, "lat", 7);
            m.observe(0, "lat", 100);
            m.dump()
        };
        let a = build(&[(1, "b", 2), (0, "z", 1), (0, "a", 3)]);
        let b = build(&[(0, "a", 3), (0, "z", 1), (1, "b", 2)]);
        assert_eq!(a, b, "dump must not depend on insertion order");
        // Counters sorted by (pid, name), then histograms.
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(
            lines,
            vec![
                "dev0 a = 3",
                "dev0 z = 1",
                "dev1 b = 2",
                "dev0 lat: count=1 sum=100 mean=100.0 p50=127 p95=127 p99=127",
                "dev1 lat: count=1 sum=7 mean=7.0 p50=7 p95=7 p99=7",
            ]
        );
    }
}
