//! `devmod` — the device-module runtime layer of the OMPi reproduction.
//!
//! OMPi organizes device support as *modules* plugged into the host
//! runtime: cudadev is one such module, and the runtime itself only talks
//! to devices through the module interface (§4 of the paper). This crate
//! extracts that boundary:
//!
//! * [`DeviceModule`] — the module interface: lazy init, the mapped data
//!   environment (map/unmap/update), the three-phase kernel launch
//!   (module load → parameter translation → launch), the virtual device
//!   clock, and the broken-device latch used for host fallback.
//! * [`CudaDev`](cudadev::CudaDev) implements it (the GPU module);
//!   [`HostDevice`] is a shim over the `hostomp` runtime representing the
//!   OpenMP *initial device* — offload requests routed to it run the
//!   region's host-lowered body on the host thread team instead.
//! * [`DeviceRegistry`] — an indexed set of device modules with the
//!   `default-device-var` ICV: `device(n)` clauses and the `omp_*` device
//!   API route through it, giving N simulated devices with independent
//!   clocks, fault plans and broken-latch state.

use std::sync::Arc;

use cudadev::{
    BreakerState, CudadevError, DevClock, MapKind, MemPressure, PressureOutcome, TileParam,
};
use gpusim::LaunchStats;
use vmcommon::MemArena;

mod cuda;
mod hostdev;
mod registry;

pub use hostdev::HostDevice;
pub use registry::DeviceRegistry;

/// What kind of hardware a device module drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// A (simulated) CUDA GPU driven by the cudadev module.
    CudaGpu,
    /// The initial device: the host itself, driven by the hostomp runtime.
    Host,
}

/// The OMPi device-module interface.
///
/// One instance is one device. All operations are `&self`: modules are
/// internally synchronized so a registry can hand out shared references
/// from concurrent host threads.
pub trait DeviceModule: Send + Sync {
    fn kind(&self) -> DeviceKind;

    /// Is this device worth offloading to right now? Performs lazy
    /// initialization on first call; a device whose init fails (or that
    /// has latched broken) answers `false` and the region runs on the
    /// host instead.
    fn is_available(&self) -> bool;

    /// Has a terminal failure latched this device broken?
    fn is_broken(&self) -> bool;

    /// Health state of the device's recovery circuit breaker. Modules
    /// without a recovery manager report the latch directly: broken maps
    /// to `Latched`, everything else to `Closed`.
    fn breaker_state(&self) -> BreakerState {
        if self.is_broken() {
            BreakerState::Latched
        } else {
            BreakerState::Closed
        }
    }

    /// Latch the device broken; all further operations fail fast.
    fn mark_broken(&self);

    /// Enter a mapping for `[host_addr, host_addr + len)`; returns the
    /// device address.
    fn map(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        kind: MapKind,
    ) -> Result<u64, CudadevError>;

    /// Exit a mapping; copies back and frees when the refcount drops to 0.
    fn unmap(&self, host_mem: &MemArena, host_addr: u64, kind: MapKind)
        -> Result<(), CudadevError>;

    /// `target update to(...)` / `from(...)`: refresh one side.
    fn update(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        to_device: bool,
    ) -> Result<(), CudadevError>;

    /// Parameter preparation: the device address for a mapped host address.
    /// `None` for unmapped addresses *and* for pending mappings (entered
    /// under memory pressure without a device buffer).
    fn dev_addr(&self, host_addr: u64) -> Option<u64>;

    /// Does any of these host addresses have a *pending* mapping — entered
    /// into the data environment under memory pressure, with the host copy
    /// still authoritative? Such regions must go through
    /// [`DeviceModule::offload_pressured`].
    fn has_pending_maps(&self, _host_addrs: &[u64]) -> bool {
        false
    }

    /// Mark every live device buffer stale because a host fallback just
    /// rewrote the host copies under an enclosing `target data`.
    fn mark_all_host_dirty(&self) {}

    /// Drop every live mapping without copy-back, freeing the device
    /// buffers; returns how many mappings were released. Used when a guest
    /// job is aborted by a resource limit: its buffers will never be read
    /// again, but the device is healthy and must stay usable.
    fn release_mappings(&self) -> usize {
        0
    }

    /// Re-upload stale (host-dirty) device buffers among `host_addrs`
    /// before a launch reads them.
    fn refresh_args(&self, _host_mem: &MemArena, _host_addrs: &[u64]) -> Result<(), CudadevError> {
        Ok(())
    }

    /// Run an offload whose data environment has pending mappings by
    /// tiling the iteration space (memory-pressure rung 3), or decline so
    /// the runtime falls back to the host (rung 4). The default declines:
    /// only devices with a real memory governor can tile.
    #[allow(clippy::too_many_arguments)]
    fn offload_pressured(
        &self,
        _host_mem: &MemArena,
        _module: &str,
        _kernel: &str,
        _tileable: bool,
        _total: u64,
        _grid: [u32; 3],
        _block: [u32; 3],
        _params: &[TileParam],
    ) -> Result<PressureOutcome, CudadevError> {
        Ok(PressureOutcome::Declined)
    }

    /// Memory-pressure snapshot for admission control: how full is this
    /// device's arena, and how often has its governor had to degrade?
    /// `None` for modules without a memory governor (the host shim) — an
    /// admission controller treats those as "no signal", not "no
    /// pressure".
    fn mem_pressure(&self) -> Option<MemPressure> {
        None
    }

    /// Loading phase: find and load the kernel module `name`.
    fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError>;

    /// Launch phase (`cuLaunchKernel`). `host_mem` backs the mapped data
    /// environment; a module with a recovery manager replays device
    /// buffers from it when the launch dies terminally.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &self,
        host_mem: &MemArena,
        module: &str,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        params: Vec<u64>,
    ) -> Result<LaunchStats, CudadevError>;

    /// A target region on this device begins (async command streams give
    /// the region its own stream; other modules need not care).
    fn stream_region_begin(&self) {}

    /// The current target region carries `nowait`: its queued async work
    /// may outlive region end.
    fn stream_mark_nowait(&self) {}

    /// A target region on this device ends (a synchronization point unless
    /// the region was marked `nowait`).
    fn stream_region_end(&self) {}

    /// Drain all queued async work (`taskwait`).
    fn stream_sync(&self) {}

    /// Snapshot of the accumulated virtual device time.
    fn clock(&self) -> DevClock;

    /// Reset the virtual clock (before a measured run).
    fn reset_clock(&self);

    /// Account a memcpy performed outside the mapped data environment
    /// (the CUDA-dialect `cudaMemcpy` baseline path).
    fn record_memcpy(&self, seconds: f64, h2d_bytes: u64, d2h_bytes: u64);

    /// The raw simulator device, when this module drives one (the CUDA
    /// baseline path needs direct `cuMemAlloc`/`cuMemcpy` access).
    fn raw_device(&self) -> Option<Arc<gpusim::Device>>;

    /// Captured device-side printf output (empty if the device never came
    /// up or does not capture).
    fn take_printf_output(&self) -> String;
}
