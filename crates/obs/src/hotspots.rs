//! Guest-source "hot lines" report.
//!
//! The VM attributes its instruction/dispatch counters to guest source
//! lines through the compiler's pc→line tables; this module renders the
//! result as a per-function table: instructions per line, share of the
//! function's total, cumulative share, and the per-category breakdown
//! (`mem`/`idx`/`alu`/`ctrl`/`call`/`misc`). The counts are deterministic
//! — the same program and inputs always produce the same table — so tests
//! can assert on attribution shares exactly.

/// Dispatch-category labels, matching `minic`'s `OP_CATS` order (this
/// crate cannot depend on `minic`; the runner's tests cross-check them).
pub const CAT_LABELS: [&str; 6] = ["mem", "idx", "alu", "ctrl", "call", "misc"];

/// VM dispatch attributed to one guest source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotLine {
    /// Function name (one table section per function).
    pub func: String,
    /// 1-based source line (0 = no line info).
    pub line: u32,
    /// Instructions dispatched on this line.
    pub instructions: u64,
    /// Per-category counts, indexed like [`CAT_LABELS`].
    pub dispatch: [u64; 6],
}

/// Render the hotspot table. Functions are ordered by total instructions
/// (descending), lines within a function likewise; ties break on name and
/// line number so the output is fully deterministic.
pub fn render_hotspots(title: &str, rows: &[HotLine]) -> String {
    let mut out = String::new();
    let grand: u64 = rows.iter().map(|r| r.instructions).sum();
    out.push_str(&format!("hotspots: {title} ({grand} instructions)\n"));
    if rows.is_empty() {
        out.push_str("  (no attribution recorded — was OMPI_HOTSPOTS set?)\n");
        return out;
    }

    // Group rows per function, keeping per-function totals for ordering.
    let mut funcs: Vec<(String, u64, Vec<&HotLine>)> = Vec::new();
    for r in rows {
        match funcs.iter_mut().find(|(name, _, _)| *name == r.func) {
            Some((_, total, lines)) => {
                *total += r.instructions;
                lines.push(r);
            }
            None => funcs.push((r.func.clone(), r.instructions, vec![r])),
        }
    }
    funcs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for (name, total, mut lines) in funcs {
        lines.sort_by(|a, b| b.instructions.cmp(&a.instructions).then(a.line.cmp(&b.line)));
        out.push_str(&format!("\n  {name} — {total} instructions\n"));
        out.push_str(&format!(
            "  {:>5} {:>12} {:>6} {:>6}  {}\n",
            "line",
            "instrs",
            "share",
            "cum",
            CAT_LABELS.map(|c| format!("{c:>8}")).join(" ")
        ));
        let mut cum = 0u64;
        for l in lines {
            cum += l.instructions;
            let share = 100.0 * l.instructions as f64 / total.max(1) as f64;
            let cumsh = 100.0 * cum as f64 / total.max(1) as f64;
            let line = if l.line == 0 { "?".to_string() } else { l.line.to_string() };
            out.push_str(&format!(
                "  {:>5} {:>12} {:>5.1}% {:>5.1}%  {}\n",
                line,
                l.instructions,
                share,
                cumsh,
                l.dispatch.map(|d| format!("{d:>8}")).join(" ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hl(func: &str, line: u32, instrs: u64) -> HotLine {
        let mut dispatch = [0u64; 6];
        dispatch[2] = instrs; // all alu, for simplicity
        HotLine { func: func.to_string(), line, instructions: instrs, dispatch }
    }

    #[test]
    fn renders_functions_and_lines_by_weight() {
        let rows =
            vec![hl("helper", 3, 10), hl("run", 12, 900), hl("run", 8, 50), hl("run", 13, 50)];
        let s = render_hotspots("gemm", &rows);
        assert!(s.starts_with("hotspots: gemm (1010 instructions)"));
        // `run` (1000) comes before `helper` (10).
        let run_at = s.find("run —").unwrap();
        let helper_at = s.find("helper —").unwrap();
        assert!(run_at < helper_at);
        // Within `run`, line 12 leads; the tie between 8 and 13 breaks on
        // line number.
        let l12 = s.find("\n     12").unwrap();
        let l8 = s.find("\n      8").unwrap();
        let l13 = s.find("\n     13").unwrap();
        assert!(l12 < l8 && l8 < l13);
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn empty_profile_renders_hint() {
        let s = render_hotspots("gemm", &[]);
        assert!(s.contains("no attribution recorded"));
    }
}
