//! Tokens for the mini-C dialect (C subset + OpenMP pragmas + CUDA
//! extensions).

/// Source position (1-based line/column) for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    Ident(String),
    IntLit(i64),
    FloatLit(f64, /*f32 suffix*/ bool),
    StrLit(String),
    CharLit(i64),
    /// `#pragma …` captured as a raw logical line (without the leading `#`).
    Pragma(String),

    // Keywords.
    KwVoid,
    KwChar,
    KwInt,
    KwLong,
    KwFloat,
    KwDouble,
    KwUnsigned,
    KwSigned,
    KwConst,
    KwStatic,
    KwExtern,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwStruct,
    // CUDA qualifiers.
    KwGlobal,   // __global__
    KwDevice,   // __device__
    KwShared,   // __shared__
    KwHost,     // __host__
    KwRestrict, // __restrict__ / restrict (ignored)

    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    /// `<<<` (CUDA kernel launch open).
    TripleLt,
    /// `>>>` (CUDA kernel launch close).
    TripleGt,

    Eof,
}

/// A token with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

impl Tok {
    /// Keyword lookup for an identifier-shaped word.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word {
            "void" => Tok::KwVoid,
            "char" => Tok::KwChar,
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "float" => Tok::KwFloat,
            "double" => Tok::KwDouble,
            "unsigned" => Tok::KwUnsigned,
            "signed" => Tok::KwSigned,
            "const" => Tok::KwConst,
            "static" => Tok::KwStatic,
            "extern" => Tok::KwExtern,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "for" => Tok::KwFor,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "sizeof" => Tok::KwSizeof,
            "struct" => Tok::KwStruct,
            "__global__" => Tok::KwGlobal,
            "__device__" => Tok::KwDevice,
            "__shared__" => Tok::KwShared,
            "__host__" => Tok::KwHost,
            "__restrict__" | "restrict" => Tok::KwRestrict,
            _ => return None,
        })
    }
}
