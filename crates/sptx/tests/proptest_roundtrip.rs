//! Property tests: random SPTX modules survive both artifact formats —
//! `.sptx` text (the PTX stand-in) and `.cubin` binary — bit-exactly.

use proptest::prelude::*;
use sptx::*;

fn arb_scalar() -> impl Strategy<Value = ScalarTy> {
    prop_oneof![
        Just(ScalarTy::I32),
        Just(ScalarTy::I64),
        Just(ScalarTy::F32),
        Just(ScalarTy::F64)
    ]
}

fn arb_memty() -> impl Strategy<Value = MemTy> {
    prop_oneof![
        Just(MemTy::B8),
        Just(MemTy::B32),
        Just(MemTy::B64),
        Just(MemTy::F32),
        Just(MemTy::F64)
    ]
}

fn arb_operand(nregs: u32) -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0..nregs).prop_map(|r| Operand::Reg(Reg(r))),
        (-1_000_000i64..1_000_000).prop_map(Operand::ImmI),
        (any::<f32>().prop_filter("finite", |v| v.is_finite()))
            .prop_map(|v| Operand::ImmF(v as f64)),
        Just(Operand::Special(SpecialReg::TidX)),
        Just(Operand::Special(SpecialReg::CtaidY)),
        Just(Operand::LocalBase),
        Just(Operand::SharedBase),
    ]
}

fn arb_int_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::SetLt),
        Just(BinOp::SetEq),
        Just(BinOp::SetNe),
    ]
}

const NREGS: u32 = 16;

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_scalar(), arb_int_binop(), 0..NREGS, arb_operand(NREGS), arb_operand(NREGS))
            .prop_filter("no bitwise on float", |(ty, op, ..)| {
                !ty.is_float()
                    || !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
            })
            .prop_map(|(ty, op, d, a, b)| Inst::Bin { ty, op, dst: Reg(d), a, b }),
        (0..NREGS, arb_operand(NREGS)).prop_map(|(d, src)| Inst::Mov { dst: Reg(d), src }),
        (arb_memty(), 0..NREGS, arb_operand(NREGS), -64i64..64)
            .prop_map(|(ty, d, addr, offset)| Inst::Ld { ty, dst: Reg(d), addr, offset }),
        (arb_memty(), arb_operand(NREGS), arb_operand(NREGS), -64i64..64)
            .prop_map(|(ty, src, addr, offset)| Inst::St { ty, src, addr, offset }),
        (0..16i64, prop_oneof![Just(None), (1i64..8).prop_map(|w| Some(Operand::ImmI(w * 32)))])
            .prop_map(|(id, count)| Inst::BarSync { id: Operand::ImmI(id), count }),
        (0..NREGS, arb_operand(NREGS), arb_operand(NREGS), arb_operand(NREGS)).prop_map(
            |(d, addr, e, n)| Inst::AtomCas { dst: Reg(d), addr, expected: e, new: n }
        ),
        proptest::collection::vec(arb_operand(NREGS), 0..4).prop_map(|args| Inst::Intrinsic {
            name: "cudadev_barrier".into(),
            dst: None,
            args,
            sargs: vec![]
        }),
        (proptest::collection::vec(arb_operand(NREGS), 0..3), any::<bool>()).prop_map(
            |(args, with_fmt)| Inst::Intrinsic {
                name: "printf".into(),
                dst: Some(Reg(0)),
                args,
                sargs: if with_fmt {
                    vec!["v=%d \"quoted\" \\ \n end".into()]
                } else {
                    vec![]
                },
            }
        ),
        Just(Inst::Ret { val: None }),
    ]
}

fn arb_nodes(depth: u32) -> BoxedStrategy<Vec<Node>> {
    let inst = arb_inst().prop_map(Node::Inst);
    if depth == 0 {
        proptest::collection::vec(inst, 0..5).boxed()
    } else {
        let child = arb_nodes(depth - 1);
        let node = prop_oneof![
            arb_inst().prop_map(Node::Inst),
            (arb_operand(NREGS), child.clone(), child.clone())
                .prop_map(|(cond, then_b, else_b)| Node::If { cond, then_b, else_b }),
            child.prop_map(|body| {
                // Loops must be escapable for the verifier's sanity — give
                // them a break.
                let mut b = body;
                b.push(Node::Break);
                Node::Loop { body: b }
            }),
        ];
        proptest::collection::vec(node, 0..5).boxed()
    }
}

fn arb_function() -> impl Strategy<Value = Function> {
    (proptest::collection::vec(arb_scalar(), 0..4), arb_nodes(2), any::<bool>()).prop_map(
        |(ptys, mut body, is_kernel)| {
            body.push(Node::Inst(Inst::Ret { val: None }));
            Function {
                name: "k".into(),
                is_kernel,
                params: ptys
                    .into_iter()
                    .enumerate()
                    .map(|(i, ty)| ParamDecl { name: format!("p{i}"), ty })
                    .collect(),
                num_regs: NREGS,
                local_size: 32,
                shared_size: 16,
                body,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_roundtrip(f in arb_function()) {
        let m = Module {
            name: "prop".into(),
            arch: "sm_53".into(),
            functions: vec![f],
            device_lib_linked: true,
        };
        let text = sptx::text::print_module(&m);
        let back = sptx::text::parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&m, &back, "text roundtrip mismatch:\n{}", text);
    }

    #[test]
    fn cubin_roundtrip(f in arb_function()) {
        let m = Module {
            name: "prop".into(),
            arch: "sm_53".into(),
            functions: vec![f],
            device_lib_linked: false,
        };
        let bin = sptx::cubin::encode(&m);
        let back = sptx::cubin::decode(&bin).unwrap();
        prop_assert_eq!(m, back);
    }

    /// Decoding never panics on arbitrary bytes (fuzz-ish).
    #[test]
    fn cubin_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = sptx::cubin::decode(&bytes);
    }

    /// The assembler never panics on arbitrary text.
    #[test]
    fn asm_never_panics(text in "[ -~\n]{0,400}") {
        let _ = sptx::text::parse_module(&text);
    }
}
