//! The SPTX instruction set and module structure.

/// Scalar value types computed in registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    I32,
    I64,
    F32,
    F64,
}

impl ScalarTy {
    pub fn name(&self) -> &'static str {
        match self {
            ScalarTy::I32 => "i32",
            ScalarTy::I64 => "i64",
            ScalarTy::F32 => "f32",
            ScalarTy::F64 => "f64",
        }
    }

    pub fn from_name(s: &str) -> Option<ScalarTy> {
        Some(match s {
            "i32" => ScalarTy::I32,
            "i64" => ScalarTy::I64,
            "f32" => ScalarTy::F32,
            "f64" => ScalarTy::F64,
            _ => return None,
        })
    }

    pub fn is_float(&self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }
}

/// Memory access widths for loads/stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemTy {
    /// 8-bit, zero-extended on load.
    B8,
    B32,
    B64,
    F32,
    F64,
}

impl MemTy {
    pub fn size(&self) -> u64 {
        match self {
            MemTy::B8 => 1,
            MemTy::B32 | MemTy::F32 => 4,
            MemTy::B64 | MemTy::F64 => 8,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            MemTy::B8 => "b8",
            MemTy::B32 => "b32",
            MemTy::B64 => "b64",
            MemTy::F32 => "f32",
            MemTy::F64 => "f64",
        }
    }

    pub fn from_name(s: &str) -> Option<MemTy> {
        Some(match s {
            "b8" => MemTy::B8,
            "b32" => MemTy::B32,
            "b64" => MemTy::B64,
            "f32" => MemTy::F32,
            "f64" => MemTy::F64,
            _ => return None,
        })
    }
}

/// A virtual register index (per-function, per-thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u32);

/// Special (read-only) hardware registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    TidX,
    TidY,
    TidZ,
    NtidX,
    NtidY,
    NtidZ,
    CtaidX,
    CtaidY,
    CtaidZ,
    NctaidX,
    NctaidY,
    NctaidZ,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the block.
    WarpId,
}

impl SpecialReg {
    pub fn name(&self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::NtidX => "%ntid.x",
            SpecialReg::NtidY => "%ntid.y",
            SpecialReg::NtidZ => "%ntid.z",
            SpecialReg::CtaidX => "%ctaid.x",
            SpecialReg::CtaidY => "%ctaid.y",
            SpecialReg::CtaidZ => "%ctaid.z",
            SpecialReg::NctaidX => "%nctaid.x",
            SpecialReg::NctaidY => "%nctaid.y",
            SpecialReg::NctaidZ => "%nctaid.z",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        }
    }

    pub fn from_name(s: &str) -> Option<SpecialReg> {
        Some(match s {
            "%tid.x" => SpecialReg::TidX,
            "%tid.y" => SpecialReg::TidY,
            "%tid.z" => SpecialReg::TidZ,
            "%ntid.x" => SpecialReg::NtidX,
            "%ntid.y" => SpecialReg::NtidY,
            "%ntid.z" => SpecialReg::NtidZ,
            "%ctaid.x" => SpecialReg::CtaidX,
            "%ctaid.y" => SpecialReg::CtaidY,
            "%ctaid.z" => SpecialReg::CtaidZ,
            "%nctaid.x" => SpecialReg::NctaidX,
            "%nctaid.y" => SpecialReg::NctaidY,
            "%nctaid.z" => SpecialReg::NctaidZ,
            "%laneid" => SpecialReg::LaneId,
            "%warpid" => SpecialReg::WarpId,
            _ => return None,
        })
    }
}

/// An instruction operand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    Reg(Reg),
    /// Integer immediate (bit pattern for integer types).
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
    Special(SpecialReg),
    /// Base address of this thread's `.local` window (address-taken locals).
    LocalBase,
    /// Base address of the function's static `.shared` allocation.
    SharedBase,
}

/// Binary ALU operations (semantics depend on the instruction's type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    // Comparisons write 0/1 into an i32 register.
    SetLt,
    SetLe,
    SetGt,
    SetGe,
    SetEq,
    SetNe,
}

impl BinOp {
    pub fn name(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::SetLt => "setp.lt",
            BinOp::SetLe => "setp.le",
            BinOp::SetGt => "setp.gt",
            BinOp::SetGe => "setp.ge",
            BinOp::SetEq => "setp.eq",
            BinOp::SetNe => "setp.ne",
        }
    }

    pub fn from_name(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "setp.lt" => BinOp::SetLt,
            "setp.le" => BinOp::SetLe,
            "setp.gt" => BinOp::SetGt,
            "setp.ge" => BinOp::SetGe,
            "setp.eq" => BinOp::SetEq,
            "setp.ne" => BinOp::SetNe,
            _ => return None,
        })
    }

    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::SetLt | BinOp::SetLe | BinOp::SetGt | BinOp::SetGe | BinOp::SetEq | BinOp::SetNe
        )
    }
}

/// Unary ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    /// Logical not (i32 0/1).
    Not,
    /// Bitwise not.
    BitNot,
    Sqrt,
    Abs,
    Floor,
    Ceil,
    Exp,
    Log,
    Sin,
    Cos,
}

impl UnOp {
    pub fn name(&self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::BitNot => "bnot",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
            UnOp::Floor => "floor",
            UnOp::Ceil => "ceil",
            UnOp::Exp => "ex2",
            UnOp::Log => "lg2",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
        }
    }

    pub fn from_name(s: &str) -> Option<UnOp> {
        Some(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "bnot" => UnOp::BitNot,
            "sqrt" => UnOp::Sqrt,
            "abs" => UnOp::Abs,
            "floor" => UnOp::Floor,
            "ceil" => UnOp::Ceil,
            "ex2" => UnOp::Exp,
            "lg2" => UnOp::Log,
            "sin" => UnOp::Sin,
            "cos" => UnOp::Cos,
            _ => return None,
        })
    }
}

/// Conversion endpoint types (`cvt.to.from`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CvtTy {
    /// Sign-extend the low 8 bits (char loads).
    S8,
    I32,
    I64,
    F32,
    F64,
}

impl CvtTy {
    pub fn name(&self) -> &'static str {
        match self {
            CvtTy::S8 => "s8",
            CvtTy::I32 => "i32",
            CvtTy::I64 => "i64",
            CvtTy::F32 => "f32",
            CvtTy::F64 => "f64",
        }
    }

    pub fn from_name(s: &str) -> Option<CvtTy> {
        Some(match s {
            "s8" => CvtTy::S8,
            "i32" => CvtTy::I32,
            "i64" => CvtTy::I64,
            "f32" => CvtTy::F32,
            "f64" => CvtTy::F64,
            _ => return None,
        })
    }
}

/// Atomic read-modify-write kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// 32-bit compare-and-swap (the paper's lock primitive).
    CasB32,
    AddI32,
    AddI64,
    AddF32,
    AddF64,
    ExchB32,
    MinI32,
    MaxI32,
}

impl AtomOp {
    pub fn name(&self) -> &'static str {
        match self {
            AtomOp::CasB32 => "atom.cas.b32",
            AtomOp::AddI32 => "atom.add.i32",
            AtomOp::AddI64 => "atom.add.i64",
            AtomOp::AddF32 => "atom.add.f32",
            AtomOp::AddF64 => "atom.add.f64",
            AtomOp::ExchB32 => "atom.exch.b32",
            AtomOp::MinI32 => "atom.min.i32",
            AtomOp::MaxI32 => "atom.max.i32",
        }
    }

    pub fn from_name(s: &str) -> Option<AtomOp> {
        Some(match s {
            "atom.cas.b32" => AtomOp::CasB32,
            "atom.add.i32" => AtomOp::AddI32,
            "atom.add.i64" => AtomOp::AddI64,
            "atom.add.f32" => AtomOp::AddF32,
            "atom.add.f64" => AtomOp::AddF64,
            "atom.exch.b32" => AtomOp::ExchB32,
            "atom.min.i32" => AtomOp::MinI32,
            "atom.max.i32" => AtomOp::MaxI32,
            _ => return None,
        })
    }
}

/// A straight-line instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    Bin {
        ty: ScalarTy,
        op: BinOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    Un {
        ty: ScalarTy,
        op: UnOp,
        dst: Reg,
        a: Operand,
    },
    Mov {
        dst: Reg,
        src: Operand,
    },
    Cvt {
        to: CvtTy,
        from: CvtTy,
        dst: Reg,
        src: Operand,
    },
    /// `dst = *(addr + offset)`; the address space is taken from the tagged
    /// pointer (generic addressing).
    Ld {
        ty: MemTy,
        dst: Reg,
        addr: Operand,
        offset: i64,
    },
    /// `*(addr + offset) = src`.
    St {
        ty: MemTy,
        src: Operand,
        addr: Operand,
        offset: i64,
    },
    /// `dst = CAS(addr, expected, new)` — returns the old value.
    AtomCas {
        dst: Reg,
        addr: Operand,
        expected: Operand,
        new: Operand,
    },
    Atom {
        op: AtomOp,
        dst: Reg,
        addr: Operand,
        val: Operand,
    },
    /// `bar.sync id, count` — named barrier. `count` is in *threads* and
    /// must be a multiple of the warp size; `None` means the whole block.
    BarSync {
        id: Operand,
        count: Option<Operand>,
    },
    /// Device-function call by module-local index.
    Call {
        func: u32,
        dst: Option<Reg>,
        args: Vec<Operand>,
    },
    /// Runtime-library call by name (the cudadev device library, math,
    /// printf, …). Resolved when the module is linked. `sargs` carries
    /// string immediates (printf format strings).
    Intrinsic {
        name: String,
        dst: Option<Reg>,
        args: Vec<Operand>,
        sargs: Vec<String>,
    },
    /// Return (kernels return nothing; device functions may return a value).
    Ret {
        val: Option<Operand>,
    },
    /// Abort the kernel with a diagnostic.
    Trap {
        msg: String,
    },
}

/// A structured control-flow node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    Inst(Inst),
    /// Lanes where `cond != 0` run `then_b`, the rest run `else_b`; all
    /// reconverge after.
    If {
        cond: Operand,
        then_b: Vec<Node>,
        else_b: Vec<Node>,
    },
    /// Runs until every lane has issued `break`/`ret`.
    Loop {
        body: Vec<Node>,
    },
    Break,
    Continue,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    pub name: String,
    pub ty: ScalarTy,
}

/// A compiled function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    pub name: String,
    /// Kernel (`__global__`) vs device function.
    pub is_kernel: bool,
    pub params: Vec<ParamDecl>,
    /// Number of virtual registers.
    pub num_regs: u32,
    /// Bytes of per-thread `.local` memory (address-taken locals, arrays).
    pub local_size: u64,
    /// Bytes of static `.shared` memory used by this function.
    pub shared_size: u64,
    pub body: Vec<Node>,
}

/// A compiled module — the contents of one kernel file.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Module {
    pub name: String,
    /// Target architecture tag (always `sm_53` for the Nano's Maxwell).
    pub arch: String,
    pub functions: Vec<Function>,
    /// Whether the device runtime library has been linked in (cubin mode
    /// links at compile time; PTX mode links during JIT).
    pub device_lib_linked: bool,
}

impl Module {
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions.iter().position(|f| f.name == name).map(|i| i as u32)
    }
}

/// Walk all instructions in a node list (for verification / analysis).
pub fn visit_insts<'a>(nodes: &'a [Node], f: &mut dyn FnMut(&'a Inst)) {
    for n in nodes {
        match n {
            Node::Inst(i) => f(i),
            Node::If { then_b, else_b, .. } => {
                visit_insts(then_b, f);
                visit_insts(else_b, f);
            }
            Node::Loop { body } => visit_insts(body, f),
            Node::Break | Node::Continue => {}
        }
    }
}
