//! Quickstart: the paper's Fig. 1 SAXPY, compiled by the OMPi reproduction
//! and executed on the simulated Jetson Nano GPU.
//!
//!     cargo run --release --example quickstart

use ompi_nano::{Ompicc, Runner, RunnerConfig};

const SRC: &str = r#"
void saxpy_device(float a, float *x, float *y, int size)
{
    #pragma omp target map(to: a, size, x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main() {
    int n = 1024;
    float x[1024];
    float y[1024];
    for (int i = 0; i < n; i++) { x[i] = (float) i; y[i] = 1.0f; }
    saxpy_device(2.0f, x, y, n);
    printf("y[0] = %f, y[1] = %f, y[1023] = %f\n", y[0], y[1], y[1023]);
    return 0;
}
"#;

fn main() {
    let work = std::env::temp_dir().join("ompi-example-quickstart");
    println!("== compiling with ompicc (cubin mode) ==");
    let app = Ompicc::new(&work).compile(SRC).expect("ompicc");
    for k in &app.kernels {
        println!(
            "  kernel file {}.cu → {} (master/worker: {})",
            k.module_name, k.kernel_fn, k.master_worker
        );
    }
    println!("== running on the simulated Jetson Nano ==");
    let runner = Runner::new(&app, &RunnerConfig::default()).expect("runner");
    runner.run_main().expect("run");
    print!("{}", runner.take_output());
    let clk = runner.dev_clock();
    println!(
        "device time: {:.6}s (kernels {:.6}s + memcpy {:.6}s over {} launch(es))",
        clk.total_s(),
        clk.kernel_s,
        clk.memcpy_s(),
        clk.launches
    );
}
