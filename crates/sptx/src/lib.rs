//! `sptx` — Structured PTX, the kernel IR of the reproduction.
//!
//! The paper's compilation chain (§3.3) has nvcc translate generated CUDA C
//! kernels either to **PTX** (JIT-compiled at first launch, with a disk
//! cache) or to **cubin** (fully compiled ahead of time). We reproduce both
//! artifact kinds over a single IR:
//!
//! * [`text`] — the `.sptx` assembly format (the "PTX" artifact, readable
//!   and architecture-agnostic), with assembler and disassembler;
//! * [`cubin`] — the binary container (the "cubin" artifact), with a
//!   hand-rolled serializer/deserializer;
//! * [`ir`] — the IR itself: typed virtual registers, loads/stores over
//!   tagged address spaces, atomics, `bar.sync` named barriers, special
//!   registers (`%tid`, `%ctaid`, …) and *structured* control flow
//!   (`if`/`loop`/`break`/`continue`/`ret`), which is what lets the SIMT
//!   interpreter track divergence with explicit lane masks instead of a
//!   reconvergence stack;
//! * [`verify`] — a module verifier run after assembly/deserialization.

pub mod builder;
pub mod cubin;
pub mod ir;
pub mod text;
pub mod verify;

pub use builder::FnBuilder;
pub use ir::*;
pub use verify::verify_module;
