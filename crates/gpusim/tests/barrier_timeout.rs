//! The host-side barrier deadlock timeout is configurable via
//! `OMPI_BARRIER_TIMEOUT_MS`, so a deadlocked guest fails the suite in
//! ~200 ms instead of stalling for the 30 s production default.
//!
//! This lives in its own integration-test binary (own process): the
//! timeout is latched on first use, so the variable must be set before any
//! barrier wait in the process.

use std::sync::Arc;
use std::time::Instant;

use gpusim::barrier::{barrier_host_timeout, NamedBarrier};

#[test]
fn deadlocked_barrier_times_out_quickly() {
    std::env::set_var("OMPI_BARRIER_TIMEOUT_MS", "200");
    assert_eq!(barrier_host_timeout().as_millis(), 200);

    // One warp arrives at a barrier expecting two warps (64 threads); the
    // second warp never comes — a guest deadlock.
    let b = Arc::new(NamedBarrier::new(3));
    let start = Instant::now();
    let mut cycles = 0u64;
    let err = b.sync(64, &mut cycles).expect_err("lone warp must time out");
    let waited = start.elapsed();

    assert_eq!(err.barrier, 3);
    assert_eq!(err.expected_threads, 64);
    assert_eq!(err.arrived_threads, 32);
    assert!(waited.as_millis() >= 180, "returned before the timeout: {waited:?}");
    assert!(
        waited.as_secs() < 5,
        "timeout not shortened by OMPI_BARRIER_TIMEOUT_MS: waited {waited:?}"
    );

    // The failed arrival was undone, so a matching second warp can still
    // complete the barrier afterwards.
    let b2 = b.clone();
    let t = std::thread::spawn(move || {
        let mut c = 0u64;
        b2.sync(64, &mut c).map(|_| c)
    });
    let mut c = 0u64;
    b.sync(64, &mut c).expect("retry after timeout must succeed");
    t.join().unwrap().expect("peer warp must be released");
}
