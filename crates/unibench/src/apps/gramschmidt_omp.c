/* gramschmidt (solver): modified Gram-Schmidt QR — OpenMP offload.
 * The sequential k loop launches three target regions per iteration,
 * sharing buffers through an enclosing target data region. */
void run(int n, float *a, float *r, float *q)
{
    #pragma omp target data map(tofrom: a[0:n*n]) map(from: r[0:n*n], q[0:n*n])
    {
        for (int k = 0; k < n; k++) {
            float nrm = 0.0f;
            #pragma omp target teams distribute parallel for num_threads(256) \
                    map(to: a[0:n*n]) reduction(+: nrm)
            for (int i = 0; i < n; i++)
                nrm += a[i * n + k] * a[i * n + k];
            float rkk = sqrtf(nrm);
            #pragma omp target teams distribute parallel for num_threads(256) \
                    map(tofrom: a[0:n*n], q[0:n*n], r[0:n*n])
            for (int i = 0; i < n; i++) {
                q[i * n + k] = a[i * n + k] / rkk;
                if (i == 0)
                    r[k * n + k] = rkk;
            }
            #pragma omp target teams distribute parallel for num_threads(256) \
                    map(tofrom: a[0:n*n], q[0:n*n], r[0:n*n])
            for (int j = k + 1; j < n; j++) {
                float s = 0.0f;
                for (int i = 0; i < n; i++)
                    s += q[i * n + k] * a[i * n + j];
                r[k * n + j] = s;
                for (int i = 0; i < n; i++)
                    a[i * n + j] = a[i * n + j] - q[i * n + k] * s;
            }
        }
    }
}
