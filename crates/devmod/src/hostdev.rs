//! The host shim: the OpenMP *initial device* as a [`DeviceModule`].
//!
//! OMPi's general-purpose transformation always emits a host-lowered copy
//! of every target region as the fallback body; routing a region to the
//! initial device simply means answering "not available for offload" so
//! the generated guard takes that fallback path, which executes on the
//! host thread team through the wrapped `hostomp` runtime. Data-environment
//! operations are no-ops over unified (host) memory, and kernel launches
//! are rejected outright — the initial device has no kernel binaries.

use std::sync::Arc;

use cudadev::{CudadevError, DevClock, MapKind};
use gpusim::{ExecError, LaunchStats};
use hostomp::HostRt;
use vmcommon::sync::Mutex;
use vmcommon::MemArena;

use crate::{DeviceKind, DeviceModule};

/// The initial device: a shim over the `hostomp` runtime.
pub struct HostDevice {
    rt: Arc<HostRt>,
    clock: Mutex<DevClock>,
}

impl HostDevice {
    pub fn new() -> HostDevice {
        HostDevice { rt: Arc::new(HostRt::new()), clock: Mutex::new(DevClock::default()) }
    }

    /// The host OpenMP runtime this shim wraps; the runner's `ort_*` hooks
    /// (parallel regions, worksharing, critical sections) execute on it.
    pub fn rt(&self) -> &Arc<HostRt> {
        &self.rt
    }

    /// Account one host-fallback execution of a target region. Fallback
    /// bodies run on real host threads, so the wall-clock duration is
    /// recorded as the host device's simulated fallback time (documented
    /// substitution — the host has no cycle model).
    pub fn record_fallback(&self, seconds: f64) {
        let mut clk = self.clock.lock();
        clk.fallback_s += seconds;
        clk.fallbacks += 1;
    }
}

impl Default for HostDevice {
    fn default() -> Self {
        HostDevice::new()
    }
}

impl DeviceModule for HostDevice {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Host
    }

    /// Never available *for offload*: the generated `__dev_ok` guard sees 0
    /// and runs the region's host-lowered body instead.
    fn is_available(&self) -> bool {
        false
    }

    fn is_broken(&self) -> bool {
        false
    }

    /// The initial device cannot be lost; fallback must always have a
    /// place to land.
    fn mark_broken(&self) {}

    /// Host memory is unified: the "device" address of a mapping is the
    /// host address itself and no bytes move.
    fn map(
        &self,
        _host_mem: &MemArena,
        host_addr: u64,
        _len: u64,
        _kind: MapKind,
    ) -> Result<u64, CudadevError> {
        Ok(host_addr)
    }

    fn unmap(
        &self,
        _host_mem: &MemArena,
        _host_addr: u64,
        _kind: MapKind,
    ) -> Result<(), CudadevError> {
        Ok(())
    }

    fn update(
        &self,
        _host_mem: &MemArena,
        _host_addr: u64,
        _len: u64,
        _to_device: bool,
    ) -> Result<(), CudadevError> {
        Ok(())
    }

    fn dev_addr(&self, host_addr: u64) -> Option<u64> {
        Some(host_addr)
    }

    fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError> {
        Err(CudadevError::ModuleLoad {
            module: name.to_string(),
            reason: "initial device has no kernel modules".to_string(),
        })
    }

    fn launch(
        &self,
        _host_mem: &MemArena,
        _module: &str,
        kernel: &str,
        _grid: [u32; 3],
        _block: [u32; 3],
        _params: Vec<u64>,
    ) -> Result<LaunchStats, CudadevError> {
        Err(CudadevError::Launch {
            kernel: kernel.to_string(),
            error: ExecError::Trap("initial device does not execute kernels".to_string()),
        })
    }

    fn clock(&self) -> DevClock {
        *self.clock.lock()
    }

    fn reset_clock(&self) {
        *self.clock.lock() = DevClock::default();
    }

    fn record_memcpy(&self, seconds: f64, h2d_bytes: u64, d2h_bytes: u64) {
        let mut clk = self.clock.lock();
        if d2h_bytes > 0 && h2d_bytes == 0 {
            clk.d2h_s += seconds;
        } else {
            clk.h2d_s += seconds;
        }
        clk.h2d_bytes += h2d_bytes;
        clk.d2h_bytes += d2h_bytes;
    }

    fn raw_device(&self) -> Option<Arc<gpusim::Device>> {
        None
    }

    fn take_printf_output(&self) -> String {
        String::new()
    }
}
