//! The batch server: tenants, programs, submission, workers, results.
//!
//! Lifecycle: [`Server::new`] resolves configuration **once** (this is the
//! env snapshot — no job ever reads `OMPI_*`), builds the device fleet the
//! scheduler owns, and compiles nothing. Tenants register programs
//! ([`Server::register_program`] — each gets a unique module-name prefix
//! so every tenant's `k0_main` coexists in the shared kernel directory),
//! submit jobs ([`Server::submit`], which runs admission control inline
//! and returns typed rejections), and claim results ([`Server::wait`]).
//! Worker threads pull placements from the scheduler and execute each job
//! through [`Runner::with_shared_registry`] against a single-device view
//! of the fleet.
//!
//! Metrics live under the server's own pid (`fleet size + 1`; the fleet
//! uses `0..n` and per-job host shims use `n`): `serve.jobs_submitted`,
//! `serve.jobs_completed[.tenant]`, `serve.jobs_failed`,
//! `serve.rejected.overload[.reason]`, `serve.affinity.*`, and the
//! `job_latency_us[.tenant]` histograms the soak harness reads p50/p95/p99
//! from. A failed job fires a flight-recorder post-mortem before its
//! result is published.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cudadev::{CudaDev, CudaDevConfig};
use gpusim::FaultPlan;
use ompi_core::{CompiledApp, Ompicc, ResolvedConfig, Runner};
use vmcommon::sync::{Condvar, Mutex};
use vmcommon::Value;

use crate::scheduler::{Affinity, Scheduler};
use crate::{JobId, JobResult, JobSpec, ProgramId, ServeConfig, ServeError, TenantConfig};

struct PendingJob {
    app: Arc<CompiledApp>,
    entry: String,
    args: Vec<Value>,
    submitted: Instant,
}

struct Inner {
    rc: ResolvedConfig,
    obs: Arc<obs::Obs>,
    sched: Scheduler,
    /// Registered programs: index is the `ProgramId`, value is
    /// `(owning tenant, compiled app)`.
    programs: Mutex<Vec<(String, Arc<CompiledApp>)>>,
    /// Accepted-but-not-finished jobs, keyed by job id.
    pending: Mutex<HashMap<u64, PendingJob>>,
    /// Finished jobs awaiting their one `wait` claim.
    results: Mutex<HashMap<u64, JobResult>>,
    done: Condvar,
    /// Job ids in completion order (test/bench introspection).
    completion_log: Mutex<Vec<JobId>>,
    next_job: AtomicU64,
    serve_pid: u64,
}

/// The multi-tenant batch server. See the crate docs for the model.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
    work_dir: std::path::PathBuf,
    mode: nvccsim::BinMode,
}

impl Server {
    /// Build the server: resolve config against the environment (the only
    /// env read in the server's lifetime), construct the fleet, validate
    /// every device's fault plan eagerly.
    pub fn new(cfg: &ServeConfig) -> Result<Server, ServeError> {
        let mut rc = ResolvedConfig::resolve(&cfg.runner).map_err(ServeError::Config)?;
        let obs = rc.obs.clone().unwrap_or_else(obs::Obs::disabled);
        rc.obs = Some(obs.clone());

        let kernel_dir = cfg.work_dir.join("kernels");
        std::fs::create_dir_all(&kernel_dir).map_err(|e| ServeError::Io(e.to_string()))?;

        let n = rc.num_devices.max(1);
        let mut fleet = Vec::with_capacity(n);
        for i in 0..n {
            // Fault plans resolve at startup, not at lazy device init: a
            // malformed `OMPI_FAULT_PLAN` must fail server construction,
            // never surface later as one tenant's mysterious host run.
            let fault_plan = match (&rc.fault_spec, i, &rc.fault_plan) {
                (Some(spec), _, _) => Some(Arc::new(
                    FaultPlan::parse_for_device(spec, i as u32)
                        .map_err(|e| ServeError::FaultPlan(e.to_string()))?,
                )),
                (None, 0, Some(p)) => Some(p.clone()),
                _ => FaultPlan::from_env_for_device(i as u32)
                    .map_err(|e| ServeError::FaultPlan(e.to_string()))?
                    .map(Arc::new),
            };
            fleet.push(Arc::new(CudaDev::new(CudaDevConfig {
                device_id: i as u32,
                global_mem: rc.device_mem,
                kernel_dir: kernel_dir.clone(),
                jit_cache_dir: rc.jit_cache_dir.clone(),
                exec_mode: rc.exec_mode,
                launch_sampling: rc.launch_sampling,
                async_streams: rc.async_streams,
                fault_plan,
                retry: rc.retry,
                launch_timeout: rc.launch_timeout,
                max_resets: rc.max_resets,
                obs: obs.clone(),
                ..CudaDevConfig::default()
            })));
        }

        let worker_count = if cfg.workers == 0 { fleet.len().max(1) } else { cfg.workers };
        let serve_pid = fleet.len() as u64 + 1;
        let sched = Scheduler::new(fleet, cfg.global_queue_cap, cfg.default_tenant);
        Ok(Server {
            inner: Arc::new(Inner {
                rc,
                obs,
                sched,
                programs: Mutex::new(Vec::new()),
                pending: Mutex::new(HashMap::new()),
                results: Mutex::new(HashMap::new()),
                done: Condvar::new(),
                completion_log: Mutex::new(Vec::new()),
                next_job: AtomicU64::new(0),
                serve_pid,
            }),
            workers: Mutex::new(Vec::new()),
            worker_count,
            work_dir: cfg.work_dir.clone(),
            mode: cfg.mode,
        })
    }

    /// Spawn the worker threads. Jobs may be submitted before `start` —
    /// they queue up and run once workers exist (tests use this to build
    /// deterministic schedules).
    pub fn start(&self) {
        let mut ws = self.workers.lock();
        if !ws.is_empty() {
            return;
        }
        for w in 0..self.worker_count {
            let inner = self.inner.clone();
            ws.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker"),
            );
        }
    }

    /// Register (or reconfigure) a tenant with explicit scheduling knobs.
    pub fn register_tenant(&self, name: &str, cfg: TenantConfig) {
        self.inner.sched.ensure_tenant(name, Some(cfg));
    }

    /// Compile a tenant's guest program into the shared kernel directory.
    /// The tenant is auto-registered with default knobs if new; the
    /// program's kernels get a `p<id>_` module prefix so no two programs
    /// collide on outlined-kernel names.
    pub fn register_program(&self, tenant: &str, source: &str) -> Result<ProgramId, ServeError> {
        self.inner.sched.ensure_tenant(tenant, None);
        let mut programs = self.inner.programs.lock();
        let id = programs.len() as u64;
        let app = Ompicc::new(&self.work_dir)
            .with_mode(self.mode)
            .with_module_prefix(format!("p{id}_"))
            .compile(source)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        programs.push((tenant.to_string(), Arc::new(app)));
        Ok(ProgramId(id))
    }

    /// Submit a job. Admission control runs here, inline: a rejection is
    /// immediate and typed, and rejected jobs leave no residue.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Result<JobId, ServeError> {
        let app = {
            let programs = self.inner.programs.lock();
            let (owner, app) = programs
                .get(spec.program.0 as usize)
                .ok_or(ServeError::UnknownProgram(spec.program))?;
            if owner != tenant {
                return Err(ServeError::WrongTenant {
                    program: spec.program,
                    owner: owner.clone(),
                });
            }
            app.clone()
        };
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.metrics.incr(self.inner.serve_pid, "serve.jobs_submitted", 1);
        // Pending goes in *before* enqueue: a worker could pick the job
        // the instant `enqueue` releases the scheduler lock.
        self.inner.pending.lock().insert(
            id,
            PendingJob {
                app,
                entry: spec.entry.clone(),
                args: spec.args.clone(),
                submitted: Instant::now(),
            },
        );
        match self.inner.sched.enqueue(tenant, id, spec.priority, spec.mem_hint) {
            Ok(()) => Ok(JobId(id)),
            Err(e) => {
                self.inner.pending.lock().remove(&id);
                if let ServeError::Overloaded { reason } = e {
                    let m = &self.inner.obs.metrics;
                    m.incr(self.inner.serve_pid, "serve.rejected.overload", 1);
                    m.incr(self.inner.serve_pid, &format!("serve.rejected.overload.{reason}"), 1);
                }
                Err(e)
            }
        }
    }

    /// Block until the job finishes, then claim its result. Each result
    /// can be claimed exactly once; waiting again for the same id blocks
    /// forever.
    pub fn wait(&self, id: JobId) -> JobResult {
        let mut results = self.inner.results.lock();
        loop {
            if let Some(r) = results.remove(&id.0) {
                return r;
            }
            self.inner.done.wait_for(&mut results, Duration::from_millis(50));
        }
    }

    /// Non-blocking claim.
    pub fn try_result(&self, id: JobId) -> Option<JobResult> {
        self.inner.results.lock().remove(&id.0)
    }

    /// Stop admitting jobs, let workers drain the queues, and join them.
    pub fn shutdown(&self) {
        self.inner.sched.shutdown();
        let ws = std::mem::take(&mut *self.workers.lock());
        for w in ws {
            let _ = w.join();
        }
    }

    /// The shared observability sink (metrics pid map: fleet devices are
    /// `0..n`, per-job host shims `n`, server counters [`Self::serve_pid`]).
    pub fn obs(&self) -> &Arc<obs::Obs> {
        &self.inner.obs
    }

    pub fn serve_pid(&self) -> u64 {
        self.inner.serve_pid
    }

    pub fn num_devices(&self) -> usize {
        self.inner.sched.fleet().len()
    }

    /// Direct fleet access (chaos tests latch devices broken mid-soak).
    pub fn device(&self, idx: usize) -> Option<&Arc<CudaDev>> {
        self.inner.sched.fleet().get(idx)
    }

    /// Job ids in the order they finished.
    pub fn completion_order(&self) -> Vec<JobId> {
        self.inner.completion_log.lock().clone()
    }

    /// The resolved config snapshot jobs run under (tests assert the
    /// precedence outcome without re-reading the environment).
    pub fn resolved(&self) -> &ResolvedConfig {
        &self.inner.rc
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(p) = inner.sched.next() {
        let Some(job) = inner.pending.lock().remove(&p.job) else {
            // Unreachable by construction (pending precedes enqueue), but
            // a lost payload must not wedge the device slot.
            inner.sched.complete(&p.tenant, p.device);
            continue;
        };
        let m = &inner.obs.metrics;
        let affinity = match p.affinity {
            Affinity::First => "serve.affinity.first",
            Affinity::Hit => "serve.affinity.hit",
            Affinity::Miss => "serve.affinity.miss",
            Affinity::Reroute => "serve.affinity.reroute",
            Affinity::Host => "serve.affinity.host",
        };
        m.incr(inner.serve_pid, affinity, 1);

        let registry = inner.sched.job_registry(p.device);
        let (value, output) = match Runner::with_shared_registry(&job.app, registry, &inner.rc) {
            Ok(runner) => {
                let value = runner.call(&job.entry, &job.args).map_err(|e| e.to_string());
                let mut out = runner.take_output();
                out.push_str(&runner.take_device_output());
                (value, out)
            }
            Err(e) => (Err(e.to_string()), String::new()),
        };
        inner.sched.complete(&p.tenant, p.device);

        let latency_us = job.submitted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        m.observe(inner.serve_pid, "job_latency_us", latency_us);
        m.observe(inner.serve_pid, &format!("job_latency_us.{}", p.tenant), latency_us);
        match &value {
            Ok(_) => {
                m.incr(inner.serve_pid, "serve.jobs_completed", 1);
                m.incr(inner.serve_pid, &format!("serve.jobs_completed.{}", p.tenant), 1);
            }
            Err(e) => {
                m.incr(inner.serve_pid, "serve.jobs_failed", 1);
                inner.obs.flight.post_mortem(&format!("job {} ({}) aborted: {e}", p.job, p.tenant));
            }
        }

        inner.completion_log.lock().push(JobId(p.job));
        inner.results.lock().insert(
            p.job,
            JobResult {
                id: JobId(p.job),
                tenant: p.tenant.clone(),
                device: p.device,
                value,
                output,
                latency_us,
            },
        );
        inner.done.notify_all();
    }
}
