//! CUDA-style **command streams** on the simulated clock.
//!
//! The Jetson Nano's GPU has one compute engine (the SMM) and one copy
//! engine; work queued on different streams may overlap across engines —
//! a kernel can run while the copy engine moves the next buffer — but each
//! engine serves one operation at a time, and operations on the *same*
//! stream retain queue order.
//!
//! [`StreamEngine`] models exactly that arithmetic. It does **not**
//! execute anything: the cudadev host driver executes every operation
//! eagerly (results are bit-identical to synchronous mode) and only asks
//! the engine *when* the operation would have started and finished on the
//! virtual timeline. An operation's completion timestamp is its **event**
//! ([`EventId`]); streams can be made to wait on events recorded on other
//! streams ([`StreamEngine::wait_event`]), which is how double-buffered
//! tiling expresses "reuse this buffer only after its download finished".

/// Which hardware engine an operation occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The DMA copy engine (h2d and d2h transfers; the Nano has one).
    Copy,
    /// The SMM (kernel launches).
    Compute,
}

/// A recorded event: an index into the engine's completion-timestamp
/// table. Waiting on an event lower-bounds a stream's next operation by
/// the event's completion time.
pub type EventId = usize;

/// One scheduled operation's place on the virtual timeline.
#[derive(Clone, Copy, Debug)]
pub struct OpSchedule {
    pub start_s: f64,
    pub end_s: f64,
    /// Completion event (usable with [`StreamEngine::wait_event`]).
    pub event: EventId,
}

/// The per-device stream scheduler: stream tails, engine availability,
/// recorded events, and the overall horizon (latest scheduled completion).
///
/// The copy engine is a list of busy intervals rather than a single
/// next-free time: the DMA engine serves whichever queued transfer is
/// *ready*, so a transfer whose dependencies are already met may backfill
/// an idle gap the engine spends waiting on a not-yet-ready download from
/// an earlier stream. (Without this, one stream's download — queued
/// behind its kernel — would block every later stream's upload, and
/// `nowait` regions could never overlap on a single-copy-engine device.)
/// The compute engine stays a scalar tail: kernel durations are unknown
/// until the kernel has run, so [`StreamEngine::peek_start`] must not
/// depend on them.
#[derive(Debug, Default)]
pub struct StreamEngine {
    /// Tail time of each stream: operations on a stream are ordered, so a
    /// new operation starts no earlier than the stream's last completion.
    streams: Vec<f64>,
    /// Busy intervals `(start, end)` of the copy engine, sorted and
    /// non-overlapping.
    copy_busy: Vec<(f64, f64)>,
    /// Next-free time of the compute engine (kernels serialize on the SMM).
    compute_free: f64,
    /// Completion timestamps of recorded events.
    events: Vec<f64>,
    /// Latest completion scheduled so far.
    horizon: f64,
}

impl StreamEngine {
    pub fn new() -> StreamEngine {
        StreamEngine::default()
    }

    /// Create a new stream; its first operation is bounded only by
    /// `not_before` and engine availability.
    pub fn create_stream(&mut self) -> usize {
        self.streams.push(0.0);
        self.streams.len() - 1
    }

    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Earliest time the copy engine can serve a `dur_s`-long transfer
    /// that becomes ready at `ready`: the first idle gap (between busy
    /// intervals, at or after `ready`) wide enough, else after the last
    /// interval that overlaps the candidate slot.
    fn copy_placement(&self, ready: f64, dur_s: f64) -> f64 {
        let mut cursor = ready;
        for &(s, e) in &self.copy_busy {
            if cursor + dur_s <= s {
                break;
            }
            cursor = cursor.max(e);
        }
        cursor
    }

    /// When would an operation on `stream`/`kind` start if submitted now?
    /// The start time does not depend on the operation's duration, so the
    /// driver can *peek*, execute the operation eagerly (aligning its
    /// sub-events to the returned base), and then [`StreamEngine::submit`]
    /// the measured duration — with single-threaded submission the
    /// peeked and submitted start agree. (For [`EngineKind::Copy`] the
    /// returned time is the engine's first idle moment; a submit with a
    /// real duration may land later if that gap is too narrow — the
    /// driver only ever peeks the compute engine.)
    pub fn peek_start(&self, stream: usize, kind: EngineKind, not_before: f64) -> f64 {
        let tail = self.streams.get(stream).copied().unwrap_or(0.0);
        let ready = not_before.max(tail);
        match kind {
            EngineKind::Copy => self.copy_placement(ready, 0.0),
            EngineKind::Compute => ready.max(self.compute_free),
        }
    }

    /// Queue an operation of `dur_s` simulated seconds on `stream`,
    /// occupying engine `kind`. `not_before` is the host-side submission
    /// time (an operation cannot start before it was issued).
    pub fn submit(
        &mut self,
        stream: usize,
        kind: EngineKind,
        dur_s: f64,
        not_before: f64,
    ) -> OpSchedule {
        let ready = not_before.max(self.streams.get(stream).copied().unwrap_or(0.0));
        let start_s = match kind {
            EngineKind::Copy => {
                let t = self.copy_placement(ready, dur_s);
                let at = self.copy_busy.partition_point(|&(s, _)| s < t);
                self.copy_busy.insert(at, (t, t + dur_s));
                t
            }
            EngineKind::Compute => {
                let t = ready.max(self.compute_free);
                self.compute_free = t + dur_s;
                t
            }
        };
        let end_s = start_s + dur_s;
        if let Some(tail) = self.streams.get_mut(stream) {
            *tail = end_s;
        }
        self.horizon = self.horizon.max(end_s);
        self.events.push(end_s);
        OpSchedule { start_s, end_s, event: self.events.len() - 1 }
    }

    /// Record an event on `stream`: completes when everything queued on
    /// the stream so far has completed (`cuEventRecord`).
    pub fn record_event(&mut self, stream: usize) -> EventId {
        let t = self.streams.get(stream).copied().unwrap_or(0.0);
        self.events.push(t);
        self.events.len() - 1
    }

    /// The completion timestamp of `event`.
    pub fn event_time(&self, event: EventId) -> f64 {
        self.events.get(event).copied().unwrap_or(0.0)
    }

    /// Make `stream`'s next operation wait for `event`
    /// (`cuStreamWaitEvent`): raises the stream tail to the event time.
    pub fn wait_event(&mut self, stream: usize, event: EventId) {
        let t = self.event_time(event);
        if let Some(tail) = self.streams.get_mut(stream) {
            *tail = tail.max(t);
        }
    }

    /// Latest completion scheduled so far — where the device clock lands
    /// once all queued work drains.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_preserves_queue_order() {
        let mut e = StreamEngine::new();
        let s = e.create_stream();
        let a = e.submit(s, EngineKind::Copy, 2.0, 0.0);
        let b = e.submit(s, EngineKind::Compute, 3.0, 0.0);
        let c = e.submit(s, EngineKind::Copy, 1.0, 0.0);
        assert_eq!((a.start_s, a.end_s), (0.0, 2.0));
        assert_eq!((b.start_s, b.end_s), (2.0, 5.0), "launch waits for its upload");
        assert_eq!((c.start_s, c.end_s), (5.0, 6.0), "download waits for the kernel");
        assert_eq!(e.horizon(), 6.0);
    }

    #[test]
    fn copy_overlaps_compute_across_streams() {
        let mut e = StreamEngine::new();
        let s0 = e.create_stream();
        let s1 = e.create_stream();
        let u0 = e.submit(s0, EngineKind::Copy, 2.0, 0.0);
        let k0 = e.submit(s0, EngineKind::Compute, 10.0, 0.0);
        let u1 = e.submit(s1, EngineKind::Copy, 2.0, 0.0);
        // The second upload runs on the idle copy engine while the kernel
        // computes: full overlap.
        assert_eq!((u0.end_s, k0.start_s), (2.0, 2.0));
        assert_eq!((u1.start_s, u1.end_s), (2.0, 4.0));
        assert!(u1.end_s < k0.end_s, "upload hidden behind the kernel");
        let k1 = e.submit(s1, EngineKind::Compute, 5.0, 0.0);
        assert_eq!(k1.start_s, k0.end_s, "one compute engine: kernels serialize");
        assert_eq!(e.horizon(), 17.0);
    }

    #[test]
    fn single_engine_serializes_copies() {
        let mut e = StreamEngine::new();
        let s0 = e.create_stream();
        let s1 = e.create_stream();
        let a = e.submit(s0, EngineKind::Copy, 4.0, 0.0);
        let b = e.submit(s1, EngineKind::Copy, 4.0, 0.0);
        assert_eq!(b.start_s, a.end_s, "one copy engine: transfers serialize");
    }

    #[test]
    fn ready_copy_backfills_gap_left_by_waiting_download() {
        let mut e = StreamEngine::new();
        let s0 = e.create_stream();
        let s1 = e.create_stream();
        let u0 = e.submit(s0, EngineKind::Copy, 2.0, 0.0);
        let k0 = e.submit(s0, EngineKind::Compute, 10.0, 0.0);
        let d0 = e.submit(s0, EngineKind::Copy, 1.0, 0.0);
        // Stream 0's download cannot start before its kernel finishes…
        assert_eq!((u0.end_s, k0.end_s), (2.0, 12.0));
        assert_eq!((d0.start_s, d0.end_s), (12.0, 13.0));
        // …but the copy engine is idle meanwhile, and stream 1's upload is
        // ready: it backfills the gap instead of queueing behind d0.
        let u1 = e.submit(s1, EngineKind::Copy, 2.0, 0.0);
        assert_eq!((u1.start_s, u1.end_s), (2.0, 4.0), "ready upload fills the idle gap");
        // A transfer too wide for any gap lands after the conflicting
        // intervals, never on top of one.
        let big = e.submit(s1, EngineKind::Copy, 9.0, 0.0);
        assert_eq!(big.start_s, 13.0, "gap [4,12) is too narrow for 9s");
    }

    #[test]
    fn events_order_across_streams() {
        let mut e = StreamEngine::new();
        let s0 = e.create_stream();
        let s1 = e.create_stream();
        e.submit(s0, EngineKind::Compute, 7.0, 0.0);
        let ev = e.record_event(s0);
        assert_eq!(e.event_time(ev), 7.0);
        e.wait_event(s1, ev);
        let op = e.submit(s1, EngineKind::Copy, 1.0, 0.0);
        assert_eq!(op.start_s, 7.0, "stream 1 waited for stream 0's event");
    }

    #[test]
    fn not_before_lower_bounds_submission() {
        let mut e = StreamEngine::new();
        let s = e.create_stream();
        let op = e.submit(s, EngineKind::Copy, 1.0, 5.0);
        assert_eq!(op.start_s, 5.0, "an op cannot start before it was issued");
        // An idle gap between submissions does not rewind anything.
        let later = e.submit(s, EngineKind::Copy, 1.0, 100.0);
        assert_eq!(later.start_s, 100.0);
        assert_eq!(e.horizon(), 101.0);
    }

    #[test]
    fn peek_matches_submit() {
        let mut e = StreamEngine::new();
        let s0 = e.create_stream();
        let s1 = e.create_stream();
        e.submit(s0, EngineKind::Compute, 3.0, 0.0);
        let peek = e.peek_start(s1, EngineKind::Compute, 1.0);
        let op = e.submit(s1, EngineKind::Compute, 2.0, 1.0);
        assert_eq!(peek, op.start_s);
    }
}
