//! JIT compilation of PTX-mode kernels, with disk caching (§3.3).
//!
//! In PTX mode the final compilation step happens at run time "just before
//! the actual offloading". The CUDA driver caches JIT results on disk to
//! eliminate repeated compilations of the same kernels; we reproduce that:
//! the cache key is the FNV-1a hash of the `.sptx` text, the cached value
//! is the linked `.cubin`.

use std::path::Path;
use std::sync::Arc;

use vmcommon::hash::fnv1a_hex;

/// Assemble + link a `.sptx` text, using/filling the disk cache.
/// Returns `(module, cache_hit)`.
pub fn jit_load(
    text: &str,
    cache_dir: &Path,
    lib_symbols: &[String],
) -> Result<(Arc<sptx::Module>, bool), String> {
    let key = fnv1a_hex(text.as_bytes());
    let cached = cache_dir.join(format!("{key}.cubin"));
    if let Ok(bytes) = std::fs::read(&cached) {
        if let Ok(m) = sptx::cubin::decode(&bytes) {
            return Ok((Arc::new(m), true));
        }
        // Corrupt cache entry: fall through and recompile.
        let _ = std::fs::remove_file(&cached);
    }
    // "Compile": assemble the text and link the device library.
    let mut module = sptx::text::parse_module(text).map_err(|e| e.to_string())?;
    nvccsim::link_module(&mut module, lib_symbols).map_err(|e| e.to_string())?;
    sptx::verify_module(&module).map_err(|e| e.to_string())?;
    if std::fs::create_dir_all(cache_dir).is_ok() {
        // A failed cache write is not fatal (e.g. read-only disk).
        let tmp = cache_dir.join(format!(".{key}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, sptx::cubin::encode(&module)).is_ok() {
            let _ = std::fs::rename(&tmp, &cached);
        }
    }
    Ok((Arc::new(module), false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text() -> String {
        let src = "__global__ void k(float *a) { a[threadIdx.x] = 3.0f; }";
        let m = nvccsim::compile_source(src, "jit_sample").unwrap();
        sptx::text::print_module(&m)
    }

    #[test]
    fn jit_compiles_then_hits_cache() {
        let dir = std::env::temp_dir().join(format!("cudadev-jit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        let (m1, hit1) = jit_load(&text, &dir, &[]).unwrap();
        assert!(!hit1, "first load must compile");
        assert!(m1.device_lib_linked);
        let (m2, hit2) = jit_load(&text, &dir, &[]).unwrap();
        assert!(hit2, "second load must hit the disk cache");
        assert_eq!(*m1, *m2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_recompiles() {
        let dir = std::env::temp_dir().join(format!("cudadev-jit-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        jit_load(&text, &dir, &[]).unwrap();
        // Corrupt the cached file.
        let key = fnv1a_hex(text.as_bytes());
        let path = dir.join(format!("{key}.cubin"));
        std::fs::write(&path, b"garbage").unwrap();
        let (_, hit) = jit_load(&text, &dir, &[]).unwrap();
        assert!(!hit, "corrupt entry must be recompiled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_kernels_different_keys() {
        let a = sample_text();
        let b = a.replace("3.0", "4.0");
        assert_ne!(fnv1a_hex(a.as_bytes()), fnv1a_hex(b.as_bytes()));
    }
}
