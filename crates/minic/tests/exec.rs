//! Host-execution semantics, run on BOTH engines (bytecode VM and the
//! tree-walking oracle). Every case asserts the same result for each
//! engine, so this suite is also a fine-grained differential harness for
//! the compiler/VM against the executable specification.

use std::sync::Arc;

use minic::interp::{Engine, HookCtx, Hooks, IResult, Interp, Machine, NoHooks};
use vmcommon::Value;

const ENGINES: [Engine; 2] = [Engine::Vm, Engine::Walker];

/// Run `main` under one engine on a fresh machine.
fn run_on(engine: Engine, src: &str) -> (Arc<Machine>, Value) {
    let m = Machine::from_source(src).unwrap();
    m.set_engine(engine);
    let mut i = Interp::new(m.clone(), Arc::new(NoHooks)).unwrap();
    let v = i.run_main().unwrap();
    (m, v)
}

/// Assert `main` returns `want` and prints `out` under both engines.
fn check(src: &str, want: Value, out: &str) {
    for e in ENGINES {
        let (m, v) = run_on(e, src);
        assert_eq!(v, want, "return value under {e:?}");
        assert_eq!(m.take_output(), out, "output under {e:?}");
    }
}

fn check_ret(src: &str, want: i32) {
    check(src, Value::I32(want), "");
}

/// Assert `main` fails with the SAME error string under both engines.
fn check_err(src: &str) {
    let mut msgs = Vec::new();
    for e in ENGINES {
        let m = Machine::from_source(src).unwrap();
        m.set_engine(e);
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        msgs.push(i.run_main().unwrap_err().to_string());
    }
    assert_eq!(msgs[0], msgs[1], "vm and walker error messages differ");
}

#[test]
fn arithmetic_and_control_flow() {
    check_ret("int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }", 55);
}

#[test]
fn while_break_continue() {
    check_ret(
        "int main() { int s = 0; int i = 0; while (1) { i++; if (i > 10) break; if (i % 2) continue; s += i; } return s; }",
        30,
    );
}

#[test]
fn do_while() {
    check_ret(
        "int main() { int s = 0; int i = 0; do { s += i; i++; } while (i < 5); return s; }",
        10,
    );
}

#[test]
fn functions_and_recursion() {
    check_ret(
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(10); }",
        55,
    );
}

#[test]
fn arrays_pointers_addressof() {
    check_ret(
        r#"
void twice(int *p) { *p = *p * 2; }
int main() {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i + 1;
    twice(&a[2]);
    int *p = a;
    return p[0] + p[1] + p[2] + p[3];
}
"#,
        1 + 2 + 6 + 4,
    );
}

#[test]
fn two_d_arrays() {
    check_ret(
        r#"
int main() {
    int m[3][4];
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    return m[2][3];
}
"#,
        23,
    );
}

#[test]
fn vla_param_indexing() {
    check_ret(
        r#"
int get(int n, int a[n][n], int i, int j) { return a[i][j]; }
int main() {
    int m[3][3];
    m[1][2] = 42;
    return get(3, m, 1, 2);
}
"#,
        42,
    );
}

#[test]
fn float_precision_f32() {
    // f32 arithmetic must round to single precision.
    check_ret("int main() { float a = 16777216.0f; float b = a + 1.0f; return b == a; }", 1);
}

#[test]
fn fma_shape_rounds_in_two_steps() {
    // `acc += a * b` must round the product, then the sum — not fuse into
    // one higher-precision step.
    check_ret(
        r#"
int main() {
    float acc = 16777216.0f;
    float a = 0.5f;
    float b = 1.0f;
    acc += a * b;
    return acc == 16777216.0f;
}
"#,
        1,
    );
}

#[test]
fn printf_capture() {
    check(
        r#"int main() { printf("x=%d y=%5.2f %s\n", 3, 1.5, "hi"); return 0; }"#,
        Value::I32(0),
        "x=3 y= 1.50 hi\n",
    );
}

#[test]
fn printf_surplus_args_not_evaluated() {
    // The zip against the conversion list means g() must never run.
    check(
        r#"
int g() { printf("BOOM"); return 1; }
int main() { printf("n=%d\n", 7, g()); return 0; }
"#,
        Value::I32(0),
        "n=7\n",
    );
}

#[test]
fn malloc_free() {
    check_ret(
        r#"
int main() {
    float *p = (float *) malloc(16 * sizeof(float));
    for (int i = 0; i < 16; i++) p[i] = (float) i;
    float s = 0.0f;
    for (int i = 0; i < 16; i++) s += p[i];
    free(p);
    return (int) s;
}
"#,
        120,
    );
}

#[test]
fn globals_with_initializers() {
    check_ret("int g = 7; int arr[3] = {1, 2, 3}; int main() { return g + arr[1]; }", 9);
}

#[test]
fn ternary_and_logical() {
    check_ret(
        "int main() { int a = 5; int b = 3; return (a > b ? a : b) + (a && b) + (0 || 0); }",
        6,
    );
}

#[test]
fn short_circuit_skips_side_effects() {
    check(
        r#"
int noisy() { printf("x"); return 1; }
int main() {
    int a = 0 && noisy();
    int b = 1 || noisy();
    return a + b;
}
"#,
        Value::I32(1),
        "",
    );
}

#[test]
fn pointer_arithmetic_strided() {
    check_ret(
        r#"
int main() {
    double d[4];
    d[0] = 1.5; d[1] = 2.5; d[2] = 3.5; d[3] = 4.5;
    double *p = d + 1;
    p++;
    return (int)(*p * 2.0);
}
"#,
        7,
    );
}

#[test]
fn pointer_difference() {
    check_ret(
        r#"
int main() {
    double d[8];
    double *a = d + 1;
    double *b = d + 6;
    return (int)(b - a);
}
"#,
        5,
    );
}

#[test]
fn compound_assign_through_pointer() {
    check_ret(
        r#"
int main() {
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    int *p = a + 1;
    *p *= 10;
    p[1] += 5;
    return a[0] + a[1] + a[2];
}
"#,
        1 + 20 + 8,
    );
}

#[test]
fn incdec_pre_post() {
    check_ret(
        r#"
int main() {
    int i = 5;
    int a = i++;
    int b = ++i;
    int c = i--;
    int d = --i;
    return a * 1000 + b * 100 + c * 10 + d;
}
"#,
        5 * 1000 + 7 * 100 + 7 * 10 + 5,
    );
}

#[test]
fn char_narrowing() {
    check_ret("int main() { char c = 300; return c; }", 44);
}

#[test]
fn comma_and_casts() {
    check_ret("int main() { int x = (1, 2, 3); double d = 7.9; return x + (int)d; }", 10);
}

#[test]
fn omp_pragmas_ignored_sequentially() {
    // Directly executing an OpenMP program = 1-thread semantics.
    check_ret(
        r#"
int main() {
    int s = 0;
    #pragma omp parallel for reduction(+: s)
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}
"#,
        45,
    );
}

#[test]
fn evaluation_order_lvalue_before_rhs() {
    check(
        r#"
int idx() { printf("i"); return 1; }
int val() { printf("v"); return 9; }
int main() {
    int a[2];
    a[0] = 0; a[1] = 0;
    a[idx()] = val();
    return a[1];
}
"#,
        Value::I32(9),
        "iv",
    );
}

#[test]
fn null_deref_traps() {
    check_err("int main() { int *p = (int*)0; return *p; }");
}

#[test]
fn null_index_traps() {
    check_err("int main() { int *p = (int*)0; return p[3]; }");
}

#[test]
fn division_by_zero_traps() {
    check_err("int main() { int z = 0; return 4 / z; }");
}

#[test]
fn deep_recursion_traps() {
    // The VM runs guest calls on an explicit frame stack and traps within
    // any host thread; the walker oracle recurses on the host stack, whose
    // unoptimized frames outgrow the default 2 MiB test thread before the
    // guest's 200-frame limit — give the comparison room.
    std::thread::Builder::new()
        .stack_size(32 << 20)
        .spawn(|| check_err("int f(int n) { return f(n + 1); } int main() { return f(0); }"))
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn unknown_function_traps() {
    check_err("int main() { return nosuchfn(1); }");
}

#[test]
fn negative_vla_extent_traps() {
    check_err("int main() { int n = -3; return (int)sizeof(int[n]); }");
}

#[test]
fn hooks_receive_unknown_calls() {
    struct H;
    impl Hooks for H {
        fn call(&self, name: &str, args: &[Value], _ctx: &HookCtx<'_>) -> IResult<Option<Value>> {
            if name == "magic" {
                Ok(Some(Value::I32(args[0].as_i32() * 10)))
            } else {
                Ok(None)
            }
        }
    }
    for e in ENGINES {
        let m = Machine::from_source("int main() { return magic(4); }").unwrap();
        m.set_engine(e);
        let mut i = Interp::new(m, Arc::new(H)).unwrap();
        assert_eq!(i.run_main().unwrap(), Value::I32(40));
    }
}

#[test]
fn hook_can_reenter_guest() {
    struct H;
    impl Hooks for H {
        fn call(&self, name: &str, _args: &[Value], ctx: &HookCtx<'_>) -> IResult<Option<Value>> {
            if name == "call_twice" {
                let a = ctx.call_guest("work", &[Value::I32(1)])?;
                let b = ctx.call_guest("work", &[Value::I32(2)])?;
                Ok(Some(Value::I32(a.as_i32() + b.as_i32())))
            } else {
                Ok(None)
            }
        }
    }
    for e in ENGINES {
        let m = Machine::from_source(
            "int work(int x) { return x * 100; } int main() { return call_twice(); }",
        )
        .unwrap();
        m.set_engine(e);
        let mut i = Interp::new(m, Arc::new(H)).unwrap();
        assert_eq!(i.run_main().unwrap(), Value::I32(300));
    }
}

#[test]
fn dim3_variables() {
    check_ret("int main() { dim3 b(32, 8); return b.x + b.y + b.z; }", 41);
}

#[test]
fn concurrent_interps_share_memory() {
    for e in ENGINES {
        let m = Machine::from_source(
            "int counter; void bump() { counter = counter + 1; } int main() { return 0; }",
        )
        .unwrap();
        m.set_engine(e);
        let g = m.global_addr("counter").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
                    i.call("bump", &[]).unwrap();
                });
            }
        });
        // At least one bump landed; memory is shared and valid.
        let v = m.mem.load_u32(vmcommon::addr::offset(g)).unwrap();
        assert!((1..=4).contains(&v));
    }
}

#[test]
fn sizeof_expressions() {
    check_ret(
        "int main() { float x[10]; return (int)(sizeof(x) + sizeof(long) + sizeof(float*)); }",
        40 + 8 + 8,
    );
}

/// Assert `main` fails with EXACTLY `want` under both engines, after
/// `configure` has set the governor limits on the fresh machine. Limit
/// traps are part of the engine contract: the message names only the
/// configured ceiling (never a consumed count), so both engines must
/// produce it byte for byte even though they meter at different
/// granularities.
fn check_limit_err(src: &str, configure: fn(&Machine), want: &str) {
    for e in ENGINES {
        let m = Machine::from_source(src).unwrap();
        m.set_engine(e);
        configure(&m);
        let mut i = Interp::new(m, Arc::new(NoHooks)).unwrap();
        let got = i.run_main().unwrap_err().to_string();
        assert_eq!(got, want, "limit trap under {e:?}");
    }
}

#[test]
fn fuel_exhaustion_message_is_engine_identical() {
    check_limit_err(
        "int main() { int i = 0; while (1) { i = i + 1; } return i; }",
        |m| m.limits().set_fuel(Some(5000)),
        "guest limit: guest fuel exhausted (budget 5000 instructions)",
    );
}

#[test]
fn stack_limit_message_is_engine_identical() {
    // A host thread big enough for the walker to recurse 25 guest frames
    // is the default test stack; no spawn needed at this shallow limit.
    check_limit_err(
        "int f(int n) { return f(n + 1); } int main() { return f(0); }",
        |m| m.limits().set_stack_limit(25),
        "guest limit: guest stack overflow (recursion deeper than 25 frames)",
    );
}

#[test]
fn guest_mem_limit_message_is_engine_identical() {
    // Leak allocations until the governor's ceiling trips; the ceiling is
    // far below the heap arena, so only the governor can be the trapper.
    check_limit_err(
        "int main() { while (1) { void* p = malloc(4096); } return 0; }",
        |m| m.limits().set_mem_limit(Some(65536)),
        "guest limit: guest memory limit exceeded (65536-byte ceiling)",
    );
}

#[test]
fn frontend_errors_are_typed() {
    // Satellite fix: parse/sema failures surface stage + position instead
    // of a flattened trap string.
    let e = Machine::from_source("int main() { return 1 +; }").err().expect("must fail");
    let s = e.to_string();
    assert!(s.starts_with("parse error at 1:"), "got: {s}");
    let e = Machine::from_source("int main() { return nope; }x").err().expect("must fail");
    assert!(e.to_string().contains("error at"), "got: {e}");
    match Machine::from_source(
        "int f() { return 0; } int f(int x) { return x; } int main() { int y = f(1); return y; }",
    ) {
        Ok(_) => {}
        Err(e) => panic!("shadowed redefinition should still load: {e}"),
    }
}
