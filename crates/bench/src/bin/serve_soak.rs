//! `serve_soak` — the batch-server soak driver.
//!
//! Stands up a [`serve::Server`] over a simulated device fleet, registers
//! N tenants (each with its own guest program and a distinct stride
//! weight), pushes a configurable number of parameterized jobs through
//! the scheduler, and reports throughput, per-tenant latency percentiles,
//! affinity placement counts, and admission rejections. One deliberately
//! impossible job (a `mem_hint` no device could satisfy) proves the
//! memory admission gate end to end.
//!
//! ```text
//! serve_soak [--jobs N] [--tenants T] [--devices D] [--workers W] [--json PATH]
//! ```
//!
//! `--json` writes the `ompi-nano/serve/v1` artifact the CI smoke job
//! asserts on (jobs completed, overload rejections, non-empty latency
//! percentiles).

use std::time::Instant;

use serve::{JobSpec, ServeConfig, ServeError, Server, TenantConfig};
use vmcommon::Value;

fn tenant_source(c: u32) -> String {
    format!(
        r#"
int job(int k) {{
    int n = 256;
    float x[256];
    for (int i = 0; i < n; i++) x[i] = (float) (i + k);
    #pragma omp target teams distribute parallel for map(tofrom: x[0:n])
    for (int i = 0; i < n; i++)
        x[i] = 2.0f * x[i] + {c}.0f;
    float s = 0.0f;
    for (int i = 0; i < n; i++) s = s + x[i];
    return (int) s;
}}
int main() {{ return job(0); }}
"#
    )
}

struct TenantRow {
    name: String,
    completed: u64,
    p50: u64,
    p95: u64,
    p99: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1000usize;
    let mut tenants = 3usize;
    let mut devices = 2usize;
    let mut workers = 0usize;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                jobs = args[i + 1].parse().expect("jobs");
                i += 2;
            }
            "--tenants" => {
                tenants = args[i + 1].parse().expect("tenants");
                i += 2;
            }
            "--devices" => {
                devices = args[i + 1].parse().expect("devices");
                i += 2;
            }
            "--workers" => {
                workers = args[i + 1].parse().expect("workers");
                i += 2;
            }
            "--json" => {
                json_path = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: serve_soak [--jobs N] [--tenants T] [--devices D] \
                     [--workers W] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(tenants >= 1 && devices >= 1 && jobs >= tenants);

    let dir = std::env::temp_dir().join(format!("ompinano-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = obs::Obs::disabled();
    let mut cfg = ServeConfig::new(&dir);
    cfg.runner.num_devices = devices;
    cfg.runner.jit_cache_dir = dir.join("jit");
    cfg.runner.obs = Some(obs.clone());
    cfg.workers = workers;
    let server = Server::new(&cfg).unwrap_or_else(|e| {
        eprintln!("server construction failed: {e}");
        std::process::exit(1);
    });

    let names: Vec<String> = (0..tenants).map(|t| format!("t{t}")).collect();
    let mut programs = Vec::new();
    for (t, name) in names.iter().enumerate() {
        // Distinct weights (1, 2, 3, ... capped at 4) exercise the stride
        // scheduler with an uneven share target.
        let weight = (t as u32 % 4) + 1;
        server.register_tenant(name, TenantConfig { weight, max_inflight: 2, queue_cap: jobs + 2 });
        programs.push(server.register_program(name, &tenant_source(t as u32 + 1)).unwrap());
    }

    server.start();
    let started = Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    for j in 0..jobs {
        let t = j % tenants;
        let mut spec = JobSpec::new(programs[t]);
        spec.entry = "job".to_string();
        spec.args = vec![Value::I32((j % 8) as i32)];
        match server.submit(&names[t], spec) {
            Ok(id) => handles.push(id),
            Err(e) => {
                eprintln!("submit {j} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // The admission-gate proof: no device can ever free 2^50 bytes.
    let mut hog = JobSpec::new(programs[0]);
    hog.entry = "job".to_string();
    hog.args = vec![Value::I32(0)];
    hog.mem_hint = 1 << 50;
    match server.submit(&names[0], hog) {
        Err(ServeError::Overloaded { reason: "mem_pressure" }) => {}
        other => {
            eprintln!("expected a mem_pressure rejection, got {other:?}");
            std::process::exit(1);
        }
    }

    let mut failed = 0u64;
    for id in handles {
        if server.wait(id).value.is_err() {
            failed += 1;
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    server.shutdown();

    let pid = server.serve_pid();
    let m = &obs.metrics;
    let counter = |name: &str| m.counter(pid, name);
    let completed = counter("serve.jobs_completed");
    let rejected = counter("serve.rejected.overload");

    let rows: Vec<TenantRow> = names
        .iter()
        .map(|name| {
            let h = m.hist(pid, &format!("job_latency_us.{name}"));
            let pct = |p: f64| h.as_ref().and_then(|h| h.percentile(p)).unwrap_or(0);
            TenantRow {
                name: name.clone(),
                completed: counter(&format!("serve.jobs_completed.{name}")),
                p50: pct(50.0),
                p95: pct(95.0),
                p99: pct(99.0),
            }
        })
        .collect();

    println!(
        "# serve_soak: {completed} jobs / {tenants} tenants / {devices} devices in {wall_s:.2}s \
         ({:.0} jobs/s), {failed} failed, {rejected} rejected",
        completed as f64 / wall_s
    );
    for r in &rows {
        println!(
            "#   {}: completed={} p50={}us p95={}us p99={}us",
            r.name, r.completed, r.p50, r.p95, r.p99
        );
    }
    println!(
        "#   affinity: first={} hit={} miss={} reroute={} host={}",
        counter("serve.affinity.first"),
        counter("serve.affinity.hit"),
        counter("serve.affinity.miss"),
        counter("serve.affinity.reroute"),
        counter("serve.affinity.host"),
    );

    if let Some(path) = json_path {
        let json = render_json(&server, &obs, wall_s, failed, &rows);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("# json written to {}", path.display());
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (no serde in the tree), `ompi-nano/serve/v1`.
fn render_json(
    server: &Server,
    obs: &std::sync::Arc<obs::Obs>,
    wall_s: f64,
    failed: u64,
    rows: &[TenantRow],
) -> String {
    let pid = server.serve_pid();
    let c = |name: &str| obs.metrics.counter(pid, name);
    let all = obs.metrics.hist(pid, "job_latency_us");
    let pct = |p: f64| all.as_ref().and_then(|h| h.percentile(p)).unwrap_or(0);
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"ompi-nano/serve/v1\",\n");
    s.push_str(&format!("  \"devices\": {},\n", server.num_devices()));
    s.push_str(&format!("  \"wall_s\": {wall_s:.6},\n"));
    s.push_str("  \"serve\": {\n");
    s.push_str(&format!("    \"jobs_submitted\": {},\n", c("serve.jobs_submitted")));
    s.push_str(&format!("    \"jobs_completed\": {},\n", c("serve.jobs_completed")));
    s.push_str(&format!("    \"jobs_failed\": {failed},\n"));
    s.push_str(&format!(
        "    \"rejected\": {{\"overload\": {}, \"mem_pressure\": {}}},\n",
        c("serve.rejected.overload"),
        c("serve.rejected.overload.mem_pressure")
    ));
    s.push_str(&format!(
        "    \"affinity\": {{\"first\": {}, \"hit\": {}, \"miss\": {}, \"reroute\": {}, \
         \"host\": {}}},\n",
        c("serve.affinity.first"),
        c("serve.affinity.hit"),
        c("serve.affinity.miss"),
        c("serve.affinity.reroute"),
        c("serve.affinity.host")
    ));
    s.push_str(&format!(
        "    \"job_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}\n",
        pct(50.0),
        pct(95.0),
        pct(99.0)
    ));
    s.push_str("  },\n");
    s.push_str("  \"tenants\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"completed\": {}, \"job_latency_us\": \
             {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}}}{}\n",
            r.name,
            r.completed,
            r.p50,
            r.p95,
            r.p99,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
