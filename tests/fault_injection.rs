//! Deterministic fault-injection tests for the robust device runtime:
//! transient faults are retried to success, terminal faults latch the
//! device broken and degrade to host execution with identical results,
//! and JIT-cache corruption is invalidated and recompiled.

use std::sync::Arc;

use ompi_nano::unibench::{app_by_name, compile_omp, run_once, runner_config};
use ompi_nano::{BinMode, ExecMode, FaultPlan, Ompicc, Runner, RunnerConfig, Value};

/// The paper's Fig. 1 SAXPY; `main` returns the number of wrong elements,
/// so `I32(0)` proves the computed `y` is bit-identical to the host-side
/// expectation regardless of where the region actually executed.
const SAXPY: &str = r#"
void saxpy_device(float a, float *x, float *y, int size)
{
    #pragma omp target map(to: a, size, x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main() {
    int n = 300;
    float x[300];
    float y[300];
    for (int i = 0; i < n; i++) { x[i] = (float) i; y[i] = 0.5f; }
    saxpy_device(3.0f, x, y, n);
    int bad = 0;
    for (int i = 0; i < n; i++)
        if (y[i] != 3.0f * (float) i + 0.5f) bad++;
    return bad;
}
"#;

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn plan(text: &str) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(FaultPlan::parse(text).expect("valid fault plan")))
}

fn saxpy_runner(tag: &str, fault: &str) -> Runner {
    let app = Ompicc::new(work(tag)).compile(SAXPY).unwrap();
    let cfg = RunnerConfig { fault_plan: plan(fault), ..Default::default() };
    Runner::new(&app, &cfg).unwrap()
}

/// A transient launch fault (two failing calls, then clean) is retried
/// within the default budget; the program still succeeds on the device.
#[test]
fn transient_launch_fault_is_retried_to_success() {
    let runner = saxpy_runner("launch-transient", "launch@1x2");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.retries, 2, "both failing launch attempts must be retried");
    assert!(!runner.device_broken(), "transient faults must not latch the device");
    assert!(clk.launches >= 1, "the retried launch must eventually run");
}

/// Transient faults on the copy-in path are likewise absorbed by retry.
#[test]
fn transient_h2d_fault_is_retried_to_success() {
    let runner = saxpy_runner("h2d-transient", "h2d@1x1");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.retries, 1);
    assert!(!runner.device_broken());
}

/// A transient fault that outlives the retry budget is a genuine error:
/// it surfaces to the caller instead of being silently degraded.
#[test]
fn exhausted_retry_budget_surfaces_the_error() {
    let runner = saxpy_runner("launch-exhausted", "launch@1x9");
    let err = runner.run_main().unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "error must carry the fault diagnostic, got: {err}"
    );
    assert!(!runner.device_broken(), "a transient fault never latches the device");
    assert_eq!(runner.dev_clock().retries, 3, "default budget is three retries");
}

/// Device initialization fails terminally: every target region runs on the
/// host from the start, and the result is still correct.
#[test]
fn terminal_init_fault_falls_back_to_host() {
    let runner = saxpy_runner("init-terminal", "init@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken(), "terminal init fault must latch the device");
    assert_eq!(runner.dev_clock().launches, 0, "nothing may reach the device");
}

/// The device dies mid-region (after the copy-in, at launch): the region
/// re-executes on the host against the still-authoritative host memory.
#[test]
fn terminal_launch_fault_falls_back_mid_region() {
    let runner = saxpy_runner("launch-terminal", "launch@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken(), "terminal launch fault must latch the device");
    let clk = runner.dev_clock();
    assert_eq!(clk.launches, 0, "no launch ever completed");
    assert!(clk.h2d_bytes > 0, "the copy-in had already happened");
}

/// The device dies *after* a successful launch, at the copy-back: the
/// device results are lost, host memory is still pre-kernel state, and the
/// region must re-execute on the host rather than silently keep stale data.
#[test]
fn terminal_d2h_fault_falls_back_after_launch() {
    let runner = saxpy_runner("d2h-terminal", "d2h@1x*");
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert!(runner.device_broken());
    let clk = runner.dev_clock();
    assert!(clk.launches >= 1, "the kernel itself ran fine");
    assert_eq!(clk.d2h_bytes, 0, "no copy-back ever committed");
}

/// If one buffer's copy-back commits and a later one is lost, host state is
/// mixed — re-executing would double-apply. That must be a hard error, not
/// a silent fallback.
#[test]
fn copy_back_loss_after_partial_commit_is_an_error() {
    const TWO_OUT: &str = r#"
int main() {
    int n = 64;
    float y[64];
    float z[64];
    for (int i = 0; i < n; i++) { y[i] = 1.0f; z[i] = 2.0f; }
    #pragma omp target map(tofrom: y[0:n], z[0:n])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++) { y[i] = y[i] + 1.0f; z[i] = z[i] + 1.0f; }
    }
    return 0;
}
"#;
    let app = Ompicc::new(work("partial-commit")).compile(TWO_OUT).unwrap();
    // d2h call #1 (first unmap) commits, call #2 is lost terminally.
    let cfg = RunnerConfig { fault_plan: plan("d2h@2x*"), ..Default::default() };
    let runner = Runner::new(&app, &cfg).unwrap();
    let err = runner.run_main().unwrap_err();
    assert!(
        err.to_string().contains("partial commit"),
        "expected the partial-commit diagnostic, got: {err}"
    );
    assert!(runner.device_broken());
}

/// Host fallback is bit-identical to device execution for a unibench app:
/// the same compiled binary, run once healthy and once with a dead device,
/// produces the exact same output bits.
#[test]
fn host_fallback_bit_identical_for_unibench_app() {
    let app = app_by_name("atax").expect("atax is a unibench app");
    let n = app.test_size;
    let dir = work("unibench-atax");
    let compiled = compile_omp(&app, &dir);

    let cfg_ok = runner_config((app.footprint)(n), ExecMode::Functional, false);
    let dev_runner = Runner::new(&compiled, &cfg_ok).unwrap();
    let dev_out = run_once(&app, &dev_runner, n).unwrap();
    assert!(!dev_runner.device_broken());
    assert!(dev_runner.dev_clock().launches > 0, "healthy run must use the device");

    let cfg_bad = RunnerConfig { fault_plan: plan("launch@1x*"), ..cfg_ok };
    let host_runner = Runner::new(&compiled, &cfg_bad).unwrap();
    let host_out = run_once(&app, &host_runner, n).unwrap();
    assert!(host_runner.device_broken(), "terminal fault must latch the device");

    assert_eq!(dev_out.len(), host_out.len());
    for (i, (d, h)) in dev_out.iter().zip(&host_out).enumerate() {
        assert_eq!(
            d.to_bits(),
            h.to_bits(),
            "output[{i}] differs: device {d} vs host fallback {h}"
        );
    }
}

/// An injected JIT-cache corruption is detected on reload, invalidated and
/// recompiled — the program never sees the corrupt artifact.
#[test]
fn jit_cache_corruption_is_invalidated_and_recompiled() {
    let dir = work("jit-corrupt");
    let app = Ompicc::new(&dir).with_mode(BinMode::Ptx).compile(SAXPY).unwrap();
    let cache = dir.join("jit");

    // First process: populate the disk cache.
    let cfg = RunnerConfig { jit_cache_dir: cache.clone(), ..Default::default() };
    let warm = Runner::new(&app, &cfg).unwrap();
    assert_eq!(warm.run_main().unwrap(), Value::I32(0));
    assert_eq!(warm.dev_clock().jit_compiles, 1);

    // Second process: the fault plan corrupts the cached entry before use.
    let cfg2 = RunnerConfig { fault_plan: plan("jitcache@1x1"), ..cfg };
    let runner = Runner::new(&app, &cfg2).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    let clk = runner.dev_clock();
    assert_eq!(clk.jit_invalidations, 1, "the corrupt entry must be invalidated");
    assert_eq!(clk.jit_compiles, 1, "and recompiled rather than trusted");
    assert_eq!(clk.jit_cache_hits, 0);
    assert!(!runner.device_broken(), "cache corruption is always recoverable");

    // Third process, no fault: the republished entry is valid again.
    let cfg3 = RunnerConfig { jit_cache_dir: cache, ..Default::default() };
    let cold = Runner::new(&app, &cfg3).unwrap();
    assert_eq!(cold.run_main().unwrap(), Value::I32(0));
    assert_eq!(cold.dev_clock().jit_cache_hits, 1);
}
