//! Common virtual-machine substrate shared by the host-program interpreter
//! (`minic`) and the GPU simulator (`gpusim`).
//!
//! Both interpreters model a *guest* address space backed by a [`MemArena`]:
//! a fixed-size byte arena accessed through naturally-aligned atomic word
//! operations, so that racy guest programs (host OpenMP teams, CUDA thread
//! blocks) never become host-level data races. Guest pointers are plain
//! `u64`s whose high byte tags the address space ([`addr`]).

pub mod addr;
pub mod alloc;
pub mod fmt;
pub mod hash;
pub mod mem;
pub mod rng;
pub mod sched;
pub mod sync;
pub mod value;

pub use alloc::BlockAllocator;
pub use mem::{MemArena, MemError, MemResult};
pub use value::Value;
