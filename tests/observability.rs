//! PR-8 observability integration: guest-source hotspot attribution,
//! the flight recorder's post-mortem dump on a device latch, and the
//! profile table's offload-latency percentiles.

use std::sync::Arc;

use minic::interp::Engine;
use ompi_nano::unibench::{
    app_by_name, compile_omp, host_machine, run_host_once, run_once, runner_config,
};
use ompi_nano::{ExecMode, Runner};

fn work(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ompinano-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The fig4 `--hotspots` attribution pass: a dedicated host-sequential
/// run with the VM engine and per-pc counting forced, regardless of what
/// engine the caller had selected.
fn gemm_attribution(ambient: Engine) -> Vec<minic::interp::LineHit> {
    let app = app_by_name("gemm").expect("gemm");
    let n = app.test_size;
    let m = host_machine(&app, n).unwrap();
    m.set_engine(ambient); // what `--engine` picked...
    m.set_engine(Engine::Vm); // ...and what the attribution pass forces
    m.set_hotspots(true);
    run_host_once(&app, &m, n).unwrap_or_else(|e| panic!("gemm hotspot pass: {e}"));
    m.line_profile()
}

/// The acceptance bar for the profiler: on gemm, at least 80% of all VM
/// instructions must attribute to the kernel loop-nest lines of
/// `gemm_omp.c` (lines 8–15: the i/j/k loops and the accumulate/store
/// body), and the table must be identical whichever engine the harness
/// was otherwise running.
#[test]
fn gemm_hotspots_attribute_kernel_loop_nest() {
    let under_vm = gemm_attribution(Engine::Vm);
    let under_walker = gemm_attribution(Engine::Walker);
    assert_eq!(under_vm, under_walker, "hotspot attribution must not depend on the ambient engine");

    let total: u64 = under_vm.iter().map(|h| h.instructions).sum();
    assert!(total > 0, "no instructions attributed — hotspot collection is off");
    let loop_nest: u64 =
        under_vm.iter().filter(|h| (8..=15).contains(&h.line)).map(|h| h.instructions).sum();
    let share = loop_nest as f64 / total as f64;
    assert!(
        share >= 0.80,
        "loop nest (lines 8-15) holds {loop_nest}/{total} = {:.1}% of instructions, want >= 80%",
        100.0 * share
    );

    // Per-line category counts must be internally consistent: the six-way
    // dispatch split sums to the line's instruction count.
    for h in &under_vm {
        assert_eq!(
            h.dispatch.iter().sum::<u64>(),
            h.instructions,
            "{}:{}: dispatch categories disagree with the total",
            h.func,
            h.line
        );
    }
}

/// The walker records no attribution (it dispatches no bytecode), so a
/// hotspot table from a walker run renders the "no attribution" hint —
/// which is why fig4 forces the VM for its attribution pass.
#[test]
fn walker_records_no_attribution() {
    let app = app_by_name("gemm").expect("gemm");
    let n = app.test_size;
    let m = host_machine(&app, n).unwrap();
    m.set_engine(Engine::Walker);
    m.set_hotspots(true);
    run_host_once(&app, &m, n).unwrap();
    assert!(m.line_profile().is_empty());
}

/// A latching chaos run must leave a usable post-mortem: the flight dump
/// exists, is non-empty, parses line-by-line as JSON with strictly
/// increasing sequence numbers, and its tail covers the recovery story
/// that killed the device (recovery spans, the breaker reaching
/// `latched`) before the `flight.dump` trigger marker.
#[test]
fn flight_recorder_dumps_on_device_latch() {
    let app = app_by_name("atax").expect("atax");
    let n = app.test_size;
    let compiled = compile_omp(&app, &work("flight"));
    let dump = std::env::temp_dir().join(format!("ompinano-flight-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&dump);

    // Explicit sink so the dump path needs no environment mutation (env
    // vars race across the parallel test harness).
    let flight = Arc::new(obs::FlightRecorder::with_path(Some(dump.clone())));
    let sink = Arc::new(obs::Obs {
        tracer: obs::Tracer::with_flight(false, flight.clone()),
        metrics: obs::Metrics::with_flight(flight.clone()),
        flight,
    });
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    // Seed 45: every allocation fails terminally — the breaker spends its
    // reset budget and latches; the run completes on the host.
    cfg.fault_spec = Some("chaos:45".into());
    cfg.obs = Some(sink.clone());
    let runner = Runner::new(&compiled, &cfg).unwrap();
    run_once(&app, &runner, n).unwrap_or_else(|e| panic!("atax chaos:45 errored: {e}"));
    assert!(runner.device_broken(), "seed 45 must latch device 0");

    let text = std::fs::read_to_string(&dump).expect("flight dump written on latch");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "flight dump is empty");
    let events: Vec<obs::Json> = lines
        .iter()
        .map(|l| obs::json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line `{l}`: {e}")))
        .collect();

    let mut prev_seq = -1.0;
    for ev in &events {
        let seq = ev.get("seq").and_then(|v| v.as_f64()).expect("seq field");
        assert!(seq > prev_seq, "sequence numbers must strictly increase");
        prev_seq = seq;
        for field in ["kind", "name", "cat", "detail"] {
            assert!(ev.get(field).is_some(), "missing `{field}` in {ev:?}");
        }
    }

    let last = events.last().unwrap();
    assert_eq!(last.get("name").unwrap().as_str(), Some("flight.dump"));
    assert!(
        last.get("detail").unwrap().as_str().unwrap().contains("device latched broken"),
        "the latch, not runner drop, must have triggered the dump"
    );
    let cat = |ev: &obs::Json| ev.get("cat").unwrap().as_str().unwrap().to_string();
    assert!(
        events.iter().any(|e| cat(e) == "recovery"),
        "dump tail must include the recovery spans leading to the latch"
    );
    assert!(
        events.iter().any(|e| {
            e.get("name").unwrap().as_str() == Some("breaker")
                && e.get("detail").unwrap().as_str().unwrap().contains("latched")
        }),
        "dump tail must show the breaker latching"
    );

    // First-trigger-wins: the runner-drop post-mortem must not rewrite
    // the latch dump.
    let before = std::fs::metadata(&dump).unwrap().len();
    drop(runner);
    drop(sink);
    assert_eq!(std::fs::metadata(&dump).unwrap().len(), before);
    let _ = std::fs::remove_file(&dump);
}

/// A fault-free offloaded run populates the per-device offload-latency
/// histogram, and the profile table surfaces its percentiles.
#[test]
fn profile_table_reports_region_latency_percentiles() {
    let app = app_by_name("gemm").expect("gemm");
    let n = app.test_size;
    let compiled = compile_omp(&app, &work("latency"));
    let sink = obs::Obs::enabled();
    let mut cfg = runner_config((app.footprint)(n), ExecMode::Functional, false);
    cfg.obs = Some(sink.clone());
    let runner = Runner::new(&compiled, &cfg).unwrap();
    run_once(&app, &runner, n).unwrap();

    let h = sink.metrics.hist(0, "region_latency_us").expect("device 0 must record region latency");
    assert!(h.count >= 1, "at least one target region timed");
    let pct = |p| h.percentile(p).expect("non-empty histogram has percentiles");
    let (p50, p95, p99) = (pct(50.0), pct(95.0), pct(99.0));
    assert!(p50 > 0, "a gemm region takes simulated time");
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone");

    let table = runner.profile_table();
    assert!(table.contains("p50us"), "missing latency columns:\n{table}");
    let dev0 = table.lines().find(|l| l.starts_with("dev0")).expect("dev0 row");
    assert!(
        dev0.contains(&p50.to_string()) && dev0.contains(&p99.to_string()),
        "dev0 row must carry the histogram's percentiles:\n{table}"
    );
}
