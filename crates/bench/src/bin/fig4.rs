//! Regenerate the paper's Fig. 4 (a)–(f): execution time vs problem size
//! for the pure CUDA version and the OMPi/cudadev version of each
//! application.
//!
//! Usage:
//!   fig4 [--app NAME] [--sizes a,b,c] [--full] [--max-blocks N]
//!        [--trace PATH] [--profile] [--hotspots] [--mem SIZE] [--async]
//!        [--fuel N] [--job-timeout-ms N] [--chaos-seed N]
//!        [--engine vm|walker] [--json PATH] [--quick]
//!
//! `--engine` selects the minic execution engine for every machine in the
//! run (guest `run()` driver, host-fallback, replay): the register
//! bytecode VM (default) or the tree-walking oracle. Checksums and
//! simulated clocks are bit-identical between the two; only wall time
//! differs. `--json PATH` additionally writes a machine-readable
//! perf-trajectory artifact (wall-clock + simulated-clock per app and
//! variant, including a host-sequential series at each app's
//! `bench_size`) for the CI bench-smoke regression gate. `--quick` runs
//! the device series at each app's test size instead of the paper sizes —
//! the configuration the committed baseline and CI use.
//!
//! `--chaos-seed N` runs the OMPi variant under the chaos fault plan
//! `chaos:N` (see `gpusim::FaultPlan::chaos`): a seeded random mix of
//! transient faults, hangs and terminal failures that exercises the
//! watchdog / reset-and-replay / circuit-breaker recovery path while
//! keeping results bit-identical. Combine with `--trace` to inspect the
//! `recovery.reset` and `breaker.probe` events on the timeline. The CUDA
//! baseline is left un-faulted — it has no recovery runtime to degrade
//! through.
//!
//! `--fuel N` and `--job-timeout-ms N` arm the guest resource governor on
//! the OMPi variant (instruction budget / wall-clock deadline per `run()`
//! call — see the "Guest limits" section in the README). A tripped limit
//! surfaces as a typed error from the runner instead of a hang; the CUDA
//! baseline has no guest interpreter to govern and runs unlimited.
//!
//! `--mem 32M` caps the OMPi variant's device arena below the working set,
//! driving the memory governor's evict → stage → tile → fallback ladder
//! (the CUDA baseline keeps its full arena: it manages raw device memory
//! itself and has no governor to degrade through).
//!
//! `--async` runs the OMPi variant with async command streams: transfers
//! and launches schedule on per-region streams whose copy and compute
//! engines overlap on the simulated clock. Results are bit-identical to
//! the synchronous run (compare the `# checksum` lines); the hidden time
//! shows up in the `overlap` comment lines and as per-stream trace tracks.
//! Combine with `--mem` to see the governor's double-buffered tiling
//! pipeline transfers under compute within a single region.
//!
//! By default every app runs over its paper sizes in sampled-simulation
//! mode (see DESIGN.md for the sampling substitution). `--full` forces
//! functional simulation (slow; use small sizes). `--trace PATH` writes a
//! Chrome trace-event JSON of every run (load in Perfetto / chrome://tracing)
//! and `--profile` prints the per-device simulated-time profile table after
//! each measurement.
//!
//! `--hotspots` prints each app's guest-source "hot lines" table: VM
//! instruction/dispatch counters attributed to source lines through the
//! compiler's pc→line tables. The attribution always comes from a
//! dedicated host-sequential pass on the bytecode VM (at the app's test
//! size), regardless of `--engine` — the walker executes the same
//! statements but dispatches no bytecode, so the VM's table is *the*
//! hotspot table for both engines and `--engine vm` / `--engine walker`
//! print identical output.

use std::sync::Arc;

use gpusim::ExecMode;
use unibench::{
    all_apps, app_by_name, build_variant_cfg, host_machine, measure, output_checksum,
    run_host_once, runner_config, Variant,
};

/// One measured point for the `--json` artifact.
struct JsonRow {
    app: &'static str,
    variant: &'static str,
    n: u32,
    wall_s: f64,
    sim_s: f64,
    kernel_s: f64,
    memcpy_s: f64,
    launches: u64,
    checksum: u64,
    vm_instructions: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app_filter: Option<String> = None;
    let mut sizes_override: Option<Vec<u32>> = None;
    let mut full = false;
    let mut max_blocks = 4u32;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut profile = false;
    let mut hotspots = false;
    let mut mem_cap: Option<u64> = None;
    let mut fuel: Option<u64> = None;
    let mut job_timeout_ms: Option<u64> = None;
    let mut async_streams = false;
    let mut chaos_seed: Option<u64> = None;
    let mut engine = "vm".to_string();
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                app_filter = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" => {
                sizes_override =
                    Some(args[i + 1].split(',').map(|s| s.trim().parse().expect("size")).collect());
                i += 2;
            }
            "--full" => {
                full = true;
                i += 1;
            }
            "--max-blocks" => {
                max_blocks = args[i + 1].parse().expect("max-blocks");
                i += 2;
            }
            "--trace" => {
                trace_path = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--hotspots" => {
                hotspots = true;
                i += 1;
            }
            "--mem" => {
                mem_cap = Some(vmcommon::fmt::parse_size(&args[i + 1]).unwrap_or_else(|e| {
                    eprintln!("--mem: {e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--fuel" => {
                fuel = Some(args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("--fuel: expected an instruction budget, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--job-timeout-ms" => {
                job_timeout_ms = Some(args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("--job-timeout-ms: expected milliseconds, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--async" => {
                async_streams = true;
                i += 1;
            }
            "--chaos-seed" => {
                chaos_seed = Some(args[i + 1].parse().expect("chaos-seed"));
                i += 2;
            }
            "--engine" => {
                engine = args[i + 1].clone();
                if engine != "vm" && engine != "walker" {
                    eprintln!("--engine: expected `vm` or `walker`, got `{engine}`");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--json" => {
                json_path = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    // Every Machine built after this point (runner, host-fallback, replay,
    // host-sequential series) picks the engine up at construction.
    std::env::set_var("OMPI_ENGINE", &engine);

    let obs =
        if trace_path.is_some() || profile { obs::Obs::enabled() } else { obs::Obs::disabled() };

    let mode = if full { ExecMode::Functional } else { ExecMode::Sampled { max_blocks } };
    let work = std::env::temp_dir().join("ompi-fig4");

    let apps = match &app_filter {
        Some(name) => vec![app_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown app `{name}`; available: 3dconv bicg atax mvt gemm gramschmidt");
            std::process::exit(2);
        })],
        None => all_apps(),
    };

    println!("# Fig. 4 reproduction — simulated Jetson Nano 2GB (sm_53, 128-core Maxwell)");
    println!("# mode: {:?}; engine: {engine}; times are simulated seconds (kernel + memory operations)\n", mode);
    let mut rows: Vec<JsonRow> = Vec::new();
    for app in apps {
        let sizes: Vec<u32> = sizes_override.clone().unwrap_or_else(|| {
            if quick {
                vec![app.test_size]
            } else {
                app.paper_sizes.to_vec()
            }
        });
        println!("## {}", app.name);
        println!("{:>8}  {:>14}  {:>14}  {:>8}", "size", "CUDA [s]", "OMPi [s]", "OMPi/CUDA");
        for &n in &sizes {
            let mut row = Vec::new();
            for variant in [Variant::Cuda, Variant::OmpiCudadev] {
                let mut cfg = runner_config((app.footprint)(n), mode, true);
                cfg.obs = Some(obs.clone());
                if variant == Variant::OmpiCudadev {
                    if let Some(cap) = mem_cap {
                        let base = cfg.device_mem.unwrap_or(usize::MAX);
                        cfg.device_mem = Some((cap as usize).min(base));
                    }
                    cfg.async_streams = Some(async_streams);
                    if let Some(seed) = chaos_seed {
                        cfg.fault_spec = Some(format!("chaos:{seed}"));
                    }
                    cfg.fuel = fuel;
                    cfg.job_timeout = job_timeout_ms.map(std::time::Duration::from_millis);
                }
                let built = build_variant_cfg(&app, variant, &work, &cfg);
                // Runner::call drains the machine's VM counters into obs
                // metrics at the host-shim pid; the delta is this run's.
                let pid = built.runner.registry().num_devices() as u64;
                let insns0 = obs.metrics.counter(pid, "vm.instructions");
                let t0 = std::time::Instant::now();
                let m = measure(&app, &built, n);
                let wall_s = t0.elapsed().as_secs_f64();
                if json_path.is_some() {
                    rows.push(JsonRow {
                        app: app.name,
                        variant: if variant == Variant::Cuda { "cuda" } else { "ompi" },
                        n,
                        wall_s,
                        sim_s: m.time_s,
                        kernel_s: m.kernel_s,
                        memcpy_s: m.memcpy_s,
                        launches: m.launches,
                        checksum: m.checksum,
                        vm_instructions: obs.metrics.counter(pid, "vm.instructions") - insns0,
                    });
                }
                println!(
                    "# checksum {} n={n} {} {:#018x}",
                    app.name,
                    variant.label().replace(' ', "-"),
                    m.checksum
                );
                if async_streams && variant == Variant::OmpiCudadev {
                    println!(
                        "# overlap {} n={n}: {:.6}s hidden of {:.6}s busy",
                        app.name,
                        m.overlap_s,
                        m.time_s + m.overlap_s
                    );
                }
                if profile {
                    println!("# {} {} n={n}", app.name, variant.label());
                    for line in built.runner.profile_table().lines() {
                        println!("# {line}");
                    }
                }
                // The aggregate is the registry-level sum; show the
                // per-device split whenever more than one device is live.
                if m.per_device.len() > 1 {
                    for (i, d) in m.per_device.iter().enumerate() {
                        println!(
                            "#   {} dev{i}: total {:.6}s (kernel {:.6}s, memcpy {:.6}s), {} launches",
                            variant.label(),
                            d.total_s(),
                            d.kernel_s,
                            d.memcpy_s(),
                            d.launches
                        );
                    }
                }
                row.push(m.time_s);
            }
            println!(
                "{:>8}  {:>14.6}  {:>14.6}  {:>8.3}",
                n,
                row[0],
                row[1],
                row[1] / row[0].max(1e-12)
            );
        }
        if json_path.is_some() {
            // Host-sequential series: the guest program executed directly
            // (no translation, no device) — the engine's raw throughput,
            // which the bench-smoke CI gate watches for regressions.
            let n = app.bench_size;
            let m = host_machine(&app, n).unwrap();
            let t0 = std::time::Instant::now();
            let out = run_host_once(&app, &m, n)
                .unwrap_or_else(|e| panic!("{} host-seq failed at n={n}: {e}", app.name));
            let wall_s = t0.elapsed().as_secs_f64();
            let checksum = output_checksum(&out);
            println!(
                "# checksum {} n={n} host-seq {:#018x}  ({wall_s:.3}s wall)",
                app.name, checksum
            );
            rows.push(JsonRow {
                app: app.name,
                variant: "host-seq",
                n,
                wall_s,
                sim_s: 0.0,
                kernel_s: 0.0,
                memcpy_s: 0.0,
                launches: 0,
                checksum,
                vm_instructions: m.drain_vm_counters().instructions,
            });
        }
        if hotspots {
            print!("{}", hotspot_table(&app));
        }
        println!();
    }

    if let Some(path) = &json_path {
        match std::fs::write(path, render_json(&engine, &format!("{mode:?}"), &rows)) {
            Ok(()) => eprintln!("# perf trajectory written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = trace_path {
        match write_trace(&obs, &path) {
            Ok(()) => eprintln!("# trace written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // End-of-run flight dump (`OMPI_FLIGHT_DUMP`, no-op without it). The
    // runners share this explicit sink and therefore skip their own
    // drop-time trigger; a device latch or watchdog timeout mid-run
    // already dumped and wins over this one.
    obs.flight.post_mortem("fig4 exit");
}

/// Hand-rolled JSON for the `BENCH_fig4.json` perf-trajectory artifact —
/// no serde in the tree, and the shape is flat enough not to want it.
fn render_json(engine: &str, mode: &str, rows: &[JsonRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"ompi-nano/fig4/v1\",\n");
    s.push_str(&format!("  \"engine\": \"{engine}\",\n"));
    s.push_str(&format!("  \"mode\": \"{}\",\n", mode.replace('"', "")));
    s.push_str("  \"series\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"wall_s\": {:.6}, \
             \"sim_s\": {:.9}, \"kernel_s\": {:.9}, \"memcpy_s\": {:.9}, \"launches\": {}, \
             \"vm_instructions\": {}, \"checksum\": \"{:#018x}\"}}{}\n",
            r.app,
            r.variant,
            r.n,
            r.wall_s,
            r.sim_s,
            r.kernel_s,
            r.memcpy_s,
            r.launches,
            r.vm_instructions,
            r.checksum,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The guest-source hotspot table for one app: a dedicated attribution
/// pass on the bytecode VM (host-sequential, at the app's test size). The
/// VM is forced regardless of `--engine`, so the table is identical under
/// `--engine vm` and `--engine walker` by construction.
fn hotspot_table(app: &unibench::App) -> String {
    let n = app.test_size;
    let m = host_machine(app, n).unwrap_or_else(|e| panic!("{} hotspots: {e}", app.name));
    m.set_engine(minic::interp::Engine::Vm);
    m.set_hotspots(true);
    run_host_once(app, &m, n)
        .unwrap_or_else(|e| panic!("{} hotspot pass failed at n={n}: {e}", app.name));
    let rows: Vec<obs::HotLine> = m
        .line_profile()
        .into_iter()
        .map(|h| obs::HotLine {
            func: h.func,
            line: h.line,
            instructions: h.instructions,
            dispatch: h.dispatch,
        })
        .collect();
    obs::render_hotspots(&format!("{} n={n} (vm attribution)", app.name), &rows)
}

/// Export the combined trace of every run. Runners named their own device
/// processes as they initialized (first-wins), so only unnamed processes
/// still need labels — fig4 runners are single-device, making pid 0 the
/// offload device and pid 1 the host shim.
fn write_trace(obs: &Arc<obs::Obs>, path: &std::path::Path) -> std::io::Result<()> {
    obs.tracer.set_process_name(0, "dev0");
    obs.tracer.set_process_name(1, "host (initial device)");
    obs.tracer.write_json(path)
}
