/* gramschmidt — CUDA baseline (Polybench-ACC shape: 256x1 blocks, three
 * kernels per k iteration). */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void gs_kernel1(int n, int k, float *a, float *r)
{
    if (blockIdx.x == 0 && threadIdx.x == 0) {
        float nrm = 0.0f;
        for (int i = 0; i < n; i++)
            nrm += a[i * n + k] * a[i * n + k];
        r[k * n + k] = sqrtf(nrm);
    }
}

__global__ void gs_kernel2(int n, int k, float *a, float *r, float *q)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        q[i * n + k] = a[i * n + k] / r[k * n + k];
}

__global__ void gs_kernel3(int n, int k, float *a, float *r, float *q)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x + k + 1;
    if (j < n) {
        float s = 0.0f;
        for (int i = 0; i < n; i++)
            s += q[i * n + k] * a[i * n + j];
        r[k * n + j] = s;
        for (int i = 0; i < n; i++)
            a[i * n + j] = a[i * n + j] - q[i * n + k] * s;
    }
}

void run(int n, float *a, float *r, float *q)
{
    float *da;
    float *dr;
    float *dq;
    long bytes = (long) n * n * sizeof(float);
    cudaMalloc(&da, bytes);
    cudaMalloc(&dr, bytes);
    cudaMalloc(&dq, bytes);
    cudaMemcpy(da, a, bytes, cudaMemcpyHostToDevice);
    dim3 block(256, 1);
    for (int k = 0; k < n; k++) {
        gs_kernel1<<<dim3(1), block>>>(n, k, da, dr);
        gs_kernel2<<<dim3((n + 255) / 256), block>>>(n, k, da, dr, dq);
        gs_kernel3<<<dim3((n + 255) / 256), block>>>(n, k, da, dr, dq);
    }
    cudaMemcpy(a, da, bytes, cudaMemcpyDeviceToHost);
    cudaMemcpy(r, dr, bytes, cudaMemcpyDeviceToHost);
    cudaMemcpy(q, dq, bytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(dr);
    cudaFree(dq);
}
