//! `hostomp` — the host-side OpenMP runtime (OMPi's "ORT").
//!
//! The paper's compiler is a complete host OpenMP implementation into which
//! the device work plugs (§4.2). This crate provides that host runtime:
//! real thread teams over the (simulated Jetson Nano's) quad-core A57,
//! worksharing with all three schedules, barriers, critical sections,
//! `single`/`master`/`sections`, and the `omp_*` query API.
//!
//! The translated host program calls into this runtime through interpreter
//! hooks (`ort_*` functions, wired up in `ompi-core`); the runtime tracks
//! the current team in a thread-local so nested guest calls can query
//! `omp_get_thread_num()` etc. from any depth.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use vmcommon::sync::{Condvar, Mutex};

pub mod team;

pub use team::{Team, WsState};

/// Re-exported scheduling math (shared with the device library).
pub use vmcommon::sched;

/// Default team size: the Jetson Nano's quad-core Cortex-A57.
pub const DEFAULT_NUM_THREADS: usize = 4;

thread_local! {
    /// Stack of (team, tid) for nested runtime entry.
    static CURRENT: RefCell<Vec<(Arc<Team>, usize)>> = const { RefCell::new(Vec::new()) };
    static CRITICAL_HELD: RefCell<Vec<Arc<GuestLock>>> = const { RefCell::new(Vec::new()) };
}

/// The host runtime.
pub struct HostRt {
    /// `nthreads-var` ICV.
    pub default_threads: usize,
    /// Named critical locks (name → lock).
    criticals: Mutex<HashMap<String, Arc<GuestLock>>>,
    start: Instant,
}

impl Default for HostRt {
    fn default() -> Self {
        Self::new()
    }
}

impl HostRt {
    /// Create a runtime, honouring `OMP_NUM_THREADS`.
    pub fn new() -> HostRt {
        let default_threads = std::env::var("OMP_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_NUM_THREADS);
        HostRt { default_threads, criticals: Mutex::new(HashMap::new()), start: Instant::now() }
    }

    /// Seconds since runtime start (`omp_get_wtime`).
    pub fn wtime(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Execute a parallel region: `body(tid)` runs on `n` OS threads with a
    /// fresh team. Nested parallelism runs the inner region with 1 thread
    /// (the OpenMP default of `max-active-levels = 1`).
    pub fn parallel<F>(&self, num_threads: Option<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let nested = CURRENT.with(|c| !c.borrow().is_empty());
        let n = if nested { 1 } else { num_threads.unwrap_or(self.default_threads).max(1) };
        let team = Arc::new(Team::new(n));
        if n == 1 {
            Self::enter(team.clone(), 0);
            body(0);
            Self::exit();
            return;
        }
        std::thread::scope(|scope| {
            for tid in 1..n {
                let team = team.clone();
                let body = &body;
                scope.spawn(move || {
                    Self::enter(team, tid);
                    body(tid);
                    Self::exit();
                });
            }
            Self::enter(team.clone(), 0);
            body(0);
            Self::exit();
        });
    }

    fn enter(team: Arc<Team>, tid: usize) {
        CURRENT.with(|c| c.borrow_mut().push((team, tid)));
    }

    fn exit() {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }

    /// The current (team, tid), if the caller runs inside a parallel region.
    pub fn current(&self) -> Option<(Arc<Team>, usize)> {
        CURRENT.with(|c| c.borrow().last().cloned())
    }

    /// `omp_get_thread_num()`.
    pub fn thread_num(&self) -> usize {
        self.current().map(|(_, tid)| tid).unwrap_or(0)
    }

    /// `omp_get_num_threads()`.
    pub fn num_threads(&self) -> usize {
        self.current().map(|(t, _)| t.nthreads).unwrap_or(1)
    }

    /// `omp_in_parallel()`.
    pub fn in_parallel(&self) -> bool {
        self.current().map(|(t, _)| t.nthreads > 1).unwrap_or(false)
    }

    /// Team barrier (no-op outside a parallel region).
    pub fn barrier(&self) {
        if let Some((team, _)) = self.current() {
            team.barrier();
        }
    }

    /// Enter a (named) critical section.
    pub fn critical_enter(&self, name: &str) {
        let lock = {
            let mut map = self.criticals.lock();
            map.entry(name.to_string()).or_insert_with(|| Arc::new(GuestLock::new())).clone()
        };
        lock.lock();
        CRITICAL_HELD.with(|h| h.borrow_mut().push(lock));
    }

    /// Leave the most recently entered critical section.
    pub fn critical_exit(&self, _name: &str) {
        let lock = CRITICAL_HELD.with(|h| h.borrow_mut().pop());
        if let Some(lock) = lock {
            lock.unlock();
        }
    }

    /// `single`: true for exactly one thread of the team per region
    /// instance.
    pub fn single_enter(&self) -> bool {
        match self.current() {
            None => true,
            Some((team, tid)) => team.ws(tid).single_winner(),
        }
    }

    /// Enter a `sections` region: one worksharing instance per team pass.
    /// Call [`WsState::sections_next`] on the result to claim sections.
    pub fn sections_begin(&self) -> Arc<WsState> {
        match self.current() {
            None => Arc::new(WsState::solo(0)),
            Some((team, tid)) => team.ws(tid),
        }
    }

    /// Begin a worksharing loop instance (per-team shared scheduling state).
    pub fn loop_begin(&self, total: u64) -> Arc<WsState> {
        match self.current() {
            None => Arc::new(WsState::solo(total)),
            Some((team, tid)) => team.ws_loop(tid, total),
        }
    }
}

/// A lock with explicit lock/unlock (guest-style enter/exit pairing).
pub struct GuestLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl Default for GuestLock {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestLock {
    pub fn new() -> GuestLock {
        GuestLock { held: Mutex::new(false), cv: Condvar::new() }
    }

    pub fn lock(&self) {
        let mut h = self.held.lock();
        while *h {
            self.cv.wait(&mut h);
        }
        *h = true;
    }

    pub fn unlock(&self) {
        let mut h = self.held.lock();
        *h = false;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_runs_all_threads() {
        let rt = HostRt::new();
        let hits = AtomicUsize::new(0);
        let tids = Mutex::new(Vec::new());
        rt.parallel(Some(4), |tid| {
            hits.fetch_add(1, Ordering::SeqCst);
            tids.lock().push(tid);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        let mut t = tids.into_inner();
        t.sort_unstable();
        assert_eq!(t, vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_num_queries() {
        let rt = HostRt::new();
        assert_eq!(rt.thread_num(), 0);
        assert_eq!(rt.num_threads(), 1);
        assert!(!rt.in_parallel());
        let saw = Mutex::new(Vec::new());
        rt.parallel(Some(3), |tid| {
            assert_eq!(rt.thread_num(), tid);
            assert_eq!(rt.num_threads(), 3);
            assert!(rt.in_parallel());
            saw.lock().push(tid);
        });
        assert_eq!(saw.into_inner().len(), 3);
    }

    #[test]
    fn nested_parallel_serializes() {
        let rt = HostRt::new();
        let inner_sizes = Mutex::new(Vec::new());
        rt.parallel(Some(2), |_tid| {
            rt.parallel(Some(4), |_inner| {
                inner_sizes.lock().push(rt.num_threads());
            });
        });
        let sizes = inner_sizes.into_inner();
        assert_eq!(sizes.len(), 2);
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn barrier_orders_phases() {
        let rt = HostRt::new();
        let phase1 = AtomicUsize::new(0);
        let ok = AtomicUsize::new(0);
        rt.parallel(Some(4), |_tid| {
            phase1.fetch_add(1, Ordering::SeqCst);
            rt.barrier();
            if phase1.load(Ordering::SeqCst) == 4 {
                ok.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let rt = HostRt::new();
        let counter = AtomicUsize::new(0);
        let max_inside = AtomicUsize::new(0);
        rt.parallel(Some(4), |_tid| {
            for _ in 0..200 {
                rt.critical_enter("c");
                let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                max_inside.fetch_max(inside, Ordering::SeqCst);
                counter.fetch_sub(1, Ordering::SeqCst);
                rt.critical_exit("c");
            }
        });
        assert_eq!(max_inside.load(Ordering::SeqCst), 1, "two threads inside a critical");
    }

    #[test]
    fn distinct_critical_names_do_not_exclude() {
        let rt = HostRt::new();
        // Just check no deadlock when nesting differently-named criticals.
        rt.parallel(Some(2), |tid| {
            if tid == 0 {
                rt.critical_enter("a");
                rt.critical_exit("a");
            } else {
                rt.critical_enter("b");
                rt.critical_exit("b");
            }
        });
    }

    #[test]
    fn single_picks_one_thread_per_instance() {
        let rt = HostRt::new();
        let winners = AtomicUsize::new(0);
        rt.parallel(Some(4), |_tid| {
            for _ in 0..3 {
                if rt.single_enter() {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
                rt.barrier();
            }
        });
        assert_eq!(winners.load(Ordering::SeqCst), 3, "one winner per region instance");
    }

    #[test]
    fn sections_distribute_all() {
        let rt = HostRt::new();
        let run: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        rt.parallel(Some(3), |_tid| {
            let ws = rt.sections_begin();
            while let Some(s) = ws.sections_next(5) {
                run.lock().push(s);
            }
            rt.barrier();
        });
        let mut r = run.into_inner();
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn loop_dynamic_schedule_covers() {
        let rt = HostRt::new();
        let seen = Mutex::new(vec![false; 100]);
        rt.parallel(Some(4), |_tid| {
            let ws = rt.loop_begin(100);
            while let Some((s, e)) = ws.dynamic.next_chunk(100, 7) {
                let mut v = seen.lock();
                for i in s..e {
                    assert!(!v[i as usize]);
                    v[i as usize] = true;
                }
            }
            rt.barrier();
        });
        assert!(seen.into_inner().iter().all(|&x| x));
    }

    #[test]
    fn loop_guided_schedule_covers() {
        let rt = HostRt::new();
        let seen = Mutex::new(vec![false; 500]);
        rt.parallel(Some(4), |_tid| {
            let ws = rt.loop_begin(500);
            while let Some((s, e)) = ws.guided.next_chunk(500, 4, 1) {
                let mut v = seen.lock();
                for i in s..e {
                    assert!(!v[i as usize]);
                    v[i as usize] = true;
                }
            }
            rt.barrier();
        });
        assert!(seen.into_inner().iter().all(|&x| x));
    }

    #[test]
    fn wtime_advances() {
        let rt = HostRt::new();
        let a = rt.wtime();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(rt.wtime() > a);
    }

    #[test]
    fn guest_lock_blocks() {
        let l = Arc::new(GuestLock::new());
        l.lock();
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!t.is_finished(), "second locker must block");
        l.unlock();
        assert!(t.join().unwrap());
    }
}
