//! Device **recovery**: watchdog timeouts, reset-and-replay, and the
//! per-device circuit breaker (DESIGN.md §6).
//!
//! A terminal driver failure — a lost device, or a hang the watchdog
//! expired — no longer latches the device permanently on first sight.
//! Instead the recovery manager:
//!
//! 1. **books the watchdog wait** for hangs: the operation is charged its
//!    full deadline (`OMPI_LAUNCH_TIMEOUT_MS`) on the simulated clock and
//!    surfaces as a typed timeout;
//! 2. **opens the breaker** and charges an exponential cool-down to the
//!    simulated clock (no wall-time sleep — the cool-down is part of the
//!    virtual timeline, like retry backoff);
//! 3. **resets the device and replays the data environment**: dirty
//!    device buffers are salvaged to the host first, the arena is torn
//!    down ([`gpusim::Device::reset`]), and every live mapping is
//!    re-reserved *at its old device address* ([`gpusim::Device::
//!    reserve_at`], which bypasses fault-plan numbering) and re-uploaded
//!    from the host-authoritative copy;
//! 4. **half-opens** the breaker and re-runs the failed operation as a
//!    probe. Success closes the breaker (and refunds the reset budget);
//!    another terminal failure loops back to step 2.
//!
//! Only when `OMPI_MAX_RESETS` consecutive reset attempts fail does the
//! breaker latch and the old permanent `broken` flag engage — from then
//! on the runtime falls back to the host as before. Because replayed
//! mappings land at their exact old addresses, already-translated kernel
//! parameters stay valid and a re-executed region is bit-identical to a
//! fault-free run.

use std::sync::Arc;

use gpusim::{Device, ExecError};
use vmcommon::MemArena;

use crate::devlib::NUM_LOCKS;
use crate::error::CudadevError;

use super::CudaDev;

/// Health state of a device's recovery circuit breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: operations flow through normally.
    #[default]
    Closed,
    /// A terminal failure tripped the breaker; a cool-down is being
    /// charged before the next reset attempt.
    Open,
    /// The device was reset and replayed; a single probe operation is
    /// deciding whether it is healthy again.
    HalfOpen,
    /// The reset budget is exhausted; the device is latched broken and
    /// every operation fails fast ([`CudadevError::Broken`]).
    Latched,
}

impl BreakerState {
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Latched => "latched",
        }
    }
}

/// Per-device recovery bookkeeping (behind the host module's mutex).
#[derive(Debug, Default)]
pub(super) struct RecoveryCtl {
    /// Consecutive failed reset-and-replay attempts. Refunded to 0 when a
    /// half-open probe succeeds, so the budget bounds one failure
    /// *episode*, not the device's lifetime.
    pub resets_used: u32,
    pub state: BreakerState,
}

/// Simulated cool-down before reset attempt `n` (1-based): 10 ms
/// doubling per consecutive failure.
fn cooldown_s(attempt: u32) -> f64 {
    0.010 * (1u64 << attempt.saturating_sub(1).min(16)) as f64
}

impl CudaDev {
    /// The current health state of this device's recovery breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.recovery.lock().state
    }

    /// Transition the breaker, emitting a metric and trace instant on
    /// every actual state change.
    pub(super) fn set_breaker(&self, next: BreakerState) {
        let mut r = self.recovery.lock();
        if r.state == next {
            return;
        }
        r.state = next;
        drop(r);
        let obs = &self.cfg.obs;
        obs.metrics.incr(self.pid(), &format!("breaker.state.{}", next.name()), 1);
        obs.tracer.instant(
            self.pid(),
            0,
            "breaker",
            "recovery",
            self.now(),
            vec![("state", next.name().into())],
        );
    }

    /// Book a watchdog expiry: the hung operation is charged its full
    /// deadline on the simulated clock (the time the watchdog spent
    /// waiting before declaring the operation dead).
    pub(super) fn charge_watchdog(&self, site: &str) {
        let deadline = self.cfg.launch_timeout;
        let wait_s = deadline.as_secs_f64();
        let t0 = {
            let mut clk = self.clock.lock();
            let t = clk.total_s();
            clk.retry_backoff_s += wait_s;
            t
        };
        let obs = &self.cfg.obs;
        obs.tracer.complete(
            self.pid(),
            0,
            "watchdog timeout",
            "recovery",
            t0,
            wait_s,
            vec![("site", site.into()), ("deadline_ms", (deadline.as_millis() as u64).into())],
        );
        obs.metrics.incr(self.pid(), &format!("timeouts.{site}"), 1);
        obs.metrics.observe(self.pid(), "watchdog_wait_ms", deadline.as_millis() as u64);
        obs.flight.post_mortem("watchdog timeout");
    }

    /// Drive a terminal failure through the breaker state machine until
    /// either a half-open `probe` of the failed operation succeeds (the
    /// result is returned and the breaker closes) or the reset budget
    /// runs out (the device latches broken, as before this subsystem
    /// existed).
    ///
    /// `device` is `None` during pre-device initialization (nothing to
    /// reset — the breaker only paces re-probes). `host_mem` is required
    /// to replay mapped buffers; `None` is only valid while the data
    /// environment is empty. `extra` lists in-flight allocations
    /// (`(dev_ptr, len)`) that are not in the map table yet but must
    /// survive the reset at their addresses.
    pub(super) fn recover_terminal<T>(
        &self,
        device: Option<&Arc<Device>>,
        host_mem: Option<&MemArena>,
        site: &str,
        extra: &[(u64, u64)],
        err: ExecError,
        mut probe: impl FnMut() -> Result<T, ExecError>,
    ) -> Result<T, CudadevError> {
        let obs = &self.cfg.obs;
        let mut err = err;
        loop {
            if matches!(err, ExecError::Hang(_)) {
                self.charge_watchdog(site);
            }
            let used = self.recovery.lock().resets_used;
            if used >= self.cfg.max_resets {
                self.latch_broken(&err);
                return Err(match err {
                    ExecError::Hang(_) => CudadevError::Timeout {
                        site: site.to_string(),
                        deadline_ms: self.cfg.launch_timeout.as_millis() as u64,
                    },
                    e => CudadevError::Data(e),
                });
            }
            let attempt = used + 1;
            self.recovery.lock().resets_used = attempt;
            self.set_breaker(BreakerState::Open);
            let wait_s = cooldown_s(attempt);
            let t0 = {
                let mut clk = self.clock.lock();
                let t = clk.total_s();
                clk.retry_backoff_s += wait_s;
                t
            };
            obs.tracer.complete(
                self.pid(),
                0,
                "breaker open",
                "recovery",
                t0,
                wait_s,
                vec![
                    ("site", site.into()),
                    ("attempt", attempt.into()),
                    ("error", err.to_string().into()),
                ],
            );
            if let Some(dev) = device {
                match self.reset_and_replay(dev, host_mem, extra) {
                    Ok(replayed) => {
                        obs.metrics.incr(self.pid(), "recovery.reset", 1);
                        obs.metrics.incr(self.pid(), "recovery.replayed", replayed);
                        obs.tracer.instant(
                            self.pid(),
                            0,
                            "recovery.reset",
                            "recovery",
                            self.now(),
                            vec![("site", site.into()), ("replayed_buffers", replayed.into())],
                        );
                    }
                    // Another terminal failure mid-replay charges the same
                    // budget and loops; anything else is a host-side error
                    // recovery cannot fix.
                    Err(e) if e.is_terminal() => {
                        err = e;
                        continue;
                    }
                    Err(e) => return Err(CudadevError::Data(e)),
                }
            }
            self.set_breaker(BreakerState::HalfOpen);
            obs.metrics.incr(self.pid(), "recovery.probe", 1);
            obs.tracer.instant(
                self.pid(),
                0,
                "breaker.probe",
                "recovery",
                self.now(),
                vec![("site", site.into()), ("attempt", attempt.into())],
            );
            match probe() {
                Ok(v) => {
                    self.recovery.lock().resets_used = 0;
                    self.set_breaker(BreakerState::Closed);
                    obs.metrics.incr(self.pid(), "recovery.recovered", 1);
                    return Ok(v);
                }
                Err(e) if e.is_terminal() => {
                    err = e;
                }
                Err(e) => {
                    // The device answered (the failure is the operation's
                    // own, e.g. out-of-memory): the reset worked, so close
                    // the breaker and surface the error unchanged.
                    self.set_breaker(BreakerState::Closed);
                    return Err(CudadevError::Data(e));
                }
            }
        }
    }

    /// Tear the device down and rebuild its resident state: drain the
    /// async streams, salvage device-dirty buffers to the host, reset the
    /// arena, then re-reserve the control block and every live mapping at
    /// its old address and re-upload the host-authoritative contents.
    /// Returns the number of replayed buffers.
    fn reset_and_replay(
        &self,
        device: &Arc<Device>,
        host_mem: Option<&MemArena>,
        extra: &[(u64, u64)],
    ) -> Result<u64, ExecError> {
        self.streams.drain_and_clear(&self.clock);
        // Salvage: buffers only the device holds current (a kernel wrote
        // them, no copy-back yet) would be resurrected at their pre-kernel
        // contents by replay. Copy them home first; the host copy then
        // feeds the re-upload below.
        if let Some(hm) = host_mem {
            let dirty: Vec<(u64, u64, u64)> = self
                .maps
                .lock()
                .iter()
                .filter(|(_, e)| !e.pending && e.device_dirty && !e.host_dirty)
                .map(|(&h, e)| (h, e.dev_ptr, e.len))
                .collect();
            for (host, dev_ptr, len) in dirty {
                let mut buf = vec![0u8; len as usize];
                self.d2h_copy(device, dev_ptr, &mut buf)?;
                hm.write_bytes(vmcommon::addr::offset(host), &buf).map_err(ExecError::Mem)?;
                if let Some(e) = self.maps.lock().get_mut(&host) {
                    e.device_dirty = false;
                }
            }
        }
        device.reset();
        // Cached (unmapped) buffers died with the arena; forget them
        // without issuing frees.
        self.cache.lock().clear();
        // The runtime control block is always the arena's first
        // allocation; put it back where the device library expects it.
        if let Some(lib) = self.lib.lock().as_ref() {
            device.reserve_at(lib.lock_area, NUM_LOCKS * 4)?;
        }
        let entries: Vec<(u64, u64, u64)> = self
            .maps
            .lock()
            .iter()
            .filter(|(_, e)| !e.pending)
            .map(|(&h, e)| (h, e.dev_ptr, e.len))
            .collect();
        let mut replayed = 0u64;
        for &(_, dev_ptr, len) in &entries {
            device.reserve_at(dev_ptr, len)?;
        }
        for (host, dev_ptr, len) in entries {
            let Some(hm) = host_mem else {
                return Err(ExecError::Trap(
                    "device recovery with live mappings but no host arena".into(),
                ));
            };
            let mut buf = vec![0u8; len as usize];
            hm.read_bytes(vmcommon::addr::offset(host), &mut buf).map_err(ExecError::Mem)?;
            self.h2d_copy(device, dev_ptr, &buf)?;
            if let Some(e) = self.maps.lock().get_mut(&host) {
                // Device and host agree again.
                e.host_dirty = false;
                e.device_dirty = false;
            }
            replayed += 1;
        }
        for &(ptr, len) in extra {
            device.reserve_at(ptr, len)?;
        }
        Ok(replayed)
    }
}
