//! A minimal JSON parser — just enough to validate and query the traces
//! this crate emits (the workspace carries no external dependencies, so
//! there is no serde to lean on). Numbers are parsed as `f64`; objects
//! preserve key order.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
/// Control characters become `\u00XX` escapes; everything else is written
/// as raw UTF-8, which [`parse`] round-trips exactly. Shared by the trace
/// exporter and the flight recorder.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // A high surrogate must pair with a following
                            // `\uDC00..DFFF` low surrogate (astral chars in
                            // event names, e.g. guest trap strings). Lone
                            // surrogates fold to U+FFFD rather than erroring,
                            // so we can still load traces from sloppier
                            // writers.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{fffd}')
                                    } else {
                                        // Not a low surrogate: emit U+FFFD
                                        // for the lone high half, then the
                                        // second escape on its own.
                                        out.push('\u{fffd}');
                                        char::from_u32(lo).unwrap_or('\u{fffd}')
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape (cursor already past the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("bad \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "t": true, "z": null}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("z").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "[1] extra", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn surrogate_pairs_combine() {
        // `\\ud83d\\ude00` is the surrogate pair for U+1F600.
        let v = parse("\"\\ud83d\\ude00!\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}!"));
        // Lone halves fold to U+FFFD instead of erroring.
        assert_eq!(parse(r#""\ud83dx""#).unwrap().as_str(), Some("\u{fffd}x"));
        assert_eq!(parse(r#""\ude00""#).unwrap().as_str(), Some("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape keeps both.
        assert_eq!(parse(r#""\ud83dA""#).unwrap().as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn control_chars_round_trip() {
        let s: String = (0u8..0x20).map(|b| b as char).chain("\"\\/end".chars()).collect();
        let mut lit = String::new();
        escape_into(&mut lit, &s);
        assert_eq!(parse(&lit).unwrap().as_str(), Some(s.as_str()));
    }

    #[test]
    fn fuzzed_strings_round_trip_through_escape() {
        // Deterministic xorshift64* driving a grab-bag alphabet of the
        // characters most likely to break naive escaping.
        let alphabet: Vec<char> = ('\u{0}'..='\u{1f}')
            .chain(['"', '\\', '/', 'a', 'é', '\u{7f}', '\u{2028}', '\u{fffd}'])
            .chain(['\u{1F600}', '\u{10FFFF}', '\u{d7ff}', '\u{e000}'])
            .collect();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            state
        };
        for _ in 0..200 {
            let len = (next() % 24) as usize;
            let s: String =
                (0..len).map(|_| alphabet[(next() % alphabet.len() as u64) as usize]).collect();
            let mut lit = String::new();
            escape_into(&mut lit, &s);
            let parsed = parse(&lit).unwrap_or_else(|e| panic!("`{lit}` failed to parse: {e}"));
            assert_eq!(parsed.as_str(), Some(s.as_str()), "round-trip mismatch for {s:?}");
        }
    }
}
