//! Runtime semantics shared by the bytecode VM and the tree-walking
//! oracle: value conversions, the full C binary-operator semantics,
//! printf argument classification, and the builtin function table.
//!
//! Keeping these in one place is what makes the "bit-identical results"
//! contract between [`crate::vm`] and [`crate::walker`] checkable: both
//! engines call the same functions for every arithmetic step.

use vmcommon::addr::{self, Space};
use vmcommon::fmt::FmtArg;
use vmcommon::Value;

use crate::ast::BinOp;
use crate::interp::{IResult, InterpError, Machine};
use crate::types::Ty;

/// Convert a value to a C type (cast semantics).
pub fn convert(v: Value, ty: &Ty) -> Value {
    match ty {
        Ty::Char => Value::I32(v.as_i64() as i8 as i32),
        Ty::Int => Value::I32(v.as_i32()),
        Ty::Long => Value::I64(v.as_i64()),
        Ty::Float => Value::F32(v.as_f32()),
        Ty::Double => Value::F64(v.as_f64()),
        Ty::Ptr(_) => Value::Ptr(v.as_ptr()),
        _ => v,
    }
}

/// f32 helper so `f32 op f32` keeps single-precision rounding.
trait PseudoOp {
    fn pseudo_op(self, op: BinOp, rhs: Self) -> Self;
}

impl PseudoOp for f32 {
    fn pseudo_op(self, op: BinOp, rhs: f32) -> f32 {
        match op {
            BinOp::Add => self + rhs,
            BinOp::Sub => self - rhs,
            BinOp::Mul => self * rhs,
            BinOp::Div => self / rhs,
            BinOp::Rem => self % rhs,
            _ => f32::NAN,
        }
    }
}

/// The full C binary-operator semantics over runtime values: pointer±int
/// with the pointer operand's stride, f32-preserving float arithmetic,
/// wrapping integer arithmetic, div/rem-by-zero traps. `lstride` is the
/// stride of whichever operand is pointer-typed (1 otherwise).
#[inline]
pub fn apply_binop(op: BinOp, lv: Value, lstride: u64, rv: Value) -> IResult<Value> {
    use BinOp::*;
    // Pointer ± integer.
    if let Value::Ptr(p) = lv {
        if matches!(op, Add | Sub) {
            let off = rv.as_i64() * lstride as i64;
            let np = if op == Add { (p as i64 + off) as u64 } else { (p as i64 - off) as u64 };
            return Ok(Value::Ptr(np));
        }
    }
    if let Value::Ptr(p) = rv {
        if op == Add {
            let off = lv.as_i64() * lstride as i64;
            return Ok(Value::Ptr((p as i64 + off) as u64));
        }
    }
    let float =
        matches!(lv, Value::F32(_) | Value::F64(_)) || matches!(rv, Value::F32(_) | Value::F64(_));
    let both_f32 = matches!(lv, Value::F32(_) | Value::I32(_) | Value::I64(_))
        && matches!(rv, Value::F32(_) | Value::I32(_) | Value::I64(_))
        && (matches!(lv, Value::F32(_)) || matches!(rv, Value::F32(_)));
    if float {
        let a = lv.as_f64();
        let b = rv.as_f64();
        let r = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            Rem => a % b,
            Lt => return Ok(Value::I32((a < b) as i32)),
            Gt => return Ok(Value::I32((a > b) as i32)),
            Le => return Ok(Value::I32((a <= b) as i32)),
            Ge => return Ok(Value::I32((a >= b) as i32)),
            Eq => return Ok(Value::I32((a == b) as i32)),
            Ne => return Ok(Value::I32((a != b) as i32)),
            _ => return Err(InterpError::Trap(format!("bitwise op {op:?} on float"))),
        };
        // Preserve f32 semantics when no f64 operand participates.
        if both_f32 {
            return Ok(Value::F32(lv.as_f32().pseudo_op(op, rv.as_f32())));
        }
        return Ok(Value::F64(r));
    }
    let wide =
        matches!(lv, Value::I64(_) | Value::Ptr(_)) || matches!(rv, Value::I64(_) | Value::Ptr(_));
    let a = lv.as_i64();
    let b = rv.as_i64();
    let r: i64 = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                return Err(InterpError::Trap("integer division by zero".into()));
            }
            a.wrapping_div(b)
        }
        Rem => {
            if b == 0 {
                return Err(InterpError::Trap("integer remainder by zero".into()));
            }
            a.wrapping_rem(b)
        }
        Shl => a.wrapping_shl(b as u32),
        Shr => a.wrapping_shr(b as u32),
        BitAnd => a & b,
        BitOr => a | b,
        BitXor => a ^ b,
        Lt => return Ok(Value::I32((a < b) as i32)),
        Gt => return Ok(Value::I32((a > b) as i32)),
        Le => return Ok(Value::I32((a <= b) as i32)),
        Ge => return Ok(Value::I32((a >= b) as i32)),
        Eq => return Ok(Value::I32((a == b) as i32)),
        Ne => return Ok(Value::I32((a != b) as i32)),
        LogAnd | LogOr => unreachable!("short-circuit forms are lowered before apply_binop"),
    };
    Ok(if wide { Value::I64(r) } else { Value::I32(r as i32) })
}

/// For each conversion in a printf format: does it consume a string?
pub fn printf_arg_kinds(fmt: &str) -> Vec<bool> {
    let mut out = Vec::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            continue;
        }
        // Skip flags/width/precision/length.
        let mut conv = None;
        for c in chars.by_ref() {
            if c.is_ascii_alphabetic() && !matches!(c, 'l' | 'z' | 'h') {
                conv = Some(c);
                break;
            }
        }
        if let Some(conv) = conv {
            out.push(conv == 's');
        }
    }
    out
}

/// Format and emit a printf call whose arguments are already evaluated
/// (the argument list is zipped against the conversion kinds, exactly
/// like the walker). Returns the printf result value.
pub fn do_printf(m: &Machine, fmt: &str, args: &[Value]) -> IResult<Value> {
    let mut fargs = Vec::new();
    for (v, spec_is_str) in args.iter().zip(printf_arg_kinds(fmt)) {
        if spec_is_str {
            let s = m.mem.read_cstr(addr::offset(v.as_ptr()))?;
            fargs.push(FmtArg::Str(s));
        } else {
            fargs.push(FmtArg::Val(*v));
        }
    }
    let out = vmcommon::fmt::format(fmt, &fargs);
    let n = out.len();
    m.emit(&out);
    Ok(Value::I32(n as i32))
}

/// Builtin host functions, indexable by [`Op::CallBuiltin`]'s `which`.
pub const BUILTINS: &[&str] = &[
    "sqrt", "sqrtf", "fabs", "fabsf", "pow", "powf", "exp", "expf", "log", "logf", "sin", "cos",
    "floor", "ceil", "fmax", "fmin", "fmaxf", "fminf", "abs", "malloc", "free", "memset", "exit",
];

pub fn builtin_index(name: &str) -> Option<u16> {
    BUILTINS.iter().position(|b| *b == name).map(|i| i as u16)
}

/// Execute builtin `which` (an index into [`BUILTINS`]). Missing
/// arguments default to `I32(0)`, as in the walker.
pub fn call_builtin(m: &Machine, which: u16, args: &[Value]) -> IResult<Value> {
    let a0 = || args.first().copied().unwrap_or(Value::I32(0));
    let a1 = || args.get(1).copied().unwrap_or(Value::I32(0));
    Ok(match BUILTINS[which as usize] {
        "sqrt" => Value::F64(a0().as_f64().sqrt()),
        "sqrtf" => Value::F32(a0().as_f32().sqrt()),
        "fabs" => Value::F64(a0().as_f64().abs()),
        "fabsf" => Value::F32(a0().as_f32().abs()),
        "pow" => Value::F64(a0().as_f64().powf(a1().as_f64())),
        "powf" => Value::F32(a0().as_f32().powf(a1().as_f32())),
        "exp" => Value::F64(a0().as_f64().exp()),
        "expf" => Value::F32(a0().as_f32().exp()),
        "log" => Value::F64(a0().as_f64().ln()),
        "logf" => Value::F32(a0().as_f32().ln()),
        "sin" => Value::F64(a0().as_f64().sin()),
        "cos" => Value::F64(a0().as_f64().cos()),
        "floor" => Value::F64(a0().as_f64().floor()),
        "ceil" => Value::F64(a0().as_f64().ceil()),
        "fmax" => Value::F64(a0().as_f64().max(a1().as_f64())),
        "fmin" => Value::F64(a0().as_f64().min(a1().as_f64())),
        "fmaxf" => Value::F32(a0().as_f32().max(a1().as_f32())),
        "fminf" => Value::F32(a0().as_f32().min(a1().as_f32())),
        "abs" => Value::I32(a0().as_i32().wrapping_abs()),
        "malloc" => {
            let size = a0().as_i64().max(0) as u64;
            // Charge the governor before touching the arena: a rejected
            // request must not disturb the allocator, and a failed
            // allocation must not leave a phantom charge.
            m.limits.charge_heap(size)?;
            let off = match m.heap.lock().alloc(size) {
                Ok(off) => off,
                Err(e) => {
                    m.limits.credit_heap(size);
                    return Err(e.into());
                }
            };
            // The allocator may round the block up; grow the charge to the
            // actual size so the credit on `free` stays symmetric.
            if let Some(actual) = m.heap.lock().block_size(off) {
                if actual > size {
                    m.limits.charge_heap_unchecked(actual - size);
                }
            }
            Value::Ptr(addr::make(Space::Host, off))
        }
        "free" => {
            let p = a0().as_ptr();
            if p != 0 {
                let off = addr::offset(p);
                let mut heap = m.heap.lock();
                let size = heap.block_size(off);
                heap.free(off)?;
                drop(heap);
                // Credit only what was actually freed (a bad pointer has
                // already errored out above).
                if let Some(size) = size {
                    m.limits.credit_heap(size);
                }
            }
            Value::I32(0)
        }
        "memset" => {
            let p = addr::offset(a0().as_ptr());
            let byte = a1().as_i32() as u8;
            let len = args.get(2).copied().unwrap_or(Value::I32(0)).as_i64() as u64;
            for i in 0..len {
                m.mem.store_u8(p + i, byte)?;
            }
            a0()
        }
        "exit" => return Err(InterpError::Trap(format!("guest called exit({})", a0().as_i32()))),
        other => unreachable!("unhandled builtin {other}"),
    })
}
