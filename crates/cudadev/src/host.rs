//! The **host part** of the cudadev module (§4.2.1).
//!
//! Responsible for device discovery and *lazy* initialization, memory
//! allocation and transfers via the (simulated) CUDA driver API, the device
//! data environment (`map` clauses with reference counting, `target data`,
//! `enter`/`exit data`, `update`), and the three-phase kernel launch:
//!
//! 1. **loading** — locate the kernel binary on disk; `.cubin` files
//!    deserialize directly, `.sptx` files are JIT-assembled and linked
//!    against the device library, with a content-hash disk cache;
//! 2. **parameter preparation** — translate host addresses of mapped
//!    variables to their device counterparts;
//! 3. **launch** — set grid/block dimensions and enter the simulator
//!    (`cuLaunchKernel`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gpusim::{Device, ExecError, ExecMode, LaunchConfig, LaunchStats};
use parking_lot::Mutex;
use vmcommon::MemArena;

use crate::devlib::{exports, CudaDeviceLib, NUM_LOCKS};
use crate::jit;

/// Mapping direction of one map clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    To,
    From,
    ToFrom,
    Alloc,
    Release,
    Delete,
}

/// One live mapping in the device data environment.
#[derive(Clone, Debug)]
struct MapEntry {
    dev_ptr: u64,
    len: u64,
    refcount: u32,
    /// Copy back to host when the last reference is removed.
    copy_out: bool,
}

/// Accumulated virtual device time (the quantity the paper reports:
/// "kernel execution time, plus any required memory operations").
#[derive(Clone, Copy, Debug, Default)]
pub struct DevClock {
    pub kernel_s: f64,
    pub memcpy_s: f64,
    pub launches: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub jit_compiles: u64,
    pub jit_cache_hits: u64,
}

impl DevClock {
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.memcpy_s
    }
}

/// Configuration of a CudaDev instance.
#[derive(Clone, Debug)]
pub struct CudaDevConfig {
    /// Device DRAM size (bytes).
    pub global_mem: usize,
    /// Directory where kernel binaries live.
    pub kernel_dir: PathBuf,
    /// JIT disk-cache directory (PTX mode).
    pub jit_cache_dir: PathBuf,
    /// How much of each grid to simulate.
    pub exec_mode: ExecMode,
    /// Launch-level sampling: after a warm-up, repeated launches of the
    /// same kernel are *estimated* from recent measured launches (scaled by
    /// total thread count) instead of simulated. Used by the Fig. 4 harness
    /// for gramschmidt-style apps that launch thousands of kernels inside a
    /// host loop. Documented substitution — see DESIGN.md.
    pub launch_sampling: bool,
}

impl Default for CudaDevConfig {
    fn default() -> Self {
        let base = std::env::temp_dir().join("ompi-cudadev");
        CudaDevConfig {
            global_mem: 1 << 30,
            kernel_dir: base.join("kernels"),
            jit_cache_dir: base.join("jitcache"),
            exec_mode: ExecMode::Functional,
            launch_sampling: false,
        }
    }
}

/// The cudadev host module.
pub struct CudaDev {
    cfg: CudaDevConfig,
    /// Lazily created on first use (the paper's lazy initialization).
    device: Mutex<Option<Arc<Device>>>,
    initialized: AtomicBool,
    lib: Mutex<Option<Arc<CudaDeviceLib>>>,
    modules: Mutex<HashMap<String, Arc<sptx::Module>>>,
    maps: Mutex<HashMap<u64, MapEntry>>,
    pub clock: Mutex<DevClock>,
    /// Per-kernel launch history for launch-level sampling:
    /// (launch count, recent cycles-per-thread estimate).
    launch_hist: Mutex<HashMap<String, (u64, f64)>>,
}

impl CudaDev {
    pub fn new(cfg: CudaDevConfig) -> CudaDev {
        CudaDev {
            cfg,
            device: Mutex::new(None),
            initialized: AtomicBool::new(false),
            lib: Mutex::new(None),
            modules: Mutex::new(HashMap::new()),
            maps: Mutex::new(HashMap::new()),
            clock: Mutex::new(DevClock::default()),
            launch_hist: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the device has been fully initialized yet (it only happens
    /// when the first kernel is about to be offloaded — §4.2.1).
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// The device, initializing on first use.
    pub fn device(&self) -> Arc<Device> {
        let mut slot = self.device.lock();
        if let Some(d) = slot.as_ref() {
            return d.clone();
        }
        let d = Arc::new(Device::new(self.cfg.global_mem));
        // Reserve the device runtime control block (critical-section lock
        // words).
        let lock_area = d.mem_alloc(NUM_LOCKS * 4).expect("lock area");
        *self.lib.lock() = Some(Arc::new(CudaDeviceLib::new(lock_area)));
        *slot = Some(d.clone());
        self.initialized.store(true, Ordering::Release);
        d
    }

    fn devlib(&self) -> Arc<CudaDeviceLib> {
        self.device();
        self.lib.lock().as_ref().expect("device lib").clone()
    }

    // ------------------------------------------------- data environment

    /// Enter a mapping for `[host_addr, host_addr+len)`.
    pub fn map(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        kind: MapKind,
    ) -> Result<u64, ExecError> {
        let device = self.device();
        let mut maps = self.maps.lock();
        if let Some(entry) = maps.get_mut(&host_addr) {
            entry.refcount += 1;
            if matches!(kind, MapKind::From | MapKind::ToFrom) {
                entry.copy_out = true;
            }
            return Ok(entry.dev_ptr);
        }
        let dev_ptr = device.mem_alloc(len)?;
        if matches!(kind, MapKind::To | MapKind::ToFrom) {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(ExecError::Mem)?;
            let t = device.memcpy_h2d(dev_ptr, &buf)?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.h2d_bytes += len;
        }
        maps.insert(
            host_addr,
            MapEntry {
                dev_ptr,
                len,
                refcount: 1,
                copy_out: matches!(kind, MapKind::From | MapKind::ToFrom),
            },
        );
        Ok(dev_ptr)
    }

    /// Exit a mapping; copies back and frees when the refcount drops to 0.
    pub fn unmap(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        kind: MapKind,
    ) -> Result<(), ExecError> {
        let device = self.device();
        let mut maps = self.maps.lock();
        let entry = maps.get_mut(&host_addr).ok_or_else(|| {
            ExecError::Trap(format!("unmap of unmapped host address {host_addr:#x}"))
        })?;
        entry.refcount = entry.refcount.saturating_sub(1);
        let delete_now = kind == MapKind::Delete || entry.refcount == 0;
        if !delete_now {
            return Ok(());
        }
        let entry = maps.remove(&host_addr).unwrap();
        let want_out = entry.copy_out || matches!(kind, MapKind::From | MapKind::ToFrom);
        if want_out && kind != MapKind::Delete && kind != MapKind::Release {
            let mut buf = vec![0u8; entry.len as usize];
            let t = device.memcpy_d2h(&mut buf, entry.dev_ptr)?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(ExecError::Mem)?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.d2h_bytes += entry.len;
        }
        device.mem_free(entry.dev_ptr)?;
        Ok(())
    }

    /// `target update to(...)` / `from(...)`: refresh one side.
    pub fn update(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        to_device: bool,
    ) -> Result<(), ExecError> {
        let device = self.device();
        let maps = self.maps.lock();
        let entry = maps.get(&host_addr).ok_or_else(|| {
            ExecError::Trap(format!("target update of unmapped host address {host_addr:#x}"))
        })?;
        let len = len.min(entry.len);
        if to_device {
            let mut buf = vec![0u8; len as usize];
            host_mem
                .read_bytes(vmcommon::addr::offset(host_addr), &mut buf)
                .map_err(ExecError::Mem)?;
            let t = device.memcpy_h2d(entry.dev_ptr, &buf)?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.h2d_bytes += len;
        } else {
            let mut buf = vec![0u8; len as usize];
            let t = device.memcpy_d2h(&mut buf, entry.dev_ptr)?;
            host_mem
                .write_bytes(vmcommon::addr::offset(host_addr), &buf)
                .map_err(ExecError::Mem)?;
            let mut clk = self.clock.lock();
            clk.memcpy_s += t;
            clk.d2h_bytes += len;
        }
        Ok(())
    }

    /// Parameter preparation: the device address for a mapped host address.
    pub fn dev_addr(&self, host_addr: u64) -> Option<u64> {
        self.maps.lock().get(&host_addr).map(|e| e.dev_ptr)
    }

    /// Is anything mapped? (test/diagnostic helper)
    pub fn live_mappings(&self) -> usize {
        self.maps.lock().len()
    }

    // ------------------------------------------------------ kernel launch

    /// Loading phase: find and load the kernel module `name` (file stem) in
    /// the kernel directory.
    pub fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, ExecError> {
        if let Some(m) = self.modules.lock().get(name) {
            return Ok(m.clone());
        }
        let cubin_path = self.cfg.kernel_dir.join(format!("{name}.cubin"));
        let sptx_path = self.cfg.kernel_dir.join(format!("{name}.sptx"));
        let module: Arc<sptx::Module> = if cubin_path.exists() {
            let bytes = std::fs::read(&cubin_path)
                .map_err(|e| ExecError::Trap(format!("reading {cubin_path:?}: {e}")))?;
            Arc::new(sptx::cubin::decode(&bytes).map_err(|e| ExecError::Trap(e.to_string()))?)
        } else if sptx_path.exists() {
            // JIT path with disk cache.
            let text = std::fs::read_to_string(&sptx_path)
                .map_err(|e| ExecError::Trap(format!("reading {sptx_path:?}: {e}")))?;
            let (m, cache_hit) = jit::jit_load(&text, &self.cfg.jit_cache_dir, &exports())
                .map_err(|e| ExecError::Trap(e))?;
            let mut clk = self.clock.lock();
            if cache_hit {
                clk.jit_cache_hits += 1;
            } else {
                clk.jit_compiles += 1;
            }
            m
        } else {
            return Err(ExecError::Trap(format!(
                "kernel binary for `{name}` not found in {:?} (looked for .cubin and .sptx)",
                self.cfg.kernel_dir
            )));
        };
        sptx::verify_module(&module).map_err(|e| ExecError::Trap(e.to_string()))?;
        self.modules.lock().insert(name.to_string(), module.clone());
        Ok(module)
    }

    /// Register an in-memory module (used by tests and the quickstart
    /// example; normal operation loads from disk).
    pub fn register_module(&self, module: sptx::Module) {
        self.modules.lock().insert(module.name.clone(), Arc::new(module));
    }

    /// Launch phase (`cuLaunchKernel`): run `kernel` from module `module`
    /// with raw parameter bits.
    pub fn launch(
        &self,
        module: &str,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        params: Vec<u64>,
    ) -> Result<LaunchStats, ExecError> {
        let device = self.device();
        let lib = self.devlib();
        let m = self.load_module(module)?;
        let total_threads = grid[0] as u64
            * grid[1] as u64
            * grid[2] as u64
            * block[0] as u64
            * block[1] as u64
            * block[2] as u64;

        // Launch-level sampling: estimate repeated launches of the same
        // kernel from the measured cycles-per-thread of earlier ones.
        if self.cfg.launch_sampling {
            let key = format!("{module}:{kernel}");
            let (count, cpt) = {
                let h = self.launch_hist.lock();
                h.get(&key).copied().unwrap_or((0, 0.0))
            };
            let measure = count < 8 || count % 128 == 0;
            if !measure && cpt > 0.0 {
                let cycles = cpt * total_threads as f64;
                let time_s =
                    gpusim::timing::LAUNCH_OVERHEAD_S + cycles / device.props.clock_hz;
                self.launch_hist.lock().insert(key, (count + 1, cpt));
                let mut clk = self.clock.lock();
                clk.kernel_s += time_s;
                clk.launches += 1;
                return Ok(LaunchStats {
                    blocks_total: (grid[0] as u64) * (grid[1] as u64) * (grid[2] as u64),
                    blocks_executed: 0,
                    kernel_cycles: cycles as u64,
                    time_s,
                    ..Default::default()
                });
            }
            let cfg = LaunchConfig { grid, block, params };
            let stats =
                gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)?;
            let this_cpt = stats.kernel_cycles as f64 / total_threads.max(1) as f64;
            let new_cpt = if cpt > 0.0 { 0.7 * cpt + 0.3 * this_cpt } else { this_cpt };
            self.launch_hist.lock().insert(key, (count + 1, new_cpt));
            let mut clk = self.clock.lock();
            clk.kernel_s += stats.time_s;
            clk.launches += 1;
            return Ok(stats);
        }

        let cfg = LaunchConfig { grid, block, params };
        let stats = gpusim::launch(&device, &m, kernel, &cfg, lib.as_ref(), self.cfg.exec_mode)?;
        let mut clk = self.clock.lock();
        clk.kernel_s += stats.time_s;
        clk.launches += 1;
        Ok(stats)
    }

    /// Reset the virtual clock (per-measurement runs).
    pub fn reset_clock(&self) {
        *self.clock.lock() = DevClock::default();
    }

    pub fn kernel_dir(&self) -> &PathBuf {
        &self.cfg.kernel_dir
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.cfg.exec_mode = mode;
    }
}

