//! `ompi-bench` — the evaluation harness: regenerates every figure of the
//! paper (Fig. 4a–f) and hosts the component/ablation benches.
//!
//! * `cargo run -p ompi-bench --release --bin fig4` prints the Fig. 4
//!   series (per app: problem size vs simulated execution time for the
//!   pure-CUDA and the OMPi-cudadev versions).
//! * `cargo bench -p ompi-bench` runs the plain-harness benches: one bench
//!   per Fig. 4 subplot (small/medium sizes) plus component microbenches
//!   and the ablations called out in DESIGN.md (master/worker overhead,
//!   PTX-JIT vs cubin loading).

pub use unibench;

use std::time::Instant;

/// Minimal bench driver for the `harness = false` benches: runs `f` once to
/// warm up, then `iters` timed iterations, and prints min/mean wall time.
pub fn timeit<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // warm-up
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters as f64;
    println!("bench {name:<44} iters={iters:<5} min={min:.6}s mean={mean:.6}s");
}
