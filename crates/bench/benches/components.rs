//! Component microbenches: frontend, kernel compiler, SIMT simulator and
//! scheduling primitives. Plain harness (`harness = false`).

use gpusim::{launch, Device, ExecMode, LaunchConfig, NoLib};
use ompi_bench::timeit;

const SAXPY_CU: &str = r#"
__global__ void saxpy(float a, int n, float *x, float *y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        y[i] = a * x[i] + y[i];
}
"#;

fn bench_frontend() {
    let omp_src = unibench::app_by_name("gemm").unwrap().omp_src;
    timeit("frontend/parse_gemm", 200, || {
        minic::parse(std::hint::black_box(omp_src)).unwrap();
    });
    timeit("frontend/parse_analyze_gemm", 200, || {
        let mut p = minic::parse(std::hint::black_box(omp_src)).unwrap();
        minic::analyze(&mut p).unwrap();
    });
}

fn bench_nvcc() {
    timeit("nvcc/compile_saxpy", 200, || {
        nvccsim::compile_source(std::hint::black_box(SAXPY_CU), "saxpy").unwrap();
    });
    let m = nvccsim::compile_source(SAXPY_CU, "saxpy").unwrap();
    let text = sptx::text::print_module(&m);
    timeit("sptx/assemble_saxpy", 500, || {
        sptx::text::parse_module(std::hint::black_box(&text)).unwrap();
    });
    let bin = sptx::cubin::encode(&m);
    timeit("sptx/cubin_decode_saxpy", 500, || {
        sptx::cubin::decode(std::hint::black_box(&bin)).unwrap();
    });
}

fn bench_simulator() {
    let mut m = nvccsim::compile_source(SAXPY_CU, "saxpy").unwrap();
    nvccsim::link_module(&mut m, &[]).unwrap();
    let d = Device::new(8 << 20);
    let n = 32 * 1024u32;
    let x = d.mem_alloc(4 * n as u64).unwrap();
    let y = d.mem_alloc(4 * n as u64).unwrap();
    let cfg = LaunchConfig {
        grid: [n.div_ceil(256), 1, 1],
        block: [256, 1, 1],
        params: vec![2.0f32.to_bits() as u64, n as u64, x, y],
    };
    timeit("gpusim/saxpy_32k_functional", 10, || {
        launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Functional).unwrap();
    });
    timeit("gpusim/saxpy_32k_sampled8", 10, || {
        launch(&d, &m, "saxpy", &cfg, &NoLib, ExecMode::Sampled { max_blocks: 8 }).unwrap();
    });
}

fn bench_sched() {
    timeit("sched/static_block_1M", 1000, || {
        let mut acc = 0u64;
        for tid in 0..128u64 {
            let (s, e) = vmcommon::sched::static_block(std::hint::black_box(1 << 20), 128, tid);
            acc += e - s;
        }
        std::hint::black_box(acc);
    });
    timeit("sched/dynamic_drain_10k", 200, || {
        let st = vmcommon::sched::DynamicState::new();
        let mut n = 0u64;
        while let Some((s, e)) = st.next_chunk(10_000, 64) {
            n += e - s;
        }
        std::hint::black_box(n);
    });
}

fn main() {
    bench_frontend();
    bench_nvcc();
    bench_simulator();
    bench_sched();
}
