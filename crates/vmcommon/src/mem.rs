//! Guest memory arena with race-safe word access.
//!
//! All guest loads and stores go through naturally-aligned atomic operations
//! with `Relaxed` ordering. A guest program that races with itself (e.g. a
//! benchmark kernel with a bug) therefore observes unspecified *values*, but
//! the simulator never exhibits host-level undefined behaviour. Guest
//! synchronization primitives (CAS spin locks, named barriers) are built on
//! the atomic RMW operations below plus host-side condvars, which provide the
//! necessary happens-before edges for the values they protect — matching the
//! guidance in "Rust Atomics and Locks" on building locks from atomics.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Errors produced by guest memory accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access outside the arena: `offset..offset+size` not in bounds.
    OutOfBounds { offset: u64, size: u64 },
    /// Access not aligned to its natural alignment.
    Misaligned { offset: u64, align: u64 },
    /// Dereference of a pointer with an invalid or foreign space tag.
    BadSpace { addr: u64 },
    /// Dereference of the null guest pointer.
    Null,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { offset, size } => {
                write!(f, "guest access out of bounds: {size} bytes at offset {offset:#x}")
            }
            MemError::Misaligned { offset, align } => {
                write!(
                    f,
                    "misaligned guest access at offset {offset:#x} (need {align}-byte alignment)"
                )
            }
            MemError::BadSpace { addr } => write!(f, "invalid guest address space: {addr:#018x}"),
            MemError::Null => write!(f, "null guest pointer dereference"),
        }
    }
}

impl std::error::Error for MemError {}

pub type MemResult<T> = Result<T, MemError>;

/// A fixed-size guest memory arena.
///
/// The backing buffer is heap-allocated, zero-initialized, and 16-byte
/// aligned. The arena is `Sync`: concurrent access from many simulator
/// threads is safe because every access is atomic.
pub struct MemArena {
    base: *mut u8,
    size: usize,
    layout: Layout,
}

// SAFETY: all access to the buffer goes through atomic operations on
// naturally-aligned words; the raw pointer is never exposed.
unsafe impl Send for MemArena {}
unsafe impl Sync for MemArena {}

impl MemArena {
    /// Allocate a zeroed arena of `size` bytes (rounded up to 16).
    pub fn new(size: usize) -> MemArena {
        let size = size.max(16).next_multiple_of(16);
        let layout = Layout::from_size_align(size, 16).expect("arena layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc_zeroed(layout) };
        assert!(!base.is_null(), "guest arena allocation of {size} bytes failed");
        MemArena { base, size, layout }
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn check(&self, offset: u64, size: u64, align: u64) -> MemResult<usize> {
        let end = offset.checked_add(size).ok_or(MemError::OutOfBounds { offset, size })?;
        if end > self.size as u64 {
            return Err(MemError::OutOfBounds { offset, size });
        }
        if !offset.is_multiple_of(align) {
            return Err(MemError::Misaligned { offset, align });
        }
        Ok(offset as usize)
    }

    // SAFETY of the from_ptr uses below: `check` guarantees the address is
    // in-bounds and aligned; the arena outlives the reference; all other
    // access to the location is likewise atomic.

    #[inline]
    pub fn load_u8(&self, offset: u64) -> MemResult<u8> {
        let o = self.check(offset, 1, 1)?;
        Ok(unsafe { AtomicU8::from_ptr(self.base.add(o)).load(Ordering::Relaxed) })
    }

    #[inline]
    pub fn store_u8(&self, offset: u64, v: u8) -> MemResult<()> {
        let o = self.check(offset, 1, 1)?;
        unsafe { AtomicU8::from_ptr(self.base.add(o)).store(v, Ordering::Relaxed) };
        Ok(())
    }

    #[inline]
    pub fn load_u16(&self, offset: u64) -> MemResult<u16> {
        let o = self.check(offset, 2, 2)?;
        Ok(unsafe { AtomicU16::from_ptr(self.base.add(o) as *mut u16).load(Ordering::Relaxed) })
    }

    #[inline]
    pub fn store_u16(&self, offset: u64, v: u16) -> MemResult<()> {
        let o = self.check(offset, 2, 2)?;
        unsafe { AtomicU16::from_ptr(self.base.add(o) as *mut u16).store(v, Ordering::Relaxed) };
        Ok(())
    }

    #[inline]
    pub fn load_u32(&self, offset: u64) -> MemResult<u32> {
        let o = self.check(offset, 4, 4)?;
        Ok(unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32).load(Ordering::Relaxed) })
    }

    #[inline]
    pub fn store_u32(&self, offset: u64, v: u32) -> MemResult<()> {
        let o = self.check(offset, 4, 4)?;
        unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32).store(v, Ordering::Relaxed) };
        Ok(())
    }

    #[inline]
    pub fn load_u64(&self, offset: u64) -> MemResult<u64> {
        let o = self.check(offset, 8, 8)?;
        Ok(unsafe { AtomicU64::from_ptr(self.base.add(o) as *mut u64).load(Ordering::Relaxed) })
    }

    #[inline]
    pub fn store_u64(&self, offset: u64, v: u64) -> MemResult<()> {
        let o = self.check(offset, 8, 8)?;
        unsafe { AtomicU64::from_ptr(self.base.add(o) as *mut u64).store(v, Ordering::Relaxed) };
        Ok(())
    }

    /// Atomic compare-and-swap on a 32-bit word; returns the previous value.
    /// Uses acquire/release ordering: this is the primitive the device
    /// library's spin locks are built on, so it must publish the data the
    /// lock protects.
    pub fn cas_u32(&self, offset: u64, expected: u32, new: u32) -> MemResult<u32> {
        let o = self.check(offset, 4, 4)?;
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        Ok(match a.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => prev,
            Err(prev) => prev,
        })
    }

    /// Atomic add on a 32-bit integer word; returns the previous value.
    pub fn fetch_add_u32(&self, offset: u64, v: u32) -> MemResult<u32> {
        let o = self.check(offset, 4, 4)?;
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        Ok(a.fetch_add(v, Ordering::AcqRel))
    }

    /// Atomic add on a 64-bit integer word; returns the previous value.
    pub fn fetch_add_u64(&self, offset: u64, v: u64) -> MemResult<u64> {
        let o = self.check(offset, 8, 8)?;
        let a = unsafe { AtomicU64::from_ptr(self.base.add(o) as *mut u64) };
        Ok(a.fetch_add(v, Ordering::AcqRel))
    }

    /// Atomic compare-and-swap on a 64-bit word; returns the previous value.
    pub fn cas_u64(&self, offset: u64, expected: u64, new: u64) -> MemResult<u64> {
        let o = self.check(offset, 8, 8)?;
        let a = unsafe { AtomicU64::from_ptr(self.base.add(o) as *mut u64) };
        Ok(match a.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => prev,
            Err(prev) => prev,
        })
    }

    /// Atomic exchange on a 32-bit word; returns the previous value.
    pub fn swap_u32(&self, offset: u64, v: u32) -> MemResult<u32> {
        let o = self.check(offset, 4, 4)?;
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        Ok(a.swap(v, Ordering::AcqRel))
    }

    /// Atomic f32 add implemented as a CAS loop (the shape `atomicAdd(float*)`
    /// has on Maxwell); returns the previous value.
    pub fn fetch_add_f32(&self, offset: u64, v: f32) -> MemResult<f32> {
        let o = self.check(offset, 4, 4)?;
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        let mut cur = a.load(Ordering::Acquire);
        loop {
            let next = (f32::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return Ok(f32::from_bits(prev)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomic f64 add as a CAS loop; returns the previous value.
    pub fn fetch_add_f64(&self, offset: u64, v: f64) -> MemResult<f64> {
        let o = self.check(offset, 8, 8)?;
        let a = unsafe { AtomicU64::from_ptr(self.base.add(o) as *mut u64) };
        let mut cur = a.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return Ok(f64::from_bits(prev)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomic min on a signed 32-bit word; returns the previous value.
    pub fn fetch_min_i32(&self, offset: u64, v: i32) -> MemResult<i32> {
        let o = self.check(offset, 4, 4)?;
        // AtomicI32 and AtomicU32 have identical layout; reuse the u32 cell.
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        let mut cur = a.load(Ordering::Acquire);
        loop {
            let next = (cur as i32).min(v) as u32;
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return Ok(prev as i32),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomic max on a signed 32-bit word; returns the previous value.
    pub fn fetch_max_i32(&self, offset: u64, v: i32) -> MemResult<i32> {
        let o = self.check(offset, 4, 4)?;
        let a = unsafe { AtomicU32::from_ptr(self.base.add(o) as *mut u32) };
        let mut cur = a.load(Ordering::Acquire);
        loop {
            let next = (cur as i32).max(v) as u32;
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return Ok(prev as i32),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bulk copy out of the arena. Not atomic as a whole (like a real DMA),
    /// but each word read is atomic.
    pub fn read_bytes(&self, offset: u64, dst: &mut [u8]) -> MemResult<()> {
        self.check(offset, dst.len() as u64, 1)?;
        let mut i = 0usize;
        // Word-wise where alignment allows, byte-wise at the edges.
        while i < dst.len() {
            let off = offset + i as u64;
            if off.is_multiple_of(8) && dst.len() - i >= 8 {
                dst[i..i + 8].copy_from_slice(&self.load_u64(off)?.to_le_bytes());
                i += 8;
            } else {
                dst[i] = self.load_u8(off)?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Bulk copy into the arena; word-atomic like [`MemArena::read_bytes`].
    pub fn write_bytes(&self, offset: u64, src: &[u8]) -> MemResult<()> {
        self.check(offset, src.len() as u64, 1)?;
        let mut i = 0usize;
        while i < src.len() {
            let off = offset + i as u64;
            if off.is_multiple_of(8) && src.len() - i >= 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&src[i..i + 8]);
                self.store_u64(off, u64::from_le_bytes(w))?;
                i += 8;
            } else {
                self.store_u8(off, src[i])?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Zero a byte range.
    pub fn zero(&self, offset: u64, len: u64) -> MemResult<()> {
        self.check(offset, len, 1)?;
        let mut i = 0u64;
        while i < len {
            let off = offset + i;
            if off.is_multiple_of(8) && len - i >= 8 {
                self.store_u64(off, 0)?;
                i += 8;
            } else {
                self.store_u8(off, 0)?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Read a NUL-terminated guest string (bounded by the arena end).
    pub fn read_cstr(&self, offset: u64) -> MemResult<String> {
        let mut bytes = Vec::new();
        let mut off = offset;
        loop {
            let b = self.load_u8(off)?;
            if b == 0 {
                break;
            }
            bytes.push(b);
            off += 1;
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

impl Drop for MemArena {
    fn drop(&mut self) {
        // SAFETY: allocated in `new` with this layout.
        unsafe { dealloc(self.base, self.layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let m = MemArena::new(64);
        m.store_u32(4, 0xdead_beef).unwrap();
        m.store_u64(8, 0x0123_4567_89ab_cdef).unwrap();
        m.store_u8(1, 7).unwrap();
        assert_eq!(m.load_u32(4).unwrap(), 0xdead_beef);
        assert_eq!(m.load_u64(8).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(m.load_u8(1).unwrap(), 7);
    }

    #[test]
    fn bounds_and_alignment_checked() {
        let m = MemArena::new(32);
        assert!(matches!(m.load_u32(30), Err(MemError::OutOfBounds { .. })));
        assert!(matches!(m.load_u32(2), Err(MemError::Misaligned { .. })));
        assert!(matches!(m.store_u64(u64::MAX - 2, 0), Err(MemError::OutOfBounds { .. })));
    }

    #[test]
    fn cas_semantics() {
        let m = MemArena::new(32);
        m.store_u32(0, 5).unwrap();
        assert_eq!(m.cas_u32(0, 5, 9).unwrap(), 5);
        assert_eq!(m.load_u32(0).unwrap(), 9);
        // Failing CAS returns the current value and leaves memory untouched.
        assert_eq!(m.cas_u32(0, 5, 1).unwrap(), 9);
        assert_eq!(m.load_u32(0).unwrap(), 9);
    }

    #[test]
    fn float_atomic_add() {
        let m = MemArena::new(32);
        m.store_u32(0, 1.5f32.to_bits()).unwrap();
        assert_eq!(m.fetch_add_f32(0, 2.25).unwrap(), 1.5);
        assert_eq!(f32::from_bits(m.load_u32(0).unwrap()), 3.75);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let m = MemArena::new(64);
        let data: Vec<u8> = (0..37).collect();
        m.write_bytes(3, &data).unwrap();
        let mut out = vec![0u8; 37];
        m.read_bytes(3, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn cstr_read() {
        let m = MemArena::new(64);
        m.write_bytes(8, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(8).unwrap(), "hello");
    }

    #[test]
    fn concurrent_fetch_add_sums() {
        let m = std::sync::Arc::new(MemArena::new(64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.fetch_add_u32(16, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.load_u32(16).unwrap(), 8000);
    }
}
