//! Pipeline pass: **master/worker lowering** (§3.2, Fig. 3).
//!
//! Kernel bodies for target regions with stand-alone `parallel`
//! constructs: one master warp executes the region sequentially; the other
//! warps run `cudadev_workerfunc` waiting for parallel regions. A
//! `parallel` construct outlines its body into a `thrFunc`, pushes shared
//! variables onto the device shared-memory stack, and registers the region
//! with the workers (Fig. 3b). Worksharing constructs inside such regions
//! split iterations with the `cudadev_get_*_chunk` primitives.

use std::collections::HashMap;

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Clause, DirKind, Directive, RedOp, SchedKind};
use minic::sema::FrameInfo;
use minic::token::Pos;
use minic::types::{ArrayLen, Ty};

use crate::analyze::*;

use super::util::{
    collect_declared_names, collect_expr_names, collect_sections, collect_used_names, find_decl_ty,
    red_fold_stmt, red_identity, rename_expr, rename_idents,
};
use super::{err, long_cast, sizeof_expr, trip_count_expr, DeviceCtx, Translator, VarRole};

impl<'p> Translator<'p> {
    /// Kernel body for the master/worker scheme (§3.2, Fig. 3).
    pub(crate) fn master_worker_kernel_body(
        &mut self,
        body: &Stmt,
        roles: &[(String, Ty, VarRole)],
        scalar_writebacks: &[String],
        pos: Pos,
        kprog: &mut Program,
    ) -> TResult<Vec<Stmt>> {
        // Lower the target body in "device master" context, tracking the
        // master's local declarations so inner parallel regions can share
        // them through the shared-memory stack.
        let dctx = DeviceCtx { roles: roles.to_vec(), pos };
        let mut decls: Vec<(String, Ty)> = Vec::new();
        let lowered = self.device_stmt(body, &dctx, kprog, &mut decls)?;

        let mut master = vec![
            Stmt::If {
                cond: b::e(ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(b::call("cudadev_is_masterthr", vec![b::ident("_mw_thrid")])),
                }),
                then_s: Box::new(Stmt::Return(None)),
                else_s: None,
            },
            lowered,
        ];
        // Final values of written-back mapped scalars go to their device
        // buffers before the region ends.
        for name in scalar_writebacks {
            master.push(b::expr_stmt(b::assign(
                b::deref(b::ident(&format!("__out_{name}"))),
                b::ident(name),
            )));
        }
        master.push(b::expr_stmt(b::call("cudadev_exit_target", vec![])));
        Ok(vec![
            b::decl("_mw_thrid", Ty::Int, Some(b::member(b::ident("threadIdx"), "x"))),
            Stmt::If {
                cond: b::call("cudadev_in_masterwarp", vec![b::ident("_mw_thrid")]),
                then_s: Box::new(b::block(master)),
                else_s: Some(Box::new(b::expr_stmt(b::call(
                    "cudadev_workerfunc",
                    vec![b::ident("_mw_thrid")],
                )))),
            },
        ])
    }

    /// Lower a statement inside a master/worker target region (the master
    /// thread executes it sequentially; parallel constructs spawn regions).
    fn device_stmt(
        &mut self,
        s: &Stmt,
        ctx: &DeviceCtx,
        kprog: &mut Program,
        decls: &mut Vec<(String, Ty)>,
    ) -> TResult<Stmt> {
        if let Stmt::Decl(d) = s {
            decls.push((d.name.clone(), d.ty.clone()));
        }
        match s {
            Stmt::Omp(o) => match o.dir.kind {
                DirKind::Parallel | DirKind::ParallelFor => {
                    self.device_parallel(o, ctx, kprog, decls)
                }
                DirKind::For => {
                    // Orphaned worksharing loop outside a parallel region:
                    // the master runs it sequentially.
                    Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty))
                }
                DirKind::Single | DirKind::Master => {
                    Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty))
                }
                DirKind::Barrier => Ok(Stmt::Empty), // master-only code
                DirKind::Critical => Ok(o.body.as_deref().cloned().unwrap_or(Stmt::Empty)),
                other => Err(err(
                    o.pos,
                    format!(
                        "directive `{}` is not supported inside a target region",
                        other.spelling()
                    ),
                )),
            },
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.device_stmt(st, ctx, kprog, decls)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.device_stmt(then_s, ctx, kprog, decls)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.device_stmt(e, ctx, kprog, decls)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.device_stmt(body, ctx, kprog, decls)?),
            }),
            Stmt::While { cond, body } => Ok(Stmt::While {
                cond: cond.clone(),
                body: Box::new(self.device_stmt(body, ctx, kprog, decls)?),
            }),
            other => Ok(other.clone()),
        }
    }

    /// Lower a stand-alone `parallel` / `parallel for` inside a target
    /// region: outline a thrFunc, push shared variables to the
    /// shared-memory stack, register with the worker warps (Fig. 3b).
    fn device_parallel(
        &mut self,
        o: &OmpStmt,
        ctx: &DeviceCtx,
        kprog: &mut Program,
        master_decls: &[(String, Ty)],
    ) -> TResult<Stmt> {
        let dir = &o.dir;
        let body = o.body.as_deref().ok_or_else(|| err(o.pos, "parallel without a body"))?;
        let fn_id = self.tmp("thrFunc");
        let thr_name = format!("_{}", fn_id.trim_start_matches("__"));

        // Free variables of the parallel region, seen from the kernel body:
        // kernel parameters (roles) and master locals. We re-scan by name.
        let mut used: Vec<String> = Vec::new();
        collect_used_names(body, &mut used);
        for_each_clause_expr(dir, &mut |e| collect_expr_names(e, &mut used));
        used.sort();
        used.dedup();

        let privates: Vec<String> = dir.privates().into_iter().cloned().collect();
        let firstprivates: Vec<String> = dir.firstprivates().into_iter().cloned().collect();
        let reductions: Vec<(RedOp, String)> =
            dir.reductions().map(|(op, v)| (op, v.clone())).collect();

        // Loop var (parallel for) is private.
        let (loops, inner) = if dir.kind == DirKind::ParallelFor {
            let collapse = dir.clause_collapse();
            let (l, bdy) = canonical_nest(body, collapse)?;
            (l, bdy)
        } else {
            (Vec::new(), Stmt::Empty)
        };
        let loop_vars: Vec<&str> = loops.iter().map(|l| l.var.as_str()).collect();

        // Declared names inside the region are not free.
        let mut declared: Vec<String> = Vec::new();
        collect_declared_names(body, &mut declared);

        // Partition the used names into env entries.
        #[derive(Debug)]
        enum EnvKind {
            /// Kernel pointer param or pointer local: pass the pointer value.
            PtrValue(Ty),
            /// Shared scalar: push its address, rewrite to deref.
            SharedScalar(Ty),
            /// Value scalar copy (kernel firstprivate params).
            ValueScalar(Ty),
        }
        let mut env: Vec<(String, EnvKind)> = Vec::new();
        for name in &used {
            if loop_vars.contains(&name.as_str())
                || privates.contains(name)
                || declared.contains(name)
                || name == "threadIdx"
                || name == "blockIdx"
                || name == "blockDim"
                || name == "gridDim"
            {
                continue;
            }
            // Reduction accumulators are always shared (the region folds
            // into them atomically).
            if reductions.iter().any(|(_, r)| r == name) {
                let ty = ctx
                    .roles
                    .iter()
                    .find(|(n, ..)| n == name)
                    .map(|(_, t, _)| t.clone())
                    .or_else(|| find_decl_ty(master_decls, name))
                    .unwrap_or(Ty::Float);
                env.push((name.clone(), EnvKind::SharedScalar(ty)));
                continue;
            }
            // Explicit firstprivate: per-thread copy of the master's value.
            if firstprivates.contains(name) {
                let ty = ctx
                    .roles
                    .iter()
                    .find(|(n, ..)| n == name)
                    .map(|(_, t, _)| t.clone())
                    .or_else(|| find_decl_ty(master_decls, name))
                    .unwrap_or(Ty::Int);
                env.push((name.clone(), EnvKind::ValueScalar(ty)));
                continue;
            }
            // Kernel parameter?
            if let Some((_, ty, role)) = ctx.roles.iter().find(|(n, ..)| n == name) {
                match role {
                    VarRole::Mapped { param_ty, .. } => {
                        env.push((name.clone(), EnvKind::PtrValue(param_ty.clone())));
                    }
                    // Scalars are *shared* in a parallel region (OpenMP
                    // default): the region writes through to the master's
                    // copy via the shared-memory stack.
                    VarRole::FirstPrivate => {
                        env.push((name.clone(), EnvKind::SharedScalar(ty.clone())));
                    }
                    VarRole::Reduction(_) => {
                        env.push((name.clone(), EnvKind::SharedScalar(ty.clone())));
                    }
                }
                continue;
            }
            // Master local (declared in the target body, outside this
            // region): shared through the shared-memory stack.
            if let Some(ty) = find_decl_ty(master_decls, name) {
                if ty.decayed().is_ptr() {
                    env.push((name.clone(), EnvKind::PtrValue(ty.decayed())));
                } else {
                    env.push((name.clone(), EnvKind::SharedScalar(ty)));
                }
                continue;
            }
            // Unknown name: probably a function — ignore.
        }

        // Reduction vars already covered as SharedScalar via roles; for
        // master-local reductions add them.
        for (_, rname) in &reductions {
            if !env.iter().any(|(n, _)| n == rname) {
                if let Some(ty) = find_decl_ty(master_decls, rname) {
                    env.push((rname.clone(), EnvKind::SharedScalar(ty)));
                }
            }
        }

        // ---- registration block (master side) ----
        let vars_name = self.tmp("vars");
        let vp_name = self.tmp("vp");
        let nslots = env.len().max(1);
        let mut reg: Vec<Stmt> = Vec::new();
        reg.push(b::decl(
            &vars_name,
            Ty::Array(Box::new(Ty::Long), ArrayLen::Const(nslots as u64)),
            None,
        ));
        let mut pushes: Vec<(String, Expr, Expr)> = Vec::new(); // (kind, addr, size) for pops
        let mut copies: Vec<Stmt> = Vec::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let slot_lhs = b::index(b::ident(&vars_name), b::int(i as i64));
            match kind {
                EnvKind::PtrValue(_) => {
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call("cudadev_getaddr", vec![b::ident(name)])),
                    )));
                }
                EnvKind::SharedScalar(ty) => {
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call(
                            "cudadev_push_shmem",
                            vec![b::addr_of(b::ident(name)), sizeof_expr(ty)],
                        )),
                    )));
                    pushes.push((name.clone(), b::addr_of(b::ident(name)), sizeof_expr(ty)));
                }
                EnvKind::ValueScalar(ty) => {
                    // Copy the value so its address can be pushed.
                    let cp = self.tmp("cp");
                    copies.push(b::decl(&cp, ty.clone(), Some(b::ident(name))));
                    reg.push(b::expr_stmt(b::assign(
                        slot_lhs,
                        long_cast(b::call(
                            "cudadev_push_shmem",
                            vec![b::addr_of(b::ident(&cp)), sizeof_expr(ty)],
                        )),
                    )));
                    pushes.push((cp.clone(), b::addr_of(b::ident(&cp)), sizeof_expr(ty)));
                }
            }
        }
        let mut block: Vec<Stmt> = copies;
        block.extend(reg);
        // Push the vars array itself so the workers can reach it.
        block.push(b::decl(
            &vp_name,
            Ty::Long,
            Some(long_cast(b::call(
                "cudadev_push_shmem",
                vec![
                    b::addr_of(b::index(b::ident(&vars_name), b::int(0))),
                    b::int(8 * nslots as i64),
                ],
            ))),
        ));
        let nthr = match dir.clause_num_threads() {
            Some(e) => e.clone(),
            None => b::int(crate::MW_WORKERS as i64),
        };
        block.push(b::expr_stmt(b::call(
            "cudadev_register_parallel",
            vec![b::ident(&thr_name), b::ident(&vp_name), nthr],
        )));
        block.push(b::expr_stmt(b::call(
            "cudadev_pop_shmem",
            vec![b::addr_of(b::index(b::ident(&vars_name), b::int(0))), b::int(8 * nslots as i64)],
        )));
        for (_, addr, size) in pushes.iter().rev() {
            block
                .push(b::expr_stmt(b::call("cudadev_pop_shmem", vec![addr.clone(), size.clone()])));
        }

        // ---- thrFunc (worker side) ----
        let mut tbody: Vec<Stmt> = Vec::new();
        let mut rename: HashMap<String, Expr> = HashMap::new();
        for (i, (name, kind)) in env.iter().enumerate() {
            let load = b::deref(b::cast(
                Ty::Ptr(Box::new(Ty::Long)),
                b::bin(BinOp::Add, b::ident("__envp"), b::int(8 * i as i64)),
            ));
            match kind {
                EnvKind::PtrValue(pty) => {
                    tbody.push(b::decl(name, pty.clone(), Some(b::cast(pty.clone(), load))));
                }
                EnvKind::SharedScalar(ty) => {
                    let pname = format!("__shp_{name}");
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(&pname, pty.clone(), Some(b::cast(pty, load))));
                    rename.insert(name.clone(), b::deref(b::ident(&pname)));
                }
                EnvKind::ValueScalar(ty) => {
                    let pty = Ty::Ptr(Box::new(ty.clone()));
                    tbody.push(b::decl(name, ty.clone(), Some(b::deref(b::cast(pty, load)))));
                }
            }
        }
        // Privates.
        for pv in &privates {
            let ty = find_decl_ty(master_decls, pv).unwrap_or(Ty::Int);
            tbody.push(b::decl(pv, ty, None));
        }
        // Reduction locals (shadow the shared name inside the loop body).
        let mut red_renames: HashMap<String, Expr> = HashMap::new();
        for (op, rname) in &reductions {
            let local = format!("__redl_{rname}");
            let ty = ctx
                .roles
                .iter()
                .find(|(n, ..)| n == rname)
                .map(|(_, t, _)| t.clone())
                .or_else(|| find_decl_ty(master_decls, rname))
                .unwrap_or(Ty::Float);
            tbody.push(b::decl(&local, ty.clone(), Some(red_identity(*op, &ty))));
            red_renames.insert(rname.clone(), b::ident(&local));
        }

        if dir.kind == DirKind::ParallelFor {
            tbody.extend(self.region_worksharing_loop(
                &loops,
                &inner,
                dir,
                &red_renames,
                &rename,
            )?);
        } else {
            let mut body2 = body.clone();
            rename_idents(&mut body2, &red_renames);
            rename_idents(&mut body2, &rename);
            let lowered = self.region_stmt(&body2)?;
            tbody.push(lowered);
        }

        // Fold reductions into shared accumulators.
        for (op, rname) in &reductions {
            let ty = ctx
                .roles
                .iter()
                .find(|(n, ..)| n == rname)
                .map(|(_, t, _)| t.clone())
                .or_else(|| find_decl_ty(master_decls, rname))
                .unwrap_or(Ty::Float);
            let target_addr = if let Some(r) = rename.get(rname) {
                // (*__shp_r) → &(*__shp_r)
                b::addr_of(r.clone())
            } else {
                b::addr_of(b::ident(rname))
            };
            tbody.push(red_fold_stmt(target_addr, b::ident(&format!("__redl_{rname}")), &ty, *op));
        }

        kprog.items.push(Item::Func(FuncDef {
            sig: FuncSig {
                name: thr_name.clone(),
                ret: Ty::Void,
                params: vec![Param { name: "__envp".into(), ty: Ty::Long, slot: u32::MAX }],
                quals: FnQuals { global: false, device: true },
                pos: o.pos,
            },
            body: Block { stmts: tbody },
            frame: FrameInfo::default(),
            declare_target: false,
        }));

        Ok(b::block(block))
    }

    /// Worksharing loop inside a device parallel region.
    pub(crate) fn region_worksharing_loop(
        &mut self,
        loops: &[LoopInfo],
        inner: &Stmt,
        dir: &Directive,
        red_renames: &HashMap<String, Expr>,
        rename: &HashMap<String, Expr>,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__rtc{i}");
            let mut tc = trip_count_expr(l);
            // Bounds may reference shared/renamed vars.
            rename_expr(&mut tc, red_renames);
            rename_expr(&mut tc, rename);
            out.push(b::decl(&n, Ty::Long, Some(long_cast(tc))));
            tc_names.push(n);
        }
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__rtotal", Ty::Long, Some(total)));
        out.push(b::decl("__rmylb", Ty::Long, None));
        out.push(b::decl("__rmyub", Ty::Long, None));

        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__rit");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let mut lb = l.lb.clone();
            rename_expr(&mut lb, red_renames);
            rename_expr(&mut lb, rename);
            let val = b::bin(BinOp::Add, lb, b::cast(l.var_ty.clone(), scaled));
            iter_body.push(b::decl(&l.var, l.var_ty.clone(), Some(val)));
        }
        let mut inner2 = inner.clone();
        rename_idents(&mut inner2, red_renames);
        rename_idents(&mut inner2, rename);
        iter_body.push(self.region_stmt(&inner2)?);

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__rit", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__rit"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__rit")),
            })),
            body: Box::new(b::block(body)),
        };

        match dir.clause_schedule() {
            Some((SchedKind::Dynamic, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        "cudadev_get_dynamic_chunk",
                        vec![
                            b::int(0),
                            b::ident("__rtotal"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__rmylb")),
                            b::addr_of(b::ident("__rmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body)),
                });
            }
            Some((SchedKind::Guided, chunk)) => {
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        "cudadev_get_guided_chunk",
                        vec![
                            b::int(0),
                            b::ident("__rtotal"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__rmylb")),
                            b::addr_of(b::ident("__rmyub")),
                        ],
                    ),
                    body: Box::new(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body)),
                });
            }
            sched => {
                let chunk_e = match sched {
                    Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                    _ => b::int(0),
                };
                out.push(b::expr_stmt(b::call(
                    "cudadev_get_static_chunk",
                    vec![
                        b::int(0),
                        b::ident("__rtotal"),
                        chunk_e,
                        b::addr_of(b::ident("__rmylb")),
                        b::addr_of(b::ident("__rmyub")),
                    ],
                )));
                out.push(make_for(b::ident("__rmylb"), b::ident("__rmyub"), iter_body));
            }
        }
        Ok(out)
    }

    /// Lower OpenMP constructs inside a device parallel region (workers).
    fn region_stmt(&mut self, s: &Stmt) -> TResult<Stmt> {
        match s {
            Stmt::Omp(o) => match o.dir.kind {
                DirKind::Barrier => Ok(b::expr_stmt(b::call("cudadev_barrier", vec![]))),
                DirKind::Critical => {
                    let name = o
                        .dir
                        .clauses
                        .iter()
                        .find_map(|c| match c {
                            Clause::Name(n) => Some(n.clone()),
                            _ => None,
                        })
                        .unwrap_or_default();
                    let id = self.critical_id(&name);
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    // Per-thread mutual exclusion on a SIMT machine: lanes of
                    // a warp run in lockstep, so the critical section is
                    // serialized across lanes by divergence (§4.2.2: "warp
                    // divergence takes place when threads belonging to the
                    // same warp take different execution paths") — one lane
                    // per iteration holds the CAS lock.
                    let lc = self.tmp("lane");
                    let guarded = b::block(vec![
                        b::expr_stmt(b::call("cudadev_critical_enter", vec![b::int(id)])),
                        body,
                        b::expr_stmt(b::call("cudadev_critical_exit", vec![b::int(id)])),
                    ]);
                    Ok(Stmt::For {
                        init: Some(Box::new(b::decl(&lc, Ty::Int, Some(b::int(0))))),
                        cond: Some(b::bin(BinOp::Lt, b::ident(&lc), b::int(32))),
                        step: Some(b::e(ExprKind::IncDec {
                            pre: false,
                            inc: true,
                            expr: Box::new(b::ident(&lc)),
                        })),
                        body: Box::new(Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::bin(
                                    BinOp::Rem,
                                    b::call("omp_get_thread_num", vec![]),
                                    b::int(32),
                                ),
                                b::ident(&lc),
                            ),
                            then_s: Box::new(guarded),
                            else_s: None,
                        }),
                    })
                }
                DirKind::Single => {
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    let mut stmts = vec![
                        Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::call("omp_get_thread_num", vec![]),
                                b::int(0),
                            ),
                            then_s: Box::new(b::expr_stmt(b::call("cudadev_single_reset", vec![]))),
                            else_s: None,
                        },
                        Stmt::If {
                            cond: b::call("cudadev_single_enter", vec![]),
                            then_s: Box::new(body),
                            else_s: None,
                        },
                    ];
                    if !o.dir.clause_nowait() {
                        stmts.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(stmts))
                }
                DirKind::Master => {
                    let body = self.region_stmt(o.body.as_deref().unwrap_or(&Stmt::Empty))?;
                    Ok(Stmt::If {
                        cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                        then_s: Box::new(body),
                        else_s: None,
                    })
                }
                DirKind::Sections => {
                    let sections = collect_sections(o.body.as_deref().unwrap_or(&Stmt::Empty));
                    let n = sections.len() as i64;
                    let sname = self.tmp("s");
                    let mut dispatch: Option<Stmt> = None;
                    for (i, sec) in sections.into_iter().enumerate().rev() {
                        let sec = self.region_stmt(&sec)?;
                        dispatch = Some(Stmt::If {
                            cond: b::bin(BinOp::Eq, b::ident(&sname), b::int(i as i64)),
                            then_s: Box::new(sec),
                            else_s: dispatch.map(Box::new),
                        });
                    }
                    let mut stmts = vec![
                        Stmt::If {
                            cond: b::bin(
                                BinOp::Eq,
                                b::call("omp_get_thread_num", vec![]),
                                b::int(0),
                            ),
                            then_s: Box::new(b::expr_stmt(b::call(
                                "cudadev_sections_reset",
                                vec![],
                            ))),
                            else_s: None,
                        },
                        b::expr_stmt(b::call("cudadev_barrier", vec![])),
                        b::decl(&sname, Ty::Int, None),
                        Stmt::While {
                            cond: b::bin(
                                BinOp::Ge,
                                b::assign(
                                    b::ident(&sname),
                                    b::call("cudadev_sections_next", vec![b::int(n)]),
                                ),
                                b::int(0),
                            ),
                            body: Box::new(dispatch.unwrap_or(Stmt::Empty)),
                        },
                    ];
                    if !o.dir.clause_nowait() {
                        stmts.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(stmts))
                }
                DirKind::For => {
                    // Worksharing loop using the region's threads.
                    let collapse = o.dir.clause_collapse();
                    let (loops, inner) =
                        canonical_nest(o.body.as_deref().unwrap_or(&Stmt::Empty), collapse)?;
                    let ws = self.region_worksharing_loop(
                        &loops,
                        &inner,
                        &o.dir,
                        &HashMap::new(),
                        &HashMap::new(),
                    )?;
                    let mut out = vec![b::block(ws)];
                    if !o.dir.clause_nowait() {
                        out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                    }
                    Ok(b::block(out))
                }
                other => Err(err(
                    o.pos,
                    format!(
                        "directive `{}` is not supported inside a device parallel region",
                        other.spelling()
                    ),
                )),
            },
            Stmt::Block(bl) => {
                let mut out = Vec::new();
                for st in &bl.stmts {
                    out.push(self.region_stmt(st)?);
                }
                Ok(Stmt::Block(Block { stmts: out }))
            }
            Stmt::If { cond, then_s, else_s } => Ok(Stmt::If {
                cond: cond.clone(),
                then_s: Box::new(self.region_stmt(then_s)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.region_stmt(e)?)),
                    None => None,
                },
            }),
            Stmt::For { init, cond, step, body } => Ok(Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.region_stmt(body)?),
            }),
            Stmt::While { cond, body } => {
                Ok(Stmt::While { cond: cond.clone(), body: Box::new(self.region_stmt(body)?) })
            }
            other => Ok(other.clone()),
        }
    }
}
