//! Lowering of (CUDA-dialect) mini-C functions to SPTX.
//!
//! This is the "nvcc" middle end of the reproduction: the OMPi translator
//! emits CUDA C kernel files, and this module compiles each function of
//! such a file to the structured kernel IR. Scalar locals live in virtual
//! registers; arrays and address-taken locals are placed in per-thread
//! `.local` memory; `__shared__` locals go to the block's static shared
//! allocation — mirroring how nvcc assigns state spaces.

use std::collections::HashMap;

use minic::ast::*;
use minic::sema::ProgramInfo;
use minic::token::Pos;
use minic::types::{ArrayLen, Ty};
use sptx::builder::{op, FnBuilder};
use sptx::{BinOp as IrBin, CvtTy, Inst, MemTy, Operand, Reg, ScalarTy, UnOp as IrUn};

/// Compilation error.
#[derive(Clone, Debug)]
pub struct CompileError {
    pub pos: Pos,
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel compile error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for CompileError {}

type CResult<T> = Result<T, CompileError>;

/// Compile an analyzed CUDA-dialect program into an (unlinked) SPTX module.
pub fn compile_program(
    prog: &Program,
    _info: &ProgramInfo,
    module_name: &str,
) -> CResult<sptx::Module> {
    // Assign indices to all function definitions first (forward calls).
    let mut fn_indices: HashMap<String, u32> = HashMap::new();
    let mut fn_sigs: HashMap<String, (Vec<ScalarTy>, ScalarTy)> = HashMap::new();
    let mut defs: Vec<&FuncDef> = Vec::new();
    for item in &prog.items {
        if let Item::Func(f) = item {
            fn_indices.insert(f.sig.name.clone(), defs.len() as u32);
            let params =
                f.sig.params.iter().map(|p| scalar_ty(&p.ty)).collect::<CResult<Vec<_>>>()?;
            let ret = if f.sig.ret == Ty::Void { ScalarTy::I32 } else { scalar_ty(&f.sig.ret)? };
            fn_sigs.insert(f.sig.name.clone(), (params, ret));
            defs.push(f);
        }
        if let Item::Global(g) = item {
            return Err(CompileError {
                pos: g.pos,
                msg: format!(
                    "device global variable `{}` is not supported — pass device state through kernel parameters",
                    g.name
                ),
            });
        }
    }
    let mut functions = Vec::with_capacity(defs.len());
    for f in &defs {
        functions.push(compile_function(f, &fn_indices, &fn_sigs)?);
    }
    Ok(sptx::Module {
        name: module_name.to_string(),
        arch: "sm_53".into(),
        functions,
        device_lib_linked: false,
    })
}

/// Where a local variable lives.
#[derive(Clone, Copy, Debug)]
enum Storage {
    /// Scalar in a virtual register.
    Reg(Reg, ScalarTy),
    /// Per-thread local memory (byte offset from LocalBase).
    Local(u64),
    /// Static shared memory (byte offset from SharedBase).
    Shared(u64),
}

struct LoopCtx {
    /// Register holding a per-lane "break requested" flag, if the loop body
    /// contains break/continue and needed the wrapper transformation.
    brkflag: Option<Reg>,
    /// Whether the current emission point is inside the wrapper loop.
    in_wrapper: bool,
}

struct Cg<'p> {
    b: FnBuilder,
    f: &'p FuncDef,
    storage: Vec<Storage>,
    fn_indices: &'p HashMap<String, u32>,
    fn_sigs: &'p HashMap<String, (Vec<ScalarTy>, ScalarTy)>,
    loops: Vec<LoopCtx>,
}

/// Scalar IR type for a mini-C type.
fn scalar_ty(ty: &Ty) -> CResult<ScalarTy> {
    Ok(match ty {
        Ty::Char | Ty::Int => ScalarTy::I32,
        Ty::Long => ScalarTy::I64,
        Ty::Float => ScalarTy::F32,
        Ty::Double => ScalarTy::F64,
        Ty::Ptr(_) | Ty::Array(..) => ScalarTy::I64,
        other => {
            return Err(CompileError {
                pos: Pos::default(),
                msg: format!("type {other} has no device register class"),
            })
        }
    })
}

fn mem_ty(ty: &Ty) -> CResult<MemTy> {
    Ok(match ty {
        Ty::Char => MemTy::B8,
        Ty::Int => MemTy::B32,
        Ty::Long => MemTy::B64,
        Ty::Float => MemTy::F32,
        Ty::Double => MemTy::F64,
        Ty::Ptr(_) => MemTy::B64,
        other => {
            return Err(CompileError {
                pos: Pos::default(),
                msg: format!("cannot load/store type {other} on the device"),
            })
        }
    })
}

fn cvt_ty(s: ScalarTy) -> CvtTy {
    match s {
        ScalarTy::I32 => CvtTy::I32,
        ScalarTy::I64 => CvtTy::I64,
        ScalarTy::F32 => CvtTy::F32,
        ScalarTy::F64 => CvtTy::F64,
    }
}

/// Collect local slots whose address is taken with `&x` (they must live in
/// memory, not registers).
fn collect_addr_taken(f: &FuncDef, out: &mut Vec<bool>) {
    fn in_expr(e: &Expr, out: &mut Vec<bool>) {
        if let ExprKind::Unary { op: UnOp::Addr, expr } = &e.kind {
            if let ExprKind::Ident(_, Resolved::Local(slot)) = &expr.kind {
                out[*slot as usize] = true;
            }
        }
        minic::interp::visit_child_exprs(e, &mut |c| in_expr(c, out));
    }
    fn in_stmt(s: &Stmt, out: &mut Vec<bool>) {
        minic::interp::visit_stmt_exprs(s, &mut |e| in_expr(e, out));
        minic::interp::visit_child_stmts(s, &mut |c| in_stmt(c, out));
    }
    for s in &f.body.stmts {
        in_stmt(s, out);
    }
}

fn compile_function(
    f: &FuncDef,
    fn_indices: &HashMap<String, u32>,
    fn_sigs: &HashMap<String, (Vec<ScalarTy>, ScalarTy)>,
) -> CResult<sptx::Function> {
    let mut b = FnBuilder::new(&f.sig.name, f.sig.quals.global);
    let nslots = f.frame.slots.len();
    let mut addr_taken = vec![false; nslots];
    collect_addr_taken(f, &mut addr_taken);

    // Parameters occupy the first registers.
    let mut param_regs = Vec::new();
    for p in &f.sig.params {
        let sty = scalar_ty(&p.ty).map_err(|mut e| {
            e.pos = f.sig.pos;
            e
        })?;
        param_regs.push(b.param(&p.name, sty));
    }

    // Assign storage for every slot.
    let mut storage = Vec::with_capacity(nslots);
    for (i, slot) in f.frame.slots.iter().enumerate() {
        let is_param = i < f.sig.params.len();
        let size = const_sizeof(&slot.ty).ok_or_else(|| CompileError {
            pos: f.sig.pos,
            msg: format!(
                "local `{}` has a runtime-sized type {} (VLA locals are not supported on the device)",
                slot.name, slot.ty
            ),
        })?;
        let align = slot.ty.align().max(4);
        let st = if slot.shared {
            Storage::Shared(b.alloc_shared(size, align))
        } else if !is_param && (addr_taken[i] || slot.ty.is_array()) {
            Storage::Local(b.alloc_local(size, align))
        } else if is_param && addr_taken[i] {
            // Copy the register parameter into local memory at entry.
            Storage::Local(b.alloc_local(size, align))
        } else {
            let sty = scalar_ty(&slot.ty).map_err(|mut e| {
                e.pos = f.sig.pos;
                e
            })?;
            if is_param {
                Storage::Reg(param_regs[i], sty)
            } else {
                Storage::Reg(b.alloc(), sty)
            }
        };
        storage.push(st);
    }

    let mut cg = Cg { b, f, storage, fn_indices, fn_sigs, loops: Vec::new() };

    // Spill address-taken parameters.
    for (i, p) in f.sig.params.iter().enumerate() {
        if let Storage::Local(off) = cg.storage[i] {
            let mt = mem_ty(&p.ty).map_err(|mut e| {
                e.pos = f.sig.pos;
                e
            })?;
            cg.b.st(mt, op::r(param_regs[i]), Operand::LocalBase, off as i64);
        }
    }

    for s in &f.body.stmts {
        cg.stmt(s)?;
    }
    Ok(cg.b.build())
}

/// Compile-time size (no VLA).
fn const_sizeof(ty: &Ty) -> Option<u64> {
    ty.size()
}

impl<'p> Cg<'p> {
    fn err(&self, pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError { pos, msg: msg.into() }
    }

    /// Store a value into a declared local slot.
    fn store_slot(&mut self, slot: u32, v: Operand, ty: &Ty, pos: Pos) -> CResult<()> {
        match self.storage[slot as usize] {
            Storage::Reg(r, _) => {
                self.b.mov_to(r, v);
                Ok(())
            }
            Storage::Local(off) => {
                let mt = mem_ty(ty).map_err(|mut er| {
                    er.pos = pos;
                    er
                })?;
                self.b.st(mt, v, Operand::LocalBase, off as i64);
                Ok(())
            }
            Storage::Shared(off) => {
                let mt = mem_ty(ty).map_err(|mut er| {
                    er.pos = pos;
                    er
                })?;
                self.b.st(mt, v, Operand::SharedBase, off as i64);
                Ok(())
            }
        }
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self, s: &Stmt) -> CResult<()> {
        match s {
            Stmt::Block(bl) => {
                for s in &bl.stmts {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::Empty => Ok(()),
            Stmt::Decl(d) => {
                if let Some(init) = &d.init {
                    let e = match init {
                        Init::Expr(e) => e,
                        Init::List(_) => {
                            return Err(self.err(d.pos, "brace initializers are not supported in kernels"))
                        }
                    };
                    let slot_ty = self.f.frame.slots[d.slot as usize].ty.clone();
                    let (v, vt) = self.expr(e)?;
                    let v = self.coerce(v, vt, scalar_ty(&slot_ty).map_err(|mut er| {
                        er.pos = d.pos;
                        er
                    })?);
                    self.store_slot(d.slot, v, &slot_ty, d.pos)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then_s, else_s } => {
                let c = self.cond_value(cond)?;
                self.b.begin_if();
                self.stmt(then_s)?;
                match else_s {
                    None => self.b.end_if(c),
                    Some(e) => {
                        self.b.begin_else();
                        self.stmt(e)?;
                        self.b.end_if_else(c);
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => self.lower_loop(None, Some(cond), None, body),
            Stmt::DoWhile { body, cond } => {
                // do { body } while (c)  ≡  loop { wrapper{body}; if(!c) break }
                self.lower_do_while(body, cond)
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                self.lower_loop(None, cond.as_ref(), step.as_ref(), body)
            }
            Stmt::Return(e) => {
                match e {
                    None => self.b.ret(None),
                    Some(e) => {
                        let want = scalar_ty(&self.f.sig.ret).map_err(|mut er| {
                            er.pos = e.pos;
                            er
                        })?;
                        let (v, vt) = self.expr(e)?;
                        let v = self.coerce(v, vt, want);
                        self.b.ret(Some(v));
                    }
                }
                Ok(())
            }
            Stmt::Break => {
                let ctx = self
                    .loops
                    .last()
                    .ok_or_else(|| self.err(Pos::default(), "break outside loop"))?;
                if let Some(flag) = ctx.brkflag {
                    self.b.mov_to(flag, op::i(1));
                }
                self.b.brk();
                Ok(())
            }
            Stmt::Continue => {
                let ctx = self
                    .loops
                    .last()
                    .ok_or_else(|| self.err(Pos::default(), "continue outside loop"))?;
                if ctx.in_wrapper {
                    // Break out of the wrapper only: skips the rest of the
                    // body, reconverges before the step expression.
                    self.b.brk();
                } else {
                    self.b.cont();
                }
                Ok(())
            }
            Stmt::Omp(o) => Err(self.err(
                o.pos,
                format!(
                    "OpenMP directive `{}` reached the device compiler — the translator must lower it first",
                    o.dir.kind.spelling()
                ),
            )),
        }
    }

    /// Does this statement tree contain a break/continue that binds to the
    /// *current* loop level (i.e. not inside a nested loop)?
    fn has_loop_escape(s: &Stmt) -> bool {
        match s {
            Stmt::Break | Stmt::Continue => true,
            Stmt::For { .. } | Stmt::While { .. } | Stmt::DoWhile { .. } => false,
            other => {
                let mut found = false;
                minic::interp::visit_child_stmts(other, &mut |c| {
                    if Self::has_loop_escape(c) {
                        found = true;
                    }
                });
                found
            }
        }
    }

    /// Lower a while/for loop:
    /// ```text
    /// loop {
    ///     if (!cond) break;
    ///     loop { body…; break; }      // wrapper, only if body has break/continue
    ///     if (brkflag) break;
    ///     step;
    /// }
    /// ```
    fn lower_loop(
        &mut self,
        _init: Option<()>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
    ) -> CResult<()> {
        let needs_wrapper = Self::has_loop_escape(body);
        let brkflag = if needs_wrapper {
            let r = self.b.mov(op::i(0));
            Some(r)
        } else {
            None
        };
        self.b.begin_loop();
        if let Some(c) = cond {
            let cv = self.cond_value(c)?;
            let ncv = self.b.un(ScalarTy::I32, IrUn::Not, cv);
            self.b.begin_if();
            self.b.brk();
            self.b.end_if(op::r(ncv));
        }
        if needs_wrapper {
            self.b.begin_loop();
            self.loops.push(LoopCtx { brkflag, in_wrapper: true });
            self.stmt(body)?;
            self.loops.pop();
            self.b.brk();
            self.b.end_loop();
            // Escape the outer loop if the body requested a real break.
            let flag = brkflag.unwrap();
            self.b.begin_if();
            self.b.brk();
            self.b.end_if(op::r(flag));
        } else {
            self.loops.push(LoopCtx { brkflag: None, in_wrapper: false });
            self.stmt(body)?;
            self.loops.pop();
        }
        if let Some(st) = step {
            self.expr(st)?;
        }
        self.b.end_loop();
        Ok(())
    }

    fn lower_do_while(&mut self, body: &Stmt, cond: &Expr) -> CResult<()> {
        let needs_wrapper = Self::has_loop_escape(body);
        let brkflag = if needs_wrapper { Some(self.b.mov(op::i(0))) } else { None };
        self.b.begin_loop();
        if needs_wrapper {
            self.b.begin_loop();
            self.loops.push(LoopCtx { brkflag, in_wrapper: true });
            self.stmt(body)?;
            self.loops.pop();
            self.b.brk();
            self.b.end_loop();
            let flag = brkflag.unwrap();
            self.b.begin_if();
            self.b.brk();
            self.b.end_if(op::r(flag));
        } else {
            self.loops.push(LoopCtx { brkflag: None, in_wrapper: false });
            self.stmt(body)?;
            self.loops.pop();
        }
        let cv = self.cond_value(cond)?;
        let ncv = self.b.un(ScalarTy::I32, IrUn::Not, cv);
        self.b.begin_if();
        self.b.brk();
        self.b.end_if(op::r(ncv));
        self.b.end_loop();
        Ok(())
    }

    // ----------------------------------------------------------- lvalues

    /// An lvalue on the device: address operand + the value's memory type +
    /// logical type.
    fn lvalue(&mut self, e: &Expr) -> CResult<(Operand, i64, Ty)> {
        match &e.kind {
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    let ty = self.f.frame.slots[*slot as usize].ty.clone();
                    match self.storage[*slot as usize] {
                        Storage::Local(off) => Ok((Operand::LocalBase, off as i64, ty)),
                        Storage::Shared(off) => Ok((Operand::SharedBase, off as i64, ty)),
                        Storage::Reg(..) => Err(self.err(
                            e.pos,
                            format!(
                                "internal: `{name}` lives in a register but was used as memory"
                            ),
                        )),
                    }
                }
                _ => Err(self.err(e.pos, format!("`{name}` is not a device lvalue"))),
            },
            ExprKind::Unary { op: UnOp::Deref, expr } => {
                let (p, _) = self.expr(expr)?;
                let ty = match expr.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => return Err(self.err(e.pos, format!("deref of non-pointer {other}"))),
                };
                Ok((p, 0, ty))
            }
            ExprKind::Index { base, index } => {
                let (bv, _) = self.expr(base)?;
                let elem = match base.ty.decayed() {
                    Ty::Ptr(inner) => *inner,
                    other => return Err(self.err(e.pos, format!("index of non-pointer {other}"))),
                };
                let (iv, it) = self.expr(index)?;
                let iv64 = self.coerce(iv, it, ScalarTy::I64);
                let stride = self.sizeof_value(&elem, e.pos)?;
                let scaled = self.b.bin(ScalarTy::I64, IrBin::Mul, iv64, stride);
                let addr = self.b.bin(ScalarTy::I64, IrBin::Add, bv, op::r(scaled));
                Ok((op::r(addr), 0, elem))
            }
            ExprKind::Cast { expr, .. } => self.lvalue(expr),
            _ => Err(self.err(e.pos, "expression is not a device lvalue")),
        }
    }

    /// Size of a type as an operand (compile-time constant, or computed
    /// from VLA extents at run time).
    fn sizeof_value(&mut self, ty: &Ty, pos: Pos) -> CResult<Operand> {
        if let Some(n) = ty.size() {
            return Ok(op::i(n as i64));
        }
        match ty {
            Ty::Array(elem, len) => {
                let n = match len {
                    ArrayLen::Expr(e) => {
                        let (v, vt) = self.expr(e)?;
                        self.coerce(v, vt, ScalarTy::I64)
                    }
                    ArrayLen::Const(n) => op::i(*n as i64),
                    ArrayLen::Unspec => return Err(self.err(pos, "sizeof of unsized array")),
                };
                let inner = self.sizeof_value(elem, pos)?;
                let r = self.b.bin(ScalarTy::I64, IrBin::Mul, n, inner);
                Ok(op::r(r))
            }
            other => Err(self.err(pos, format!("cannot size type {other}"))),
        }
    }

    // -------------------------------------------------------- expressions

    /// Evaluate an expression to an operand + its IR type.
    fn expr(&mut self, e: &Expr) -> CResult<(Operand, ScalarTy)> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((op::i(*v), ScalarTy::I32)),
            ExprKind::FloatLit(v, is32) => {
                Ok((op::f(*v), if *is32 { ScalarTy::F32 } else { ScalarTy::F64 }))
            }
            ExprKind::StrLit(_) => Err(self
                .err(e.pos, "string literals on the device are only supported as printf formats")),
            ExprKind::Ident(name, resolved) => match resolved {
                Resolved::Local(slot) => {
                    let ty = self.f.frame.slots[*slot as usize].ty.clone();
                    match self.storage[*slot as usize] {
                        Storage::Reg(r, sty) => Ok((op::r(r), sty)),
                        Storage::Local(off) => {
                            if ty.is_array() {
                                // Array decays to its local address.
                                let a = self.b.bin(
                                    ScalarTy::I64,
                                    IrBin::Add,
                                    Operand::LocalBase,
                                    op::i(off as i64),
                                );
                                Ok((op::r(a), ScalarTy::I64))
                            } else {
                                self.load_place(Operand::LocalBase, off as i64, &ty, e.pos)
                            }
                        }
                        Storage::Shared(off) => {
                            if ty.is_array() {
                                let a = self.b.bin(
                                    ScalarTy::I64,
                                    IrBin::Add,
                                    Operand::SharedBase,
                                    op::i(off as i64),
                                );
                                Ok((op::r(a), ScalarTy::I64))
                            } else {
                                self.load_place(Operand::SharedBase, off as i64, &ty, e.pos)
                            }
                        }
                    }
                }
                Resolved::Func => {
                    // Function designator: its module-local index (used for
                    // cudadev_register_parallel).
                    let idx = self
                        .fn_indices
                        .get(name)
                        .ok_or_else(|| self.err(e.pos, format!("unknown function `{name}`")))?;
                    Ok((op::i(*idx as i64), ScalarTy::I64))
                }
                Resolved::CudaBuiltin(_) => {
                    Err(self
                        .err(e.pos, format!("`{name}` must be used with a .x/.y/.z member access")))
                }
                Resolved::Global(_) => Err(self.err(
                    e.pos,
                    format!("device global `{name}` is not supported — pass it as a parameter"),
                )),
                Resolved::Unresolved => {
                    Err(self.err(e.pos, format!("unresolved identifier `{name}`")))
                }
            },
            ExprKind::Member { base, field } => {
                // threadIdx.x / blockIdx.y / blockDim.z / gridDim.x …
                if let ExprKind::Ident(_, Resolved::CudaBuiltin(var)) = &base.kind {
                    use sptx::SpecialReg::*;
                    let sp = match (var, field.as_str()) {
                        (CudaVar::ThreadIdx, "x") => TidX,
                        (CudaVar::ThreadIdx, "y") => TidY,
                        (CudaVar::ThreadIdx, "z") => TidZ,
                        (CudaVar::BlockIdx, "x") => CtaidX,
                        (CudaVar::BlockIdx, "y") => CtaidY,
                        (CudaVar::BlockIdx, "z") => CtaidZ,
                        (CudaVar::BlockDim, "x") => NtidX,
                        (CudaVar::BlockDim, "y") => NtidY,
                        (CudaVar::BlockDim, "z") => NtidZ,
                        (CudaVar::GridDim, "x") => NctaidX,
                        (CudaVar::GridDim, "y") => NctaidY,
                        (CudaVar::GridDim, "z") => NctaidZ,
                        _ => {
                            return Err(self.err(e.pos, format!("unknown builtin member .{field}")))
                        }
                    };
                    return Ok((op::sp(sp), ScalarTy::I32));
                }
                Err(self.err(e.pos, "member access is only supported on CUDA builtins in kernels"))
            }
            ExprKind::Index { .. } => {
                let (addr, off, ty) = self.lvalue(e)?;
                if ty.is_array() {
                    // Partial indexing of a multi-dim array → address.
                    let a = self.addr_plus(addr, off);
                    Ok((a, ScalarTy::I64))
                } else {
                    self.load_place(addr, off, &ty, e.pos)
                }
            }
            ExprKind::Unary { op: uop, expr } => match uop {
                UnOp::Addr => {
                    let (addr, off, _) = self.lvalue(expr)?;
                    Ok((self.addr_plus(addr, off), ScalarTy::I64))
                }
                UnOp::Deref => {
                    let (addr, off, ty) = self.lvalue(e)?;
                    let _ = &addr;
                    if ty.is_array() {
                        let a = self.addr_plus(addr, off);
                        Ok((a, ScalarTy::I64))
                    } else {
                        self.load_place(addr, off, &ty, e.pos)
                    }
                }
                UnOp::Neg => {
                    let (v, vt) = self.expr(expr)?;
                    let r = self.b.un(vt, IrUn::Neg, v);
                    Ok((op::r(r), vt))
                }
                UnOp::Not => {
                    let (v, vt) = self.expr(expr)?;
                    let r = self.b.un(vt, IrUn::Not, v);
                    Ok((op::r(r), ScalarTy::I32))
                }
                UnOp::BitNot => {
                    let (v, vt) = self.expr(expr)?;
                    let r = self.b.un(vt, IrUn::BitNot, v);
                    Ok((op::r(r), vt))
                }
            },
            ExprKind::Binary { op: bop, lhs, rhs } => self.binary(e, *bop, lhs, rhs),
            ExprKind::Assign { op: aop, lhs, rhs } => self.assign(e, *aop, lhs, rhs),
            ExprKind::IncDec { pre, inc, expr } => {
                let one = op::i(1);
                let (cur, curty, place) = self.read_modifiable(expr)?;
                let stride = self.assign_stride(expr)?;
                let delta = match stride {
                    Some(s) => s,
                    None => one,
                };
                let newv =
                    self.b.bin(curty, if *inc { IrBin::Add } else { IrBin::Sub }, cur, delta);
                self.write_back(&place, op::r(newv), curty, expr)?;
                Ok((if *pre { op::r(newv) } else { cur }, curty))
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                let c = self.cond_value(cond)?;
                // Result register typed by the merged type.
                let tt = scalar_ty(&e.ty).map_err(|mut er| {
                    er.pos = e.pos;
                    er
                })?;
                let dst = self.b.alloc();
                self.b.begin_if();
                let (tv, tvt) = self.expr(then_e)?;
                let tv = self.coerce(tv, tvt, tt);
                self.b.mov_to(dst, tv);
                self.b.begin_else();
                let (ev, evt) = self.expr(else_e)?;
                let ev = self.coerce(ev, evt, tt);
                self.b.mov_to(dst, ev);
                self.b.end_if_else(c);
                Ok((op::r(dst), tt))
            }
            ExprKind::Cast { ty, expr } => {
                let (v, vt) = self.expr(expr)?;
                let want = scalar_ty(ty).map_err(|mut er| {
                    er.pos = e.pos;
                    er
                })?;
                Ok((self.coerce(v, vt, want), want))
            }
            ExprKind::SizeofTy(ty) => {
                let v = self.sizeof_value(ty, e.pos)?;
                Ok((v, ScalarTy::I64))
            }
            ExprKind::SizeofExpr(inner) => {
                let v = self.sizeof_value(&inner.ty, e.pos)?;
                Ok((v, ScalarTy::I64))
            }
            ExprKind::Comma(a, bx) => {
                self.expr(a)?;
                self.expr(bx)
            }
            ExprKind::Call { callee, args } => self.call(e, callee, args),
            ExprKind::KernelLaunch { .. } => {
                Err(self.err(e.pos, "kernel launches are host-side constructs"))
            }
            ExprKind::Dim3 { .. } => Err(self.err(e.pos, "dim3 is a host-side type")),
        }
    }

    fn addr_plus(&mut self, base: Operand, off: i64) -> Operand {
        if off == 0 {
            base
        } else {
            op::r(self.b.bin(ScalarTy::I64, IrBin::Add, base, op::i(off)))
        }
    }

    fn load_place(
        &mut self,
        addr: Operand,
        off: i64,
        ty: &Ty,
        pos: Pos,
    ) -> CResult<(Operand, ScalarTy)> {
        let mt = mem_ty(ty).map_err(|mut er| {
            er.pos = pos;
            er
        })?;
        let r = self.b.ld(mt, addr, off);
        if *ty == Ty::Char {
            // Sign-extend.
            let s = self.b.cvt(CvtTy::I32, CvtTy::S8, op::r(r));
            return Ok((op::r(s), ScalarTy::I32));
        }
        Ok((
            op::r(r),
            scalar_ty(ty).map_err(|mut er| {
                er.pos = pos;
                er
            })?,
        ))
    }

    /// Convert an operand between IR types.
    ///
    /// `ImmF` operands always carry an f64 payload; when one flows into an
    /// f32 *value* context (call argument, store, register move) it must be
    /// materialized as genuine f32 bits, so we route it through a `cvt`.
    /// ALU instructions interpret `ImmF` natively and keep the fast path.
    fn coerce(&mut self, v: Operand, from: ScalarTy, to: ScalarTy) -> Operand {
        if let Operand::ImmF(x) = v {
            return match to {
                ScalarTy::F32 => op::r(self.b.cvt(CvtTy::F32, CvtTy::F64, v)),
                ScalarTy::F64 => v,
                ScalarTy::I32 | ScalarTy::I64 => op::i(x as i64),
            };
        }
        if from == to {
            return v;
        }
        // Integer immediates convert for free.
        if let Operand::ImmI(i) = v {
            return match to {
                ScalarTy::I32 | ScalarTy::I64 => v,
                ScalarTy::F32 | ScalarTy::F64 => {
                    op::r(self.b.cvt(cvt_ty(to), CvtTy::F64, op::f(i as f64)))
                }
            };
        }
        op::r(self.b.cvt(cvt_ty(to), cvt_ty(from), v))
    }

    /// Evaluate a condition to an i32 0/1 register operand.
    fn cond_value(&mut self, e: &Expr) -> CResult<Operand> {
        let (v, vt) = self.expr(e)?;
        // Comparisons already produce 0/1.
        if let ExprKind::Binary { op: bop, .. } = &e.kind {
            if bop.is_comparison() || bop.is_logical() {
                return Ok(v);
            }
        }
        // Normalize: v != 0 in its own type.
        let zero = if vt.is_float() { op::f(0.0) } else { op::i(0) };
        let r = self.b.bin(vt, IrBin::SetNe, v, zero);
        Ok(op::r(r))
    }

    fn binary(
        &mut self,
        e: &Expr,
        bop: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> CResult<(Operand, ScalarTy)> {
        // Short-circuit logicals.
        if bop == BinOp::LogAnd || bop == BinOp::LogOr {
            let dst = self.b.alloc();
            let lc = self.cond_value(lhs)?;
            if bop == BinOp::LogAnd {
                self.b.begin_if();
                let rc = self.cond_value(rhs)?;
                self.b.mov_to(dst, rc);
                self.b.begin_else();
                self.b.mov_to(dst, op::i(0));
                self.b.end_if_else(lc);
            } else {
                self.b.begin_if();
                self.b.mov_to(dst, op::i(1));
                self.b.begin_else();
                let rc = self.cond_value(rhs)?;
                self.b.mov_to(dst, rc);
                self.b.end_if_else(lc);
            }
            return Ok((op::r(dst), ScalarTy::I32));
        }

        let lt_c = lhs.ty.decayed();
        let rt_c = rhs.ty.decayed();
        // Pointer arithmetic.
        if lt_c.is_ptr() && rt_c.is_integer() && matches!(bop, BinOp::Add | BinOp::Sub) {
            let (pv, _) = self.expr(lhs)?;
            let (iv, it) = self.expr(rhs)?;
            let iv = self.coerce(iv, it, ScalarTy::I64);
            let pointee = lt_c.pointee().cloned().unwrap_or(Ty::Char);
            let stride = self.sizeof_value(&pointee, e.pos)?;
            let scaled = self.b.bin(ScalarTy::I64, IrBin::Mul, iv, stride);
            let r = self.b.bin(
                ScalarTy::I64,
                if bop == BinOp::Add { IrBin::Add } else { IrBin::Sub },
                pv,
                op::r(scaled),
            );
            return Ok((op::r(r), ScalarTy::I64));
        }
        if rt_c.is_ptr() && lt_c.is_integer() && bop == BinOp::Add {
            let (iv, it) = self.expr(lhs)?;
            let (pv, _) = self.expr(rhs)?;
            let iv = self.coerce(iv, it, ScalarTy::I64);
            let pointee = rt_c.pointee().cloned().unwrap_or(Ty::Char);
            let stride = self.sizeof_value(&pointee, e.pos)?;
            let scaled = self.b.bin(ScalarTy::I64, IrBin::Mul, iv, stride);
            let r = self.b.bin(ScalarTy::I64, IrBin::Add, pv, op::r(scaled));
            return Ok((op::r(r), ScalarTy::I64));
        }
        if lt_c.is_ptr() && rt_c.is_ptr() && bop == BinOp::Sub {
            let (pa, _) = self.expr(lhs)?;
            let (pb, _) = self.expr(rhs)?;
            let diff = self.b.bin(ScalarTy::I64, IrBin::Sub, pa, pb);
            let pointee = lt_c.pointee().cloned().unwrap_or(Ty::Char);
            let stride = self.sizeof_value(&pointee, e.pos)?;
            let r = self.b.bin(ScalarTy::I64, IrBin::Div, op::r(diff), stride);
            return Ok((op::r(r), ScalarTy::I64));
        }

        let (lv, lt) = self.expr(lhs)?;
        let (rv, rt) = self.expr(rhs)?;
        let common = promote(lt, rt);
        let lv = self.coerce(lv, lt, common);
        let rv = self.coerce(rv, rt, common);
        let ir = match bop {
            BinOp::Add => IrBin::Add,
            BinOp::Sub => IrBin::Sub,
            BinOp::Mul => IrBin::Mul,
            BinOp::Div => IrBin::Div,
            BinOp::Rem => IrBin::Rem,
            BinOp::Shl => IrBin::Shl,
            BinOp::Shr => IrBin::Shr,
            BinOp::BitAnd => IrBin::And,
            BinOp::BitOr => IrBin::Or,
            BinOp::BitXor => IrBin::Xor,
            BinOp::Lt => IrBin::SetLt,
            BinOp::Gt => IrBin::SetGt,
            BinOp::Le => IrBin::SetLe,
            BinOp::Ge => IrBin::SetGe,
            BinOp::Eq => IrBin::SetEq,
            BinOp::Ne => IrBin::SetNe,
            BinOp::LogAnd | BinOp::LogOr => unreachable!(),
        };
        let dst = self.b.bin(common, ir, lv, rv);
        let out_ty = if bop.is_comparison() { ScalarTy::I32 } else { common };
        Ok((op::r(dst), out_ty))
    }

    /// A modifiable place: register slot or memory location.
    fn read_modifiable(&mut self, e: &Expr) -> CResult<(Operand, ScalarTy, Place)> {
        if let ExprKind::Ident(_, Resolved::Local(slot)) = &e.kind {
            if let Storage::Reg(r, sty) = self.storage[*slot as usize] {
                return Ok((op::r(r), sty, Place::Reg(r)));
            }
        }
        let (addr, off, ty) = self.lvalue(e)?;
        let (v, vt) = self.load_place(addr, off, &ty, e.pos)?;
        Ok((v, vt, Place::Mem { addr, off, ty }))
    }

    fn write_back(&mut self, place: &Place, v: Operand, vt: ScalarTy, at: &Expr) -> CResult<()> {
        match place {
            Place::Reg(r) => {
                self.b.mov_to(*r, v);
                Ok(())
            }
            Place::Mem { addr, off, ty } => {
                let want = scalar_ty(ty).map_err(|mut er| {
                    er.pos = at.pos;
                    er
                })?;
                let v = self.coerce(v, vt, want);
                let mt = mem_ty(ty).map_err(|mut er| {
                    er.pos = at.pos;
                    er
                })?;
                self.b.st(mt, v, *addr, *off);
                Ok(())
            }
        }
    }

    /// If `e` is pointer-typed, the byte stride for ++/--; else None.
    fn assign_stride(&mut self, e: &Expr) -> CResult<Option<Operand>> {
        match e.ty.decayed() {
            Ty::Ptr(inner) => Ok(Some(self.sizeof_value(&inner, e.pos)?)),
            _ => Ok(None),
        }
    }

    fn assign(
        &mut self,
        e: &Expr,
        aop: Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
    ) -> CResult<(Operand, ScalarTy)> {
        // Simple register-destination fast path.
        if let ExprKind::Ident(_, Resolved::Local(slot)) = &lhs.kind {
            if let Storage::Reg(r, sty) = self.storage[*slot as usize] {
                let v = match aop {
                    None => {
                        let (rv, rt) = self.expr(rhs)?;
                        self.coerce(rv, rt, sty)
                    }
                    Some(bop) => {
                        let syn = Expr {
                            kind: ExprKind::Binary {
                                op: bop,
                                lhs: Box::new(lhs.clone()),
                                rhs: Box::new(rhs.clone()),
                            },
                            ty: lhs.ty.clone(),
                            pos: e.pos,
                        };
                        let (v, vt) = self.expr(&syn)?;
                        self.coerce(v, vt, sty)
                    }
                };
                self.b.mov_to(r, v);
                return Ok((op::r(r), sty));
            }
        }
        // Memory destination.
        let (addr, off, ty) = self.lvalue(lhs)?;
        let want = scalar_ty(&ty).map_err(|mut er| {
            er.pos = e.pos;
            er
        })?;
        let v = match aop {
            None => {
                let (rv, rt) = self.expr(rhs)?;
                self.coerce(rv, rt, want)
            }
            Some(bop) => {
                let (cur, curt) = self.load_place(addr, off, &ty, e.pos)?;
                let (rv, rt) = self.expr(rhs)?;
                let common = promote(curt, rt);
                let a = self.coerce(cur, curt, common);
                let bnd = self.coerce(rv, rt, common);
                let ir = match bop {
                    BinOp::Add => IrBin::Add,
                    BinOp::Sub => IrBin::Sub,
                    BinOp::Mul => IrBin::Mul,
                    BinOp::Div => IrBin::Div,
                    BinOp::Rem => IrBin::Rem,
                    BinOp::Shl => IrBin::Shl,
                    BinOp::Shr => IrBin::Shr,
                    BinOp::BitAnd => IrBin::And,
                    BinOp::BitOr => IrBin::Or,
                    BinOp::BitXor => IrBin::Xor,
                    other => return Err(self.err(e.pos, format!("bad compound op {other:?}"))),
                };
                let r = self.b.bin(common, ir, a, bnd);
                self.coerce(op::r(r), common, want)
            }
        };
        let mt = mem_ty(&ty).map_err(|mut er| {
            er.pos = e.pos;
            er
        })?;
        self.b.st(mt, v, addr, off);
        Ok((v, want))
    }

    fn call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> CResult<(Operand, ScalarTy)> {
        // Math builtins map to ALU instructions.
        if let Some((un, sty)) = match callee {
            "sqrtf" => Some((IrUn::Sqrt, ScalarTy::F32)),
            "sqrt" => Some((IrUn::Sqrt, ScalarTy::F64)),
            "fabsf" => Some((IrUn::Abs, ScalarTy::F32)),
            "fabs" => Some((IrUn::Abs, ScalarTy::F64)),
            "floorf" => Some((IrUn::Floor, ScalarTy::F32)),
            "floor" => Some((IrUn::Floor, ScalarTy::F64)),
            "ceilf" => Some((IrUn::Ceil, ScalarTy::F32)),
            "ceil" => Some((IrUn::Ceil, ScalarTy::F64)),
            "expf" => Some((IrUn::Exp, ScalarTy::F32)),
            "exp" => Some((IrUn::Exp, ScalarTy::F64)),
            "logf" => Some((IrUn::Log, ScalarTy::F32)),
            "log" => Some((IrUn::Log, ScalarTy::F64)),
            "sinf" | "sin" => Some((IrUn::Sin, ScalarTy::F32)),
            "cosf" | "cos" => Some((IrUn::Cos, ScalarTy::F32)),
            "abs" => Some((IrUn::Abs, ScalarTy::I32)),
            _ => None,
        } {
            let (v, vt) = self.expr(&args[0])?;
            let v = self.coerce(v, vt, sty);
            let r = self.b.un(sty, un, v);
            return Ok((op::r(r), sty));
        }
        if let Some((bin, sty)) = match callee {
            "fmaxf" => Some((IrBin::Max, ScalarTy::F32)),
            "fminf" => Some((IrBin::Min, ScalarTy::F32)),
            "fmax" => Some((IrBin::Max, ScalarTy::F64)),
            "fmin" => Some((IrBin::Min, ScalarTy::F64)),
            "max" => Some((IrBin::Max, ScalarTy::I32)),
            "min" => Some((IrBin::Min, ScalarTy::I32)),
            _ => None,
        } {
            let (a, at) = self.expr(&args[0])?;
            let (bv, bt) = self.expr(&args[1])?;
            let a = self.coerce(a, at, sty);
            let bv = self.coerce(bv, bt, sty);
            let r = self.b.bin(sty, bin, a, bv);
            return Ok((op::r(r), sty));
        }

        match callee {
            "__syncthreads" => {
                self.b.emit(Inst::BarSync { id: op::i(0), count: None });
                Ok((op::i(0), ScalarTy::I32))
            }
            "atomicAdd" => {
                let (p, _) = self.expr(&args[0])?;
                let pointee = args[0].ty.decayed().pointee().cloned().unwrap_or(Ty::Float);
                let (v, vt) = self.expr(&args[1])?;
                let (aop, sty) = match pointee {
                    Ty::Float => (sptx::AtomOp::AddF32, ScalarTy::F32),
                    Ty::Double => (sptx::AtomOp::AddF64, ScalarTy::F64),
                    Ty::Long => (sptx::AtomOp::AddI64, ScalarTy::I64),
                    _ => (sptx::AtomOp::AddI32, ScalarTy::I32),
                };
                let v = self.coerce(v, vt, sty);
                let dst = self.b.alloc();
                self.b.emit(Inst::Atom { op: aop, dst, addr: p, val: v });
                Ok((op::r(dst), sty))
            }
            "atomicCAS" => {
                let (p, _) = self.expr(&args[0])?;
                let (exp, et) = self.expr(&args[1])?;
                let (new, nt) = self.expr(&args[2])?;
                let exp = self.coerce(exp, et, ScalarTy::I32);
                let new = self.coerce(new, nt, ScalarTy::I32);
                let dst = self.b.alloc();
                self.b.emit(Inst::AtomCas { dst, addr: p, expected: exp, new });
                Ok((op::r(dst), ScalarTy::I32))
            }
            "atomicExch" => {
                let (p, _) = self.expr(&args[0])?;
                let (v, vt) = self.expr(&args[1])?;
                let v = self.coerce(v, vt, ScalarTy::I32);
                let dst = self.b.alloc();
                self.b.emit(Inst::Atom { op: sptx::AtomOp::ExchB32, dst, addr: p, val: v });
                Ok((op::r(dst), ScalarTy::I32))
            }
            "printf" => {
                let fmt = match args.first().map(|a| &a.kind) {
                    Some(ExprKind::StrLit(s)) => s.clone(),
                    _ => {
                        return Err(
                            self.err(e.pos, "device printf requires a string-literal format")
                        )
                    }
                };
                let mut ops = Vec::new();
                for a in &args[1..] {
                    let (v, vt) = self.expr(a)?;
                    // C varargs promotion: f32 → f64, i32 → i64.
                    let v = match vt {
                        ScalarTy::F32 => self.coerce(v, vt, ScalarTy::F64),
                        ScalarTy::I32 => self.coerce(v, vt, ScalarTy::I64),
                        _ => v,
                    };
                    ops.push(v);
                }
                let dst = self.b.intrinsic_s("printf", ops, vec![fmt], true).unwrap();
                Ok((op::r(dst), ScalarTy::I32))
            }
            _ => {
                // Defined device function?
                if let Some(&idx) = self.fn_indices.get(callee) {
                    let (param_tys, ret_sty) = self.fn_sigs[callee].clone();
                    if args.len() != param_tys.len() {
                        return Err(self.err(
                            e.pos,
                            format!(
                                "call to `{callee}` with {} args (expects {})",
                                args.len(),
                                param_tys.len()
                            ),
                        ));
                    }
                    let mut ops = Vec::new();
                    for (a, want) in args.iter().zip(&param_tys) {
                        let (v, vt) = self.expr(a)?;
                        ops.push(self.coerce(v, vt, *want));
                    }
                    let dst = self.b.call(idx, ops, true).unwrap();
                    return Ok((op::r(dst), ret_sty));
                }
                // Device-library intrinsic (cudadev_*, omp_*, …).
                let mut ops = Vec::new();
                for a in args {
                    let (v, _) = self.expr(a)?;
                    ops.push(v);
                }
                let dst = self.b.intrinsic(callee, ops, true).unwrap();
                // omp_* queries return i32; pointer-returning cudadev calls
                // are consumed through casts, so i64 bits flow through fine.
                let sty = if callee.ends_with("shmem") || callee.ends_with("getaddr") {
                    ScalarTy::I64
                } else {
                    ScalarTy::I32
                };
                Ok((op::r(dst), sty))
            }
        }
    }
}

enum Place {
    Reg(Reg),
    Mem { addr: Operand, off: i64, ty: Ty },
}

/// IR-level usual arithmetic conversions.
fn promote(a: ScalarTy, b: ScalarTy) -> ScalarTy {
    use ScalarTy::*;
    match (a, b) {
        (F64, _) | (_, F64) => F64,
        (F32, _) | (_, F32) => F32,
        (I64, _) | (_, I64) => I64,
        _ => I32,
    }
}
