//! The calibrated cost model for the simulated Jetson Nano Maxwell SMM.
//!
//! The Nano's GPU is a single Maxwell SMM: 128 CUDA cores organized as 4
//! scheduler partitions of 32 lanes, 921.6 MHz boost clock, sharing 25.6
//! GB/s of LPDDR4 bandwidth with the CPU. The model tracks three quantities
//! per kernel and takes their max as the kernel time:
//!
//! 1. **Issue throughput** — each instruction has an issue cost in
//!    scheduler-cycles; 4 schedulers issue in parallel, so the bound is
//!    `total_issue / 4`.
//! 2. **Memory throughput** — every global access is coalesced into 32-byte
//!    transactions; LPDDR4 sustains roughly one transaction per core cycle
//!    (25.6 GB/s ÷ 921.6 MHz ≈ 27.8 B/cycle), derated for the CPU sharing
//!    the bus.
//! 3. **Critical path** — each warp keeps a latency clock (ALU + average
//!    memory latency + barrier waits, where a barrier jumps every
//!    participant to the latest arrival). A block's wall time is its
//!    slowest warp; with `R` blocks resident the grid needs
//!    `ceil(blocks/R)` waves. This term is what makes the master/worker
//!    scheme's serialized master sections cost time even though they issue
//!    almost nothing.
//!
//! All constants live here so that calibration is one diff.

use sptx::{BinOp, Inst, ScalarTy, UnOp};

/// Core clock (Hz). Jetson Nano Maxwell boost clock.
pub const CLOCK_HZ: f64 = 921.6e6;

/// Warp schedulers per SMM.
pub const WARP_SCHEDULERS: u64 = 4;

/// Warp size.
pub const WARP_SIZE: u32 = 32;

/// Bytes per coalesced memory transaction.
pub const TRANSACTION_BYTES: u64 = 32;

/// Core cycles per 32-byte transaction (bandwidth term). 32 B ÷ 27.8 B/cyc,
/// derated ~35% for CPU sharing the LPDDR4 bus.
pub const CYCLES_PER_TRANSACTION: f64 = 1.55;

/// Average exposed latency of a global access (cycles). Far below the raw
/// DRAM latency because resident warps hide most of it; this is the
/// *residual* a dependent instruction chain observes.
pub const GLOBAL_MEM_LAT: u64 = 28;

/// Latency of a shared-memory access (cycles).
pub const SHARED_MEM_LAT: u64 = 6;

/// Latency of a local-memory access (register spill space; L1-resident).
pub const LOCAL_MEM_LAT: u64 = 6;

/// Cost (issue, latency) added when a warp executes a named barrier.
pub const BARRIER_ISSUE: u64 = 2;
pub const BARRIER_LAT: u64 = 24;

/// Extra latency when both sides of a branch are non-empty (divergence).
pub const DIVERGENCE_LAT: u64 = 8;

/// Overhead of an intrinsic (device-library) call.
pub const INTRINSIC_ISSUE: u64 = 4;
pub const INTRINSIC_LAT: u64 = 18;

/// Overhead of a device-function call (ABI setup).
pub const CALL_ISSUE: u64 = 4;
pub const CALL_LAT: u64 = 16;

/// Fixed host-side cost of one kernel launch (seconds). Measured values on
/// the Nano with the driver API are 30–90 µs.
pub const LAUNCH_OVERHEAD_S: f64 = 60e-6;

/// Effective host↔device copy bandwidth (bytes/second). cudaMemcpy on the
/// Nano moves through the shared DRAM at well below the raw bus rate.
pub const MEMCPY_BYTES_PER_S: f64 = 3.4e9;

/// Fixed per-memcpy overhead (seconds).
pub const MEMCPY_OVERHEAD_S: f64 = 25e-6;

/// One-time device initialization cost (seconds): context creation plus
/// the runtime control-block allocation the lazy first offload performs.
pub const DEVICE_INIT_S: f64 = 300e-6;

/// Loading a prebuilt `.cubin` module (deserialize + verify).
pub const MODULE_LOAD_CUBIN_S: f64 = 80e-6;

/// JIT-assembling a `.sptx` module in PTX mode on a cache miss. Dominates
/// the first-launch cost, which is exactly the PTX-vs-cubin gap the paper
/// discusses.
pub const JIT_COMPILE_S: f64 = 2.0e-3;

/// Reloading a JIT-compiled module from the disk cache (cache hit).
pub const JIT_CACHE_HIT_S: f64 = 150e-6;

/// Maximum resident threads per SMM (occupancy limit).
pub const MAX_THREADS_PER_SM: u32 = 2048;

/// Maximum resident blocks per SMM.
pub const MAX_BLOCKS_PER_SM: u32 = 32;

/// Shared memory per block (bytes) — also the occupancy divisor.
pub const SHARED_MEM_PER_BLOCK: u64 = 48 * 1024;

/// (issue, latency) cost of one ALU/control instruction, per warp.
pub fn inst_cost(i: &Inst) -> (u64, u64) {
    match i {
        Inst::Bin { ty, op, .. } => {
            let f64ty = *ty == ScalarTy::F64;
            match op {
                BinOp::Div | BinOp::Rem => {
                    if f64ty {
                        (16, 48)
                    } else if ty.is_float() {
                        (6, 20)
                    } else {
                        (8, 24)
                    }
                }
                _ if f64ty => (8, 24),
                BinOp::Mul if !ty.is_float() => (1, 4),
                _ => (1, 4),
            }
        }
        Inst::Un { ty, op, .. } => match op {
            UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos => {
                if *ty == ScalarTy::F64 {
                    (16, 48)
                } else {
                    (4, 18)
                }
            }
            _ if *ty == ScalarTy::F64 => (8, 24),
            _ => (1, 4),
        },
        Inst::Mov { .. } | Inst::Cvt { .. } => (1, 2),
        // Memory cost is added by the interpreter after coalescing.
        Inst::Ld { .. } | Inst::St { .. } => (1, 0),
        Inst::AtomCas { .. } | Inst::Atom { .. } => (4, 40),
        Inst::BarSync { .. } => (BARRIER_ISSUE, 0),
        Inst::Call { .. } => (CALL_ISSUE, CALL_LAT),
        Inst::Intrinsic { .. } => (INTRINSIC_ISSUE, INTRINSIC_LAT),
        Inst::Ret { .. } => (1, 1),
        Inst::Trap { .. } => (0, 0),
    }
}

/// Blocks resident simultaneously on the SMM for a given block shape.
pub fn resident_blocks(threads_per_block: u32, shared_per_block: u64) -> u32 {
    let by_threads = (MAX_THREADS_PER_SM / threads_per_block.max(1)).max(1);
    let by_shared = SHARED_MEM_PER_BLOCK
        .checked_div(shared_per_block)
        .map_or(MAX_BLOCKS_PER_SM, |b| (b as u32).max(1));
    by_threads.min(by_shared).min(MAX_BLOCKS_PER_SM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limits() {
        assert_eq!(resident_blocks(256, 0), 8);
        assert_eq!(resident_blocks(2048, 0), 1);
        assert_eq!(resident_blocks(32, 0), 32); // capped by MAX_BLOCKS
        assert_eq!(resident_blocks(128, 48 * 1024), 1); // shared-mem bound
        assert_eq!(resident_blocks(128, 12 * 1024), 4);
    }

    #[test]
    fn f64_is_much_slower_than_f32() {
        let f32mul = Inst::Bin {
            ty: ScalarTy::F32,
            op: BinOp::Mul,
            dst: sptx::Reg(0),
            a: sptx::Operand::ImmF(1.0),
            b: sptx::Operand::ImmF(2.0),
        };
        let f64mul = Inst::Bin {
            ty: ScalarTy::F64,
            op: BinOp::Mul,
            dst: sptx::Reg(0),
            a: sptx::Operand::ImmF(1.0),
            b: sptx::Operand::ImmF(2.0),
        };
        assert!(inst_cost(&f64mul).0 >= 8 * inst_cost(&f32mul).0);
    }
}
