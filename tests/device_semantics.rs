//! Device-semantics integration tests: sections, single, barriers and
//! reductions inside offloaded parallel regions.

use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

fn run(src: &str, tag: &str) -> Value {
    let dir = std::env::temp_dir().join(format!("ompinano-dev-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Ompicc::new(&dir).compile(src).unwrap();
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    runner.run_main().unwrap_or_else(|e| panic!("{e}\nhost:\n{}", app.host_text))
}

#[test]
fn device_barrier_phases() {
    // Phase 1 writes, barrier, phase 2 reads neighbours.
    let src = r#"
int main() {
    int n = 96;
    int a[96];
    int b[96];
    #pragma omp target map(from: a[0:96], b[0:96]) map(to: n)
    {
        #pragma omp parallel num_threads(96)
        {
            int t = omp_get_thread_num();
            a[t] = t;
            #pragma omp barrier
            b[t] = a[(t + 1) % 96];
        }
    }
    for (int t = 0; t < n; t++)
        if (b[t] != (t + 1) % 96) return 1 + t;
    return 0;
}
"#;
    assert_eq!(run(src, "barrier"), Value::I32(0));
}

#[test]
fn device_single_runs_once() {
    let src = r#"
int main() {
    int count = 0;
    #pragma omp target map(tofrom: count)
    {
        #pragma omp parallel num_threads(96)
        {
            #pragma omp single
            { count = count + 1; }
        }
    }
    return count;
}
"#;
    assert_eq!(run(src, "single"), Value::I32(1));
}

#[test]
fn device_sections_all_execute() {
    let src = r#"
int main() {
    int done[3];
    done[0] = 0; done[1] = 0; done[2] = 0;
    #pragma omp target map(tofrom: done[0:3])
    {
        #pragma omp parallel num_threads(96)
        {
            #pragma omp sections
            {
                #pragma omp section
                { done[0] = 1; }
                #pragma omp section
                { done[1] = 2; }
                #pragma omp section
                { done[2] = 3; }
            }
        }
    }
    return done[0] + done[1] + done[2];
}
"#;
    assert_eq!(run(src, "sections"), Value::I32(6));
}

#[test]
fn device_parallel_reduction_in_region() {
    let src = r#"
int main() {
    int n = 960;
    float data[960];
    for (int i = 0; i < n; i++) data[i] = 0.5f;
    float total = 0.0f;
    #pragma omp target map(to: data[0:n], n) map(tofrom: total)
    {
        int i;
        #pragma omp parallel for reduction(+: total)
        for (i = 0; i < n; i++)
            total += data[i];
    }
    return (int) total;
}
"#;
    assert_eq!(run(src, "redregion"), Value::I32(480));
}

#[test]
fn device_num_threads_partial() {
    let src = r#"
int main() {
    int seen[96];
    for (int i = 0; i < 96; i++) seen[i] = -1;
    #pragma omp target map(tofrom: seen[0:96])
    {
        #pragma omp parallel num_threads(40)
        {
            seen[omp_get_thread_num()] = omp_get_num_threads();
        }
    }
    for (int t = 0; t < 40; t++)
        if (seen[t] != 40) return 1;
    for (int t = 40; t < 96; t++)
        if (seen[t] != -1) return 2;
    return 0;
}
"#;
    assert_eq!(run(src, "partial"), Value::I32(0));
}

#[test]
fn device_master_and_critical() {
    let src = r#"
int main() {
    int acc = 0;
    int master_hits = 0;
    #pragma omp target map(tofrom: acc, master_hits)
    {
        #pragma omp parallel num_threads(64)
        {
            #pragma omp critical
            { acc = acc + 1; }
            #pragma omp master
            { master_hits = master_hits + 1; }
        }
    }
    if (master_hits != 1) return -1;
    return acc;
}
"#;
    // Per-thread mutual exclusion (lane-serialized by the translator):
    // every one of the 64 threads increments exactly once.
    assert_eq!(run(src, "crit"), Value::I32(64));
}
