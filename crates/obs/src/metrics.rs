//! Per-device counters and histograms.
//!
//! Keys are `(pid, name)` where `pid` matches the trace process numbering
//! (device number; host shim = `num_devices`). Histograms use log2 buckets
//! — bucket `i` counts values with bit-length `i` — which is plenty for the
//! quantities tracked here (bytes per transfer, cycles per launch).

use std::collections::BTreeMap;

use vmcommon::sync::Mutex;

/// A log2-bucket histogram.
#[derive(Clone, Debug)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    /// `buckets[i]` counts observations with bit-length `i` (0 → bucket 0).
    pub buckets: [u64; 33],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { count: 0, sum: 0, buckets: [0; 33] }
    }
}

impl Hist {
    fn bucket(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(32)
    }

    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The metrics registry. Always-on: a counter bump is one short critical
/// section on a `BTreeMap`, far off every hot path that matters here.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<(u64, String), u64>>,
    hists: Mutex<BTreeMap<(u64, String), Hist>>,
}

impl Metrics {
    pub fn incr(&self, pid: u64, name: &str, by: u64) {
        if by == 0 {
            return;
        }
        *self.counters.lock().entry((pid, name.to_string())).or_insert(0) += by;
    }

    pub fn observe(&self, pid: u64, name: &str, value: u64) {
        self.hists.lock().entry((pid, name.to_string())).or_default().observe(value);
    }

    pub fn counter(&self, pid: u64, name: &str) -> u64 {
        self.counters.lock().get(&(pid, name.to_string())).copied().unwrap_or(0)
    }

    pub fn hist(&self, pid: u64, name: &str) -> Option<Hist> {
        self.hists.lock().get(&(pid, name.to_string())).cloned()
    }

    /// All counters for one device, name-sorted.
    pub fn counters_for(&self, pid: u64) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .filter(|((p, _), _)| *p == pid)
            .map(|((_, name), v)| (name.clone(), *v))
            .collect()
    }

    /// Plain-text dump of every counter and histogram, for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((pid, name), v) in self.counters.lock().iter() {
            out.push_str(&format!("dev{pid} {name} = {v}\n"));
        }
        for ((pid, name), h) in self.hists.lock().iter() {
            out.push_str(&format!(
                "dev{pid} {name}: count={} sum={} mean={:.1}\n",
                h.count,
                h.sum,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_per_device() {
        let m = Metrics::default();
        m.incr(0, "launches", 2);
        m.incr(1, "launches", 5);
        m.incr(0, "launches", 1);
        assert_eq!(m.counter(0, "launches"), 3);
        assert_eq!(m.counter(1, "launches"), 5);
        assert_eq!(m.counter(2, "launches"), 0);
        assert_eq!(m.counters_for(0), vec![("launches".to_string(), 3)]);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let m = Metrics::default();
        for v in [0u64, 1, 1, 7, 4096] {
            m.observe(0, "bytes", v);
        }
        let h = m.hist(0, "bytes").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 4105);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 2); // 1, 1
        assert_eq!(h.buckets[3], 1); // 7
        assert_eq!(h.buckets[13], 1); // 4096
        assert!(m.hist(0, "other").is_none());
    }
}
