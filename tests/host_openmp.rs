//! Host-side OpenMP through the full pipeline: the translated host program
//! drives the hostomp runtime (OMPi is "a complete host OpenMP
//! implementation" the device work plugs into — §4.2).

use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

fn run(src: &str, tag: &str) -> (Runner, Value) {
    let dir = std::env::temp_dir().join(format!("ompinano-host-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Ompicc::new(&dir).compile(src).unwrap();
    let runner = Runner::new(&app, &RunnerConfig::default()).unwrap();
    let v = runner.run_main().unwrap_or_else(|e| panic!("{e}\nhost:\n{}", app.host_text));
    (runner, v)
}

#[test]
fn parallel_num_threads_and_ids() {
    let src = r#"
int main() {
    int ids[4];
    #pragma omp parallel num_threads(4)
    {
        ids[omp_get_thread_num()] = omp_get_thread_num() + 10;
    }
    return ids[0] + ids[1] + ids[2] + ids[3];
}
"#;
    let (_, v) = run(src, "ids");
    assert_eq!(v, Value::I32(10 + 11 + 12 + 13));
}

#[test]
fn parallel_for_schedules_cover() {
    for sched in ["static", "static, 5", "dynamic, 3", "guided"] {
        let src = format!(
            r#"
int main() {{
    int n = 777;
    int hits[777];
    for (int i = 0; i < n; i++) hits[i] = 0;
    #pragma omp parallel for num_threads(4) schedule({sched})
    for (int i = 0; i < n; i++)
        hits[i] = hits[i] + 1;
    for (int i = 0; i < n; i++)
        if (hits[i] != 1) return 1 + i;
    return 0;
}}
"#
        );
        let (_, v) = run(&src, &format!("sched-{}", sched.replace([',', ' '], "")));
        assert_eq!(v, Value::I32(0), "schedule({sched})");
    }
}

#[test]
fn firstprivate_and_private() {
    let src = r#"
int main() {
    int base = 100;
    int scratch = -1;
    int out[4];
    #pragma omp parallel num_threads(4) firstprivate(base) private(scratch)
    {
        scratch = omp_get_thread_num();
        base = base + scratch;       /* private copy: no races */
        out[scratch] = base;
    }
    /* base itself is unchanged on the host (firstprivate) */
    if (base != 100) return -1;
    return out[0] + out[1] + out[2] + out[3];
}
"#;
    let (_, v) = run(src, "fp");
    assert_eq!(v, Value::I32(100 + 101 + 102 + 103));
}

#[test]
fn sections_single_master() {
    let src = r#"
int main() {
    int a = 0;
    int b = 0;
    int c = 0;
    int singles = 0;
    int masters = 0;
    #pragma omp parallel num_threads(3)
    {
        #pragma omp sections
        {
            #pragma omp section
            { a = 1; }
            #pragma omp section
            { b = 2; }
            #pragma omp section
            { c = 3; }
        }
        #pragma omp single
        {
            #pragma omp critical
            { singles = singles + 1; }
        }
        #pragma omp master
        { masters = masters + 1; }
    }
    if (singles != 1) return -1;
    if (masters != 1) return -2;
    return a + b + c;
}
"#;
    let (_, v) = run(src, "ssm");
    assert_eq!(v, Value::I32(6));
}

#[test]
fn collapse_on_host_parallel_for() {
    let src = r#"
int main() {
    int n = 20;
    int grid[400];
    for (int i = 0; i < 400; i++) grid[i] = 0;
    #pragma omp parallel for collapse(2) num_threads(4)
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            grid[i * 20 + j] = i + j;
    int sum = 0;
    for (int i = 0; i < n * n; i++) sum += grid[i];
    return sum;
}
"#;
    let (_, v) = run(src, "collapse");
    // sum over i,j of (i+j) = 2 * 20 * (0+..+19) = 2*20*190
    assert_eq!(v, Value::I32(2 * 20 * 190));
}

#[test]
fn omp_api_queries() {
    let src = r#"
int main() {
    if (omp_get_num_devices() != 1) return 1;
    if (omp_is_initial_device() != 1) return 2;
    if (omp_in_parallel()) return 3;
    double t0 = omp_get_wtime();
    double t1 = omp_get_wtime();
    if (t1 < t0) return 4;
    omp_set_num_threads(3);
    int seen = 0;
    #pragma omp parallel
    {
        #pragma omp master
        { seen = omp_get_num_threads(); }
    }
    return seen;
}
"#;
    let (_, v) = run(src, "api");
    assert_eq!(v, Value::I32(3));
}

#[test]
fn host_then_device_in_one_program() {
    // CPU preprocessing feeding a GPU offload: the full heterogeneous flow.
    let src = r#"
int main() {
    int n = 256;
    float v[256];
    #pragma omp parallel for num_threads(4)
    for (int i = 0; i < n; i++)
        v[i] = (float) i;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n])
    for (int i = 0; i < n; i++)
        v[i] = v[i] * 2.0f;
    float sum = 0.0f;
    for (int i = 0; i < n; i++) sum += v[i];
    return (int) (sum / 256.0f);   /* 2*avg(0..255) = 255 */
}
"#;
    let (runner, v) = run(src, "mixed");
    assert_eq!(v, Value::I32(255));
    assert_eq!(runner.dev_clock().launches, 1);
}
