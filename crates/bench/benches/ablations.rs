//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `mw_overhead` — the same loop lowered through the master/worker scheme
//!   (stand-alone `parallel for` in a `target`) vs. the combined construct
//!   (§3.1 vs §3.2). The paper recommends combined constructs for loops;
//!   this quantifies why in simulated time.
//! * `jit_vs_cubin` — kernel loading cost in PTX-JIT mode (cold and warm
//!   cache) vs. cubin mode (§3.3).
//!
//! Plain harness (`harness = false`).

use ompi_bench::timeit;
use ompi_core::{Ompicc, Runner, RunnerConfig};
use vmcommon::Value;

fn compile_and_run(src: &str, tag: &str, mode: nvccsim::BinMode) -> (Runner, f64) {
    let dir = std::env::temp_dir().join(format!("ompi-ablate-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Ompicc::new(&dir).with_mode(mode).compile(src).expect("compile");
    let cfg = RunnerConfig { jit_cache_dir: dir.join("jit"), ..RunnerConfig::default() };
    let runner = Runner::new(&app, &cfg).expect("runner");
    runner.run_main().expect("run");
    let t = runner.dev_clock().total_s();
    (runner, t)
}

const COMBINED: &str = r#"
int main() {
    int n = 4096;
    float v[4096];
    for (int i = 0; i < n; i++) v[i] = 1.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n]) num_threads(128)
    for (int i = 0; i < n; i++)
        v[i] = v[i] * 2.0f + 1.0f;
    return 0;
}
"#;

const MASTER_WORKER: &str = r#"
int main() {
    int n = 4096;
    float v[4096];
    for (int i = 0; i < n; i++) v[i] = 1.0f;
    #pragma omp target map(tofrom: v[0:n]) map(to: n)
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++)
            v[i] = v[i] * 2.0f + 1.0f;
    }
    return 0;
}
"#;

fn mw_overhead() {
    let (r_comb, t_comb) = compile_and_run(COMBINED, "combined", nvccsim::BinMode::Cubin);
    let (r_mw, t_mw) = compile_and_run(MASTER_WORKER, "mw", nvccsim::BinMode::Cubin);
    println!(
        "# ablation mw_overhead: combined {t_comb:.6}s vs master/worker {t_mw:.6}s (x{:.2})",
        t_mw / t_comb.max(1e-12)
    );
    timeit("ablation/mw_overhead/combined", 5, || {
        r_comb.reset_dev_clock();
        r_comb.run_main().unwrap();
    });
    timeit("ablation/mw_overhead/master_worker", 5, || {
        r_mw.reset_dev_clock();
        r_mw.run_main().unwrap();
    });
}

fn jit_vs_cubin() {
    let src = "__global__ void k(float *a) { a[threadIdx.x] = 2.0f; }";
    let dir = std::env::temp_dir().join("ompi-ablate-jit");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("kernels")).unwrap();
    // Produce both artifact kinds.
    nvccsim::Nvcc::new(nvccsim::BinMode::Cubin, dir.join("kernels"), cudadev::exports())
        .compile_kernel_source("mod_cubin", src)
        .unwrap();
    nvccsim::Nvcc::new(nvccsim::BinMode::Ptx, dir.join("kernels"), vec![])
        .compile_kernel_source("mod_ptx", src)
        .unwrap();

    let fresh_dev = || {
        cudadev::CudaDev::new(cudadev::CudaDevConfig {
            global_mem: 8 << 20,
            kernel_dir: dir.join("kernels"),
            jit_cache_dir: dir.join("jitcache"),
            exec_mode: gpusim::ExecMode::Functional,
            ..Default::default()
        })
    };

    timeit("ablation/jit_vs_cubin/cubin_load", 20, || {
        fresh_dev().load_module("mod_cubin").unwrap();
    });
    timeit("ablation/jit_vs_cubin/ptx_jit_cold", 20, || {
        let _ = std::fs::remove_dir_all(dir.join("jitcache"));
        fresh_dev().load_module("mod_ptx").unwrap();
    });
    // Warm the cache once, then measure hits.
    fresh_dev().load_module("mod_ptx").unwrap();
    timeit("ablation/jit_vs_cubin/ptx_jit_cached", 20, || {
        fresh_dev().load_module("mod_ptx").unwrap();
    });

    let _ = Value::I32(0);
}

fn main() {
    mw_overhead();
    jit_vs_cubin();
}
