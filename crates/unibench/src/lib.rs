//! `unibench` — the evaluation suite of the paper (§5).
//!
//! Six UniBench/Polybench applications, each in three forms:
//!
//! * an **OpenMP** version using `target`-family constructs (compiled by
//!   the OMPi reproduction, executed through the cudadev module);
//! * a **pure CUDA** version (the baseline the paper compares against,
//!   compiled by the nvcc stand-in);
//! * a **sequential Rust reference** used to validate both.
//!
//! The applications: `3dconv` (stencil), `bicg`, `atax`, `mvt`, `gemm`
//! (kernels) and `gramschmidt` (solver) — "typical GPU workloads" from the
//! linear-algebra and stencil categories.

use std::sync::Arc;

use gpusim::ExecMode;
use minic::interp::{IResult, Interp, Machine, NoHooks};
use ompi_core::{CudaCc, Ompicc, Runner, RunnerConfig};
use vmcommon::{addr, Value};

pub mod apps;
pub mod harness;

pub use apps::{all_apps, app_by_name, App};
pub use harness::{
    build_variant, build_variant_cfg, build_variant_obs, measure, output_checksum, validate_app,
    Built, Measurement, Variant,
};

/// Allocate a guest f32 buffer on a machine's heap and fill it.
pub fn alloc_f32(m: &Machine, data: &[f32]) -> IResult<Value> {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let off = m.heap.lock().alloc(bytes.len().max(4) as u64)?;
    m.mem.write_bytes(off, &bytes)?;
    Ok(Value::Ptr(addr::make(addr::Space::Host, off)))
}

/// Read back a guest f32 buffer.
pub fn read_f32(m: &Machine, ptr: Value, len: usize) -> IResult<Vec<f32>> {
    let mut bytes = vec![0u8; len * 4];
    m.mem.read_bytes(addr::offset(ptr.as_ptr()), &mut bytes)?;
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Relative-error comparison for float outputs produced with different
/// accumulation orders.
pub fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let denom = x.abs().max(y.abs()).max(1e-3);
            (x - y).abs() / denom
        })
        .fold(0.0f32, f32::max)
}

/// Default runner configuration for a problem size (arena sizes scale with
/// the footprint).
pub fn runner_config(bytes_needed: u64, exec_mode: ExecMode, sampling: bool) -> RunnerConfig {
    let slack = 96u64 << 20;
    RunnerConfig {
        host_mem: (bytes_needed + slack) as usize,
        device_mem: Some((bytes_needed + slack) as usize),
        exec_mode,
        jit_cache_dir: std::env::temp_dir().join("ompi-jitcache"),
        launch_sampling: sampling,
        ..RunnerConfig::default()
    }
}

/// Compile helpers used by tests and the Fig. 4 harness.
pub fn compile_omp(app: &App, work_dir: &std::path::Path) -> ompi_core::CompiledApp {
    Ompicc::new(work_dir.join(format!("{}-omp", app.name)))
        .compile(app.omp_src)
        .unwrap_or_else(|e| panic!("ompicc failed for {}: {e}", app.name))
}

pub fn compile_cuda(app: &App, work_dir: &std::path::Path) -> ompi_core::CompiledCudaApp {
    CudaCc::new(work_dir.join(format!("{}-cuda", app.name)))
        .compile(app.cuda_src, &format!("{}_cuda", app.name))
        .unwrap_or_else(|e| panic!("cudacc failed for {}: {e}", app.name))
}

/// Run an app's guest `run(...)` entry with freshly initialized buffers;
/// returns the outputs. Buffers are freed afterwards so repeated
/// measurements (Criterion iterations) do not exhaust the guest heap.
pub fn run_once(app: &App, runner: &Runner, n: u32) -> IResult<Vec<f32>> {
    run_entry(app, &runner.machine, n, |args| runner.call("run", args))
}

/// Build a machine that executes an app's untranslated OpenMP source
/// directly on the host (directives get 1-thread semantics).
pub fn host_machine(app: &App, n: u32) -> IResult<Arc<Machine>> {
    let slack = 96u64 << 20;
    Machine::from_source_with_mem(app.omp_src, ((app.footprint)(n) + slack) as usize)
}

/// Run an app's guest `run(...)` host-sequentially on `m`'s current engine
/// (no OMPi translation, no device hooks). Same buffer discipline as
/// [`run_once`].
pub fn run_host_once(app: &App, m: &Arc<Machine>, n: u32) -> IResult<Vec<f32>> {
    let mut i = Interp::new(m.clone(), Arc::new(NoHooks))?;
    run_entry(app, m, n, |args| i.call("run", args))
}

fn run_entry(
    app: &App,
    m: &Arc<Machine>,
    n: u32,
    mut call: impl FnMut(&[Value]) -> IResult<Value>,
) -> IResult<Vec<f32>> {
    let args = (app.setup)(m, n)?;
    let ran = call(&args);
    let out = ran.and_then(|_| (app.outputs)(m, &args, n));
    for a in &args[1..] {
        if let Value::Ptr(p) = a {
            let _ = m.heap.lock().free(addr::offset(*p));
        }
    }
    out
}
