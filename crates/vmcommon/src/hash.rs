//! FNV-1a hashing, used for JIT disk-cache keys and kernel-binary checksums.

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hex form convenient for filenames.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_16_chars() {
        assert_eq!(fnv1a_hex(b"kernel").len(), 16);
    }
}
