//! JIT compilation of PTX-mode kernels, with disk caching (§3.3).
//!
//! In PTX mode the final compilation step happens at run time "just before
//! the actual offloading". The CUDA driver caches JIT results on disk to
//! eliminate repeated compilations of the same kernels; we reproduce that:
//! the cache key is the FNV-1a hash of the `.sptx` text, the cached value
//! is the linked `.cubin`.
//!
//! The cache is **crash- and corruption-safe**: entries are written to a
//! unique temporary file and atomically renamed into place, so a reader
//! never observes a half-written artifact; and any entry that fails to
//! decode (torn write, bit rot, injected corruption) is invalidated and
//! recompiled instead of being trusted.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vmcommon::hash::fnv1a_hex;

/// Where the cache entry for `text` lives under `cache_dir`.
pub fn cache_path(text: &str, cache_dir: &Path) -> PathBuf {
    cache_dir.join(format!("{}.cubin", fnv1a_hex(text.as_bytes())))
}

/// Per-process counter making concurrent temp names unique even within one
/// process (the pid alone is not enough when two threads JIT the same
/// kernel).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically publish `bytes` at `path`: write a unique sibling temp file,
/// then rename over the target. A failed write is not fatal (e.g. read-only
/// disk) — the cache is an optimization, not a source of truth.
fn publish_atomic(path: &Path, bytes: &[u8]) {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Assemble + link a `.sptx` text, using/filling the disk cache.
/// Returns `(module, cache_hit)`.
pub fn jit_load(
    text: &str,
    cache_dir: &Path,
    lib_symbols: &[String],
) -> Result<(Arc<sptx::Module>, bool), String> {
    let cached = cache_path(text, cache_dir);
    if let Ok(bytes) = std::fs::read(&cached) {
        if let Ok(m) = sptx::cubin::decode(&bytes) {
            return Ok((Arc::new(m), true));
        }
        // Corrupt cache entry: invalidate, fall through and recompile.
        let _ = std::fs::remove_file(&cached);
    }
    // "Compile": assemble the text and link the device library.
    let mut module = sptx::text::parse_module(text).map_err(|e| e.to_string())?;
    nvccsim::link_module(&mut module, lib_symbols).map_err(|e| e.to_string())?;
    sptx::verify_module(&module).map_err(|e| e.to_string())?;
    if std::fs::create_dir_all(cache_dir).is_ok() {
        publish_atomic(&cached, &sptx::cubin::encode(&module));
    }
    Ok((Arc::new(module), false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text() -> String {
        let src = "__global__ void k(float *a) { a[threadIdx.x] = 3.0f; }";
        let m = nvccsim::compile_source(src, "jit_sample").unwrap();
        sptx::text::print_module(&m)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cudadev-jit-{tag}-{}", std::process::id()))
    }

    #[test]
    fn jit_compiles_then_hits_cache() {
        let dir = tmpdir("basic");
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        let (m1, hit1) = jit_load(&text, &dir, &[]).unwrap();
        assert!(!hit1, "first load must compile");
        assert!(m1.device_lib_linked);
        let (m2, hit2) = jit_load(&text, &dir, &[]).unwrap();
        assert!(hit2, "second load must hit the disk cache");
        assert_eq!(*m1, *m2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_recompiles() {
        let dir = tmpdir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        jit_load(&text, &dir, &[]).unwrap();
        // Corrupt the cached file.
        let path = cache_path(&text, &dir);
        std::fs::write(&path, b"garbage").unwrap();
        let (_, hit) = jit_load(&text, &dir, &[]).unwrap();
        assert!(!hit, "corrupt entry must be recompiled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every truncation of a valid cache entry (a torn write that bypassed
    /// the atomic rename) is detected and recompiled — never loaded as a
    /// wrong module.
    #[test]
    fn truncated_cache_entry_never_loads_wrong() {
        let dir = tmpdir("truncate");
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        let (good, _) = jit_load(&text, &dir, &[]).unwrap();
        let path = cache_path(&text, &dir);
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 1, 2, full.len() / 2, full.len().saturating_sub(1)] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (m, hit) = jit_load(&text, &dir, &[]).unwrap();
            // Either the decode failed (recompile) or — impossible for a
            // strict decoder — it produced the identical module anyway.
            assert!(!hit || *m == *good, "truncation at {cut} yielded a wrong module");
            assert_eq!(*m, *good, "truncation at {cut}: module differs after reload");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Concurrent JIT loads of the same kernel never observe each other's
    /// partial writes: every thread gets the correct module.
    #[test]
    fn concurrent_loads_never_corrupt() {
        let dir = tmpdir("concurrent");
        let _ = std::fs::remove_dir_all(&dir);
        let text = sample_text();
        let (good, _) = jit_load(&text, &dir, &[]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let text = &text;
                let dir = &dir;
                let good = &good;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let (m, _) = jit_load(text, dir, &[]).unwrap();
                        assert_eq!(*m, **good);
                    }
                });
            }
        });
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "cubin"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_kernels_different_keys() {
        let a = sample_text();
        let b = a.replace("3.0", "4.0");
        assert_ne!(fnv1a_hex(a.as_bytes()), fnv1a_hex(b.as_bytes()));
    }
}
