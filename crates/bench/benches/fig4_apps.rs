//! Wall-time benches regenerating each Fig. 4 subplot at its two smallest
//! paper sizes (the full sweep is `cargo run --release --bin fig4`).
//! The measured quantity here is the wall time of the simulation; the
//! *simulated* times (the paper's metric) are printed alongside.
//!
//! Plain harness (`harness = false`): each case runs a fixed number of
//! iterations and reports min/mean wall time.

use gpusim::ExecMode;
use ompi_bench::timeit;
use unibench::{app_by_name, build_variant, measure, Variant};

fn bench_app(name: &str) {
    let app = app_by_name(name).expect("app");
    let work = std::env::temp_dir().join("ompi-bench-fig4");
    let mode = ExecMode::Sampled { max_blocks: 2 };
    // gramschmidt launches O(n) kernels per run; one size keeps the bench
    // wall time sane (the full sweep lives in the fig4 binary).
    let nsizes = if name == "gramschmidt" { 1 } else { 2 };
    for &n in &app.paper_sizes[..nsizes] {
        for variant in [Variant::Cuda, Variant::OmpiCudadev] {
            let built = build_variant(&app, variant, n, mode, true, &work);
            // Print the simulated time once per configuration: the
            // registry aggregate plus the per-device launch split.
            let m = measure(&app, &built, n);
            let per_dev: Vec<String> = m
                .per_device
                .iter()
                .enumerate()
                .map(|(i, d)| format!("dev{i}:{}", d.launches))
                .collect();
            println!(
                "# fig4/{name} {} n={n}: simulated {:.6}s, launches [{}]",
                variant.label(),
                m.time_s,
                per_dev.join(" ")
            );
            timeit(&format!("fig4/{name}/{}/{n}", variant.label()), 5, || {
                measure(&app, &built, n);
            });
        }
    }
}

fn main() {
    for name in ["3dconv", "bicg", "atax", "mvt", "gemm", "gramschmidt"] {
        bench_app(name);
    }
}
