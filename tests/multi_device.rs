//! Multi-device registry integration tests: `device(n)` clause routing,
//! the `omp_*` device-API ICVs, per-device fault scoping, and independent
//! host fallback — killing device 0 must not disturb device 1.

use ompi_nano::{Ompicc, Runner, RunnerConfig, Value};

/// Two offloaded loops, pinned to devices 0 and 1 by `device()` clauses.
/// Each writes its own array; main verifies both results on the host.
const TWO_DEV: &str = r#"
int main() {
    int n = 256;
    float a[256]; float b[256];
    for (int i = 0; i < n; i++) { a[i] = 1.0f; b[i] = 2.0f; }
    #pragma omp target teams distribute parallel for device(0) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = a[i] + 1.0f;
    #pragma omp target teams distribute parallel for device(1) map(tofrom: b[0:n])
    for (int i = 0; i < n; i++)
        b[i] = b[i] * 2.0f;
    for (int i = 0; i < n; i++) {
        if (a[i] != 2.0f) return 1;
        if (b[i] != 4.0f) return 2;
    }
    return 0;
}
"#;

fn compile(tag: &str, src: &str) -> ompi_nano::CompiledApp {
    let dir = std::env::temp_dir().join(format!("ompinano-mdev-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ompicc::new(&dir).compile(src).unwrap()
}

fn two_dev_cfg(fault_spec: Option<&str>) -> RunnerConfig {
    RunnerConfig {
        num_devices: 2,
        fault_spec: fault_spec.map(str::to_string),
        ..Default::default()
    }
}

/// Healthy two-device run: each region lands on its own device and the
/// per-device clocks account for exactly one launch each.
#[test]
fn device_clauses_route_regions_to_distinct_devices() {
    let app = compile("route", TWO_DEV);
    let runner = Runner::new(&app, &two_dev_cfg(None)).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));

    assert_eq!(runner.num_devices(), 2);
    let c0 = runner.dev_clock_of(0).unwrap();
    let c1 = runner.dev_clock_of(1).unwrap();
    assert_eq!(c0.launches, 1, "region with device(0) must launch on device 0");
    assert_eq!(c1.launches, 1, "region with device(1) must launch on device 1");
    // The aggregate clock is the per-device sum.
    assert_eq!(runner.dev_clock().launches, 2);
    assert!((runner.dev_clock().kernel_s - (c0.kernel_s + c1.kernel_s)).abs() < 1e-12);
}

/// The tentpole acceptance scenario: a terminal fault kills device 0; its
/// region falls back to the host (results still correct), while device 1
/// keeps offloading, unaffected.
#[test]
fn killing_dev0_falls_back_to_host_while_dev1_keeps_offloading() {
    let app = compile("dev0-dead", TWO_DEV);
    let runner = Runner::new(&app, &two_dev_cfg(Some("dev0:launch@1x*"))).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0), "host fallback must preserve results");

    assert!(runner.device_broken_at(0), "terminal launch fault must latch device 0");
    assert!(!runner.device_broken_at(1), "device 1 must be untouched by device 0's fault");
    let c1 = runner.dev_clock_of(1).unwrap();
    assert_eq!(c1.launches, 1, "device 1 must still offload its region");
}

/// Per-device scoping in the other direction: dev1-scoped rules leave
/// device 0 healthy.
#[test]
fn dev1_scoped_fault_leaves_dev0_healthy() {
    let app = compile("dev1-dead", TWO_DEV);
    let runner = Runner::new(&app, &two_dev_cfg(Some("dev1:launch@1x*"))).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));

    assert!(!runner.device_broken_at(0));
    assert!(runner.device_broken_at(1));
    assert_eq!(runner.dev_clock_of(0).unwrap().launches, 1);
}

/// A malformed `devN:` prefix is rejected at runner construction, not at
/// first offload.
#[test]
fn malformed_device_prefix_is_rejected_up_front() {
    let app = compile("badspec", TWO_DEV);
    let err = Runner::new(&app, &two_dev_cfg(Some("devX:launch@1"))).err();
    assert!(err.is_some(), "malformed fault spec must fail Runner::new");
}

/// The interpreted program sees the registry through the OpenMP device
/// API: device count, default-device ICV, and the initial device number.
#[test]
fn omp_device_api_reflects_the_registry() {
    let src = r#"
int main() {
    if (omp_get_num_devices() != 2) return 1;
    if (omp_get_initial_device() != 2) return 2;
    if (omp_get_default_device() != 0) return 3;
    omp_set_default_device(1);
    if (omp_get_default_device() != 1) return 4;
    return 0;
}
"#;
    let app = compile("api", src);
    let runner = Runner::new(&app, &two_dev_cfg(None)).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
}

/// A region without a `device()` clause follows the default-device ICV set
/// by `omp_set_default_device`.
#[test]
fn default_device_icv_routes_unclaused_regions() {
    let src = r#"
int main() {
    int n = 64;
    float a[64];
    for (int i = 0; i < n; i++) a[i] = 1.0f;
    omp_set_default_device(1);
    #pragma omp target teams distribute parallel for map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = a[i] + 1.0f;
    for (int i = 0; i < n; i++)
        if (a[i] != 2.0f) return 1;
    return 0;
}
"#;
    let app = compile("icv", src);
    let runner = Runner::new(&app, &two_dev_cfg(None)).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert_eq!(runner.dev_clock_of(0).unwrap().launches, 0);
    assert_eq!(runner.dev_clock_of(1).unwrap().launches, 1);
}

/// `device(n)` past the last offload device selects the initial device:
/// the region runs on the host (no launches anywhere) yet stays correct.
#[test]
fn out_of_range_device_runs_on_the_initial_device() {
    let src = r#"
int main() {
    int n = 64;
    float a[64];
    for (int i = 0; i < n; i++) a[i] = 3.0f;
    #pragma omp target teams distribute parallel for device(2) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++)
        a[i] = a[i] * 3.0f;
    for (int i = 0; i < n; i++)
        if (a[i] != 9.0f) return 1;
    return 0;
}
"#;
    let app = compile("initial", src);
    let runner = Runner::new(&app, &two_dev_cfg(None)).unwrap();
    assert_eq!(runner.run_main().unwrap(), Value::I32(0));
    assert_eq!(runner.dev_clock().launches, 0, "the initial device never launches kernels");
}
