//! Application definitions: sources, workload setup, sequential references.

use minic::interp::{IResult, Machine};
use vmcommon::Value;

use crate::{alloc_f32, read_f32};

/// One benchmark application.
pub struct App {
    pub name: &'static str,
    /// OpenMP offload source (`run(...)` entry).
    pub omp_src: &'static str,
    /// Hand-written CUDA source (`run(...)` entry).
    pub cuda_src: &'static str,
    /// Problem sizes of the paper's Fig. 4 x-axis.
    pub paper_sizes: &'static [u32],
    /// Small size used by the functional validation tests.
    pub test_size: u32,
    /// Size used by the fig4 host-sequential perf-trajectory series
    /// (large enough that engine dispatch dominates, small enough for CI).
    pub bench_size: u32,
    /// Relative-error tolerance for validation.
    pub tolerance: f32,
    /// Bytes of guest memory needed at size n.
    pub footprint: fn(u32) -> u64,
    /// Allocate + initialize buffers; returns `run(...)` arguments
    /// (first argument is always `n`).
    pub setup: fn(&Machine, u32) -> IResult<Vec<Value>>,
    /// Read the output buffers after `run`.
    pub outputs: fn(&Machine, &[Value], u32) -> IResult<Vec<f32>>,
    /// Sequential Rust reference producing the same outputs.
    pub reference: fn(u32) -> Vec<f32>,
}

/// All six applications of the paper's Fig. 4.
pub fn all_apps() -> Vec<App> {
    vec![conv3d(), bicg(), atax(), mvt(), gemm(), gramschmidt()]
}

pub fn app_by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

// ------------------------------------------------------------------ inits

fn init_gemm(n: u32) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = n as usize;
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i * j + 1) % n) as f32 / n as f32;
            b[i * n + j] = ((i * j + 2) % n) as f32 / n as f32;
            c[i * n + j] = ((i * j + 3) % n) as f32 / n as f32;
        }
    }
    (a, b, c)
}

fn init_matrix(n: u32) -> Vec<f32> {
    let n = n as usize;
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i + j) % n) as f32 / n as f32;
        }
    }
    a
}

fn init_vec(n: u32, seed: u32) -> Vec<f32> {
    (0..n).map(|i| ((i + seed) % 17) as f32 * 0.25).collect()
}

// ------------------------------------------------------------------- gemm

fn gemm() -> App {
    App {
        name: "gemm",
        omp_src: include_str!("apps/gemm_omp.c"),
        cuda_src: include_str!("apps/gemm_cuda.c"),
        paper_sizes: &[128, 256, 512, 1024, 2048],
        test_size: 40,
        bench_size: 128,
        tolerance: 2e-4,
        footprint: |n| 3 * (n as u64 * n as u64 * 4) + (n as u64 * n as u64 * 4),
        setup: |m, n| {
            let (a, b, c) = init_gemm(n);
            Ok(vec![Value::I32(n as i32), alloc_f32(m, &a)?, alloc_f32(m, &b)?, alloc_f32(m, &c)?])
        },
        outputs: |m, args, n| read_f32(m, args[3], (n * n) as usize),
        reference: |n| {
            let (a, b, c0) = init_gemm(n);
            let n = n as usize;
            let mut c = vec![0.0f32; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = c0[i * n + j] * 2123.0f32;
                    for k in 0..n {
                        acc += 32412.0f32 * a[i * n + k] * b[k * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
            c
        },
    }
}

// ------------------------------------------------------------------- atax

fn atax() -> App {
    App {
        name: "atax",
        omp_src: include_str!("apps/atax_omp.c"),
        cuda_src: include_str!("apps/atax_cuda.c"),
        paper_sizes: &[512, 1024, 2048, 4096, 8192],
        test_size: 96,
        bench_size: 1024,
        tolerance: 1e-4,
        footprint: |n| 2 * (n as u64 * n as u64 * 4) + 16 * n as u64,
        setup: |m, n| {
            let a = init_matrix(n);
            let x = init_vec(n, 1);
            Ok(vec![
                Value::I32(n as i32),
                alloc_f32(m, &a)?,
                alloc_f32(m, &x)?,
                alloc_f32(m, &vec![0.0; n as usize])?, // y
                alloc_f32(m, &vec![0.0; n as usize])?, // tmp
            ])
        },
        outputs: |m, args, n| read_f32(m, args[3], n as usize),
        reference: |n| {
            let a = init_matrix(n);
            let x = init_vec(n, 1);
            let n = n as usize;
            let mut tmp = vec![0.0f32; n];
            let mut y = vec![0.0f32; n];
            for i in 0..n {
                let mut t = 0.0f32;
                for j in 0..n {
                    t += a[i * n + j] * x[j];
                }
                tmp[i] = t;
            }
            for j in 0..n {
                let mut t = 0.0f32;
                for i in 0..n {
                    t += a[i * n + j] * tmp[i];
                }
                y[j] = t;
            }
            y
        },
    }
}

// ------------------------------------------------------------------- bicg

fn bicg() -> App {
    App {
        name: "bicg",
        omp_src: include_str!("apps/bicg_omp.c"),
        cuda_src: include_str!("apps/bicg_cuda.c"),
        paper_sizes: &[512, 1024, 2048, 4096, 8192],
        test_size: 96,
        bench_size: 1024,
        tolerance: 1e-4,
        footprint: |n| 2 * (n as u64 * n as u64 * 4) + 24 * n as u64,
        setup: |m, n| {
            let a = init_matrix(n);
            let r = init_vec(n, 3);
            let p = init_vec(n, 5);
            Ok(vec![
                Value::I32(n as i32),
                alloc_f32(m, &a)?,
                alloc_f32(m, &r)?,
                alloc_f32(m, &vec![0.0; n as usize])?, // s
                alloc_f32(m, &p)?,
                alloc_f32(m, &vec![0.0; n as usize])?, // q
            ])
        },
        outputs: |m, args, n| {
            let mut s = read_f32(m, args[3], n as usize)?;
            let q = read_f32(m, args[5], n as usize)?;
            s.extend(q);
            Ok(s)
        },
        reference: |n| {
            let a = init_matrix(n);
            let r = init_vec(n, 3);
            let p = init_vec(n, 5);
            let n = n as usize;
            let mut s = vec![0.0f32; n];
            let mut q = vec![0.0f32; n];
            for j in 0..n {
                let mut t = 0.0f32;
                for i in 0..n {
                    t += a[i * n + j] * r[i];
                }
                s[j] = t;
            }
            for i in 0..n {
                let mut t = 0.0f32;
                for j in 0..n {
                    t += a[i * n + j] * p[j];
                }
                q[i] = t;
            }
            s.extend(q);
            s
        },
    }
}

// -------------------------------------------------------------------- mvt

fn mvt() -> App {
    App {
        name: "mvt",
        omp_src: include_str!("apps/mvt_omp.c"),
        cuda_src: include_str!("apps/mvt_cuda.c"),
        paper_sizes: &[512, 1024, 2048, 4096, 8192],
        test_size: 96,
        bench_size: 1024,
        tolerance: 1e-4,
        footprint: |n| 2 * (n as u64 * n as u64 * 4) + 32 * n as u64,
        setup: |m, n| {
            let a = init_matrix(n);
            Ok(vec![
                Value::I32(n as i32),
                alloc_f32(m, &a)?,
                alloc_f32(m, &init_vec(n, 0))?, // x1
                alloc_f32(m, &init_vec(n, 2))?, // x2
                alloc_f32(m, &init_vec(n, 4))?, // y1
                alloc_f32(m, &init_vec(n, 6))?, // y2
            ])
        },
        outputs: |m, args, n| {
            let mut x1 = read_f32(m, args[2], n as usize)?;
            let x2 = read_f32(m, args[3], n as usize)?;
            x1.extend(x2);
            Ok(x1)
        },
        reference: |n| {
            let a = init_matrix(n);
            let mut x1 = init_vec(n, 0);
            let mut x2 = init_vec(n, 2);
            let y1 = init_vec(n, 4);
            let y2 = init_vec(n, 6);
            let n = n as usize;
            for i in 0..n {
                let mut t = x1[i];
                for j in 0..n {
                    t += a[i * n + j] * y1[j];
                }
                x1[i] = t;
            }
            for i in 0..n {
                let mut t = x2[i];
                for j in 0..n {
                    t += a[j * n + i] * y2[j];
                }
                x2[i] = t;
            }
            x1.extend(x2);
            x1
        },
    }
}

// ----------------------------------------------------------------- 3dconv

fn conv3d() -> App {
    App {
        name: "3dconv",
        omp_src: include_str!("apps/conv3d_omp.c"),
        cuda_src: include_str!("apps/conv3d_cuda.c"),
        paper_sizes: &[32, 64, 128, 256, 384],
        test_size: 16,
        bench_size: 64,
        tolerance: 1e-5,
        footprint: |n| 2 * (n as u64 * n as u64 * n as u64 * 4),
        setup: |m, n| {
            let len = (n as usize).pow(3);
            let a: Vec<f32> = (0..len).map(|i| ((i % 13) as f32) / 13.0).collect();
            Ok(vec![Value::I32(n as i32), alloc_f32(m, &a)?, alloc_f32(m, &vec![0.0; len])?])
        },
        outputs: |m, args, n| read_f32(m, args[2], (n as usize).pow(3)),
        reference: |n| {
            let nn = n as usize;
            let len = nn.pow(3);
            let a: Vec<f32> = (0..len).map(|i| ((i % 13) as f32) / 13.0).collect();
            let mut b = vec![0.0f32; len];
            let at = |i: usize, j: usize, k: usize| a[i * nn * nn + j * nn + k];
            for i in 1..nn - 1 {
                for j in 1..nn - 1 {
                    for k in 1..nn - 1 {
                        b[i * nn * nn + j * nn + k] = 2.0 * at(i - 1, j - 1, k - 1)
                            + 0.5 * at(i + 1, j - 1, k - 1)
                            - 8.0 * at(i - 1, j - 1, k)
                            - 3.0 * at(i + 1, j - 1, k)
                            + 4.0 * at(i - 1, j - 1, k + 1)
                            - 1.0 * at(i + 1, j - 1, k + 1)
                            + 6.0 * at(i, j, k)
                            - 9.0 * at(i - 1, j + 1, k - 1)
                            + 2.0 * at(i + 1, j + 1, k - 1)
                            + 7.0 * at(i - 1, j + 1, k + 1)
                            + 10.0 * at(i + 1, j + 1, k + 1);
                    }
                }
            }
            b
        },
    }
}

// ------------------------------------------------------------ gramschmidt

fn init_gs(n: u32) -> Vec<f32> {
    let n = n as usize;
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i * j + 1) % n) as f32 / n as f32 + if i == j { 2.0 } else { 0.0 };
        }
    }
    a
}

fn gramschmidt() -> App {
    App {
        name: "gramschmidt",
        omp_src: include_str!("apps/gramschmidt_omp.c"),
        cuda_src: include_str!("apps/gramschmidt_cuda.c"),
        paper_sizes: &[128, 256, 512, 1024, 2048],
        test_size: 24,
        bench_size: 96,
        tolerance: 5e-2,
        footprint: |n| 6 * (n as u64 * n as u64 * 4),
        setup: |m, n| {
            let a = init_gs(n);
            let len = (n * n) as usize;
            Ok(vec![
                Value::I32(n as i32),
                alloc_f32(m, &a)?,
                alloc_f32(m, &vec![0.0; len])?, // r
                alloc_f32(m, &vec![0.0; len])?, // q
            ])
        },
        outputs: |m, args, n| {
            // Compare Q (the orthonormal basis).
            read_f32(m, args[3], (n * n) as usize)
        },
        reference: |n| {
            let nn = n as usize;
            let mut a = init_gs(n);
            let mut r = vec![0.0f32; nn * nn];
            let mut q = vec![0.0f32; nn * nn];
            for k in 0..nn {
                let mut nrm = 0.0f32;
                for i in 0..nn {
                    nrm += a[i * nn + k] * a[i * nn + k];
                }
                let rkk = nrm.sqrt();
                r[k * nn + k] = rkk;
                for i in 0..nn {
                    q[i * nn + k] = a[i * nn + k] / rkk;
                }
                for j in k + 1..nn {
                    let mut s = 0.0f32;
                    for i in 0..nn {
                        s += q[i * nn + k] * a[i * nn + j];
                    }
                    r[k * nn + j] = s;
                    for i in 0..nn {
                        a[i * nn + j] -= q[i * nn + k] * s;
                    }
                }
            }
            q
        },
    }
}
