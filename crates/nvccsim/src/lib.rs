//! `nvccsim` — the reproduction's stand-in for the NVIDIA CUDA compiler.
//!
//! Takes the pure CUDA C kernel files that the OMPi translator emits
//! (§3.3 of the paper) and lowers them to SPTX, producing either `.sptx`
//! text (PTX mode, JIT-finished at first launch) or `.cubin` binaries
//! (cubin mode, OMPi's default).

pub mod codegen;
pub mod driver;

pub use codegen::{compile_program, CompileError};
pub use driver::{compile_source, link_module, BinMode, Nvcc, NvccError, CORE_INTRINSICS};
