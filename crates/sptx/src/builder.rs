//! Ergonomic construction of SPTX functions (used by the `nvccsim`
//! compiler backend and by tests).

use crate::ir::*;

/// Builds one [`Function`], managing register allocation and nested
/// control-flow scopes.
pub struct FnBuilder {
    name: String,
    is_kernel: bool,
    params: Vec<ParamDecl>,
    num_regs: u32,
    local_size: u64,
    shared_size: u64,
    /// Stack of open node lists; `scopes[0]` is the function body.
    scopes: Vec<Vec<Node>>,
}

impl FnBuilder {
    pub fn new(name: &str, is_kernel: bool) -> FnBuilder {
        FnBuilder {
            name: name.to_string(),
            is_kernel,
            params: Vec::new(),
            num_regs: 0,
            local_size: 0,
            shared_size: 0,
            scopes: vec![Vec::new()],
        }
    }

    /// Declare a parameter; returns the register it is passed in
    /// (parameters occupy the first registers).
    pub fn param(&mut self, name: &str, ty: ScalarTy) -> Reg {
        assert_eq!(
            self.num_regs as usize,
            self.params.len(),
            "declare parameters before allocating registers"
        );
        self.params.push(ParamDecl { name: name.to_string(), ty });
        self.alloc()
    }

    /// Allocate a fresh register.
    pub fn alloc(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Reserve `size` bytes of per-thread local memory aligned to `align`;
    /// returns the byte offset within the local window.
    pub fn alloc_local(&mut self, size: u64, align: u64) -> u64 {
        let off = self.local_size.next_multiple_of(align.max(1));
        self.local_size = off + size;
        off
    }

    /// Reserve static shared memory; returns the byte offset.
    pub fn alloc_shared(&mut self, size: u64, align: u64) -> u64 {
        let off = self.shared_size.next_multiple_of(align.max(1));
        self.shared_size = off + size;
        off
    }

    pub fn emit(&mut self, i: Inst) {
        self.scopes.last_mut().expect("open scope").push(Node::Inst(i));
    }

    // Convenience emitters -------------------------------------------------

    pub fn bin(&mut self, ty: ScalarTy, op: BinOp, a: Operand, b: Operand) -> Reg {
        let dst = self.alloc();
        self.emit(Inst::Bin { ty, op, dst, a, b });
        dst
    }

    pub fn un(&mut self, ty: ScalarTy, op: UnOp, a: Operand) -> Reg {
        let dst = self.alloc();
        self.emit(Inst::Un { ty, op, dst, a });
        dst
    }

    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.alloc();
        self.emit(Inst::Mov { dst, src });
        dst
    }

    pub fn mov_to(&mut self, dst: Reg, src: Operand) {
        self.emit(Inst::Mov { dst, src });
    }

    pub fn cvt(&mut self, to: CvtTy, from: CvtTy, src: Operand) -> Reg {
        let dst = self.alloc();
        self.emit(Inst::Cvt { to, from, dst, src });
        dst
    }

    pub fn ld(&mut self, ty: MemTy, addr: Operand, offset: i64) -> Reg {
        let dst = self.alloc();
        self.emit(Inst::Ld { ty, dst, addr, offset });
        dst
    }

    pub fn st(&mut self, ty: MemTy, src: Operand, addr: Operand, offset: i64) {
        self.emit(Inst::St { ty, src, addr, offset });
    }

    pub fn intrinsic(&mut self, name: &str, args: Vec<Operand>, want_ret: bool) -> Option<Reg> {
        self.intrinsic_s(name, args, Vec::new(), want_ret)
    }

    /// Intrinsic with string immediates (e.g. a printf format).
    pub fn intrinsic_s(
        &mut self,
        name: &str,
        args: Vec<Operand>,
        sargs: Vec<String>,
        want_ret: bool,
    ) -> Option<Reg> {
        let dst = if want_ret { Some(self.alloc()) } else { None };
        self.emit(Inst::Intrinsic { name: name.to_string(), dst, args, sargs });
        dst
    }

    pub fn call(&mut self, func: u32, args: Vec<Operand>, want_ret: bool) -> Option<Reg> {
        let dst = if want_ret { Some(self.alloc()) } else { None };
        self.emit(Inst::Call { func, dst, args });
        dst
    }

    pub fn ret(&mut self, val: Option<Operand>) {
        self.emit(Inst::Ret { val });
    }

    // Structured control flow ----------------------------------------------

    /// Open an `if`; call [`FnBuilder::begin_else`] and
    /// [`FnBuilder::end_if`] to finish. The condition operand is captured
    /// at `end_if`.
    pub fn begin_if(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Switch from the then-branch to the else-branch.
    pub fn begin_else(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Close an if with no else branch.
    pub fn end_if(&mut self, cond: Operand) {
        let then_b = self.scopes.pop().expect("if scope");
        self.push_node(Node::If { cond, then_b, else_b: Vec::new() });
    }

    /// Close an if/else.
    pub fn end_if_else(&mut self, cond: Operand) {
        let else_b = self.scopes.pop().expect("else scope");
        let then_b = self.scopes.pop().expect("then scope");
        self.push_node(Node::If { cond, then_b, else_b });
    }

    pub fn begin_loop(&mut self) {
        self.scopes.push(Vec::new());
    }

    pub fn end_loop(&mut self) {
        let body = self.scopes.pop().expect("loop scope");
        self.push_node(Node::Loop { body });
    }

    pub fn brk(&mut self) {
        self.push_node(Node::Break);
    }

    pub fn cont(&mut self) {
        self.push_node(Node::Continue);
    }

    fn push_node(&mut self, n: Node) {
        self.scopes.last_mut().expect("open scope").push(n);
    }

    /// Finish the function.
    pub fn build(mut self) -> Function {
        assert_eq!(self.scopes.len(), 1, "unclosed control-flow scope");
        let mut body = self.scopes.pop().unwrap();
        // Guarantee a terminating ret.
        if !matches!(body.last(), Some(Node::Inst(Inst::Ret { .. }))) {
            body.push(Node::Inst(Inst::Ret { val: None }));
        }
        Function {
            name: self.name,
            is_kernel: self.is_kernel,
            params: self.params,
            num_regs: self.num_regs,
            local_size: self.local_size,
            shared_size: self.shared_size,
            body,
        }
    }
}

/// Shorthand operand constructors.
pub mod op {
    use crate::ir::{Operand, Reg, SpecialReg};

    pub fn r(reg: Reg) -> Operand {
        Operand::Reg(reg)
    }

    pub fn i(v: i64) -> Operand {
        Operand::ImmI(v)
    }

    pub fn f(v: f64) -> Operand {
        Operand::ImmF(v)
    }

    pub fn sp(s: SpecialReg) -> Operand {
        Operand::Special(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_kernel() {
        let mut b = FnBuilder::new("k", true);
        let p = b.param("a", ScalarTy::I64);
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let off = b.bin(ScalarTy::I64, BinOp::Mul, Operand::Reg(tid), Operand::ImmI(4));
        let addr = b.bin(ScalarTy::I64, BinOp::Add, Operand::Reg(p), Operand::Reg(off));
        let v = b.ld(MemTy::F32, Operand::Reg(addr), 0);
        let two = b.bin(ScalarTy::F32, BinOp::Mul, Operand::Reg(v), Operand::ImmF(2.0));
        b.st(MemTy::F32, Operand::Reg(two), Operand::Reg(addr), 0);
        let f = b.build();
        assert!(f.is_kernel);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.num_regs, 6);
        // Auto-appended ret.
        assert!(matches!(f.body.last(), Some(Node::Inst(Inst::Ret { val: None }))));
    }

    #[test]
    fn nested_control_flow() {
        let mut b = FnBuilder::new("f", false);
        let c = b.param("c", ScalarTy::I32);
        b.begin_loop();
        b.begin_if();
        b.brk();
        b.end_if(Operand::Reg(c));
        b.cont();
        b.end_loop();
        b.ret(None);
        let f = b.build();
        match &f.body[0] {
            Node::Loop { body } => {
                assert!(matches!(&body[0], Node::If { .. }));
                assert!(matches!(&body[1], Node::Continue));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn local_and_shared_allocation_aligned() {
        let mut b = FnBuilder::new("f", true);
        assert_eq!(b.alloc_local(1, 1), 0);
        assert_eq!(b.alloc_local(8, 8), 8);
        assert_eq!(b.alloc_shared(4, 4), 0);
        assert_eq!(b.alloc_shared(16, 16), 16);
        let f = b.build();
        assert_eq!(f.local_size, 16);
        assert_eq!(f.shared_size, 32);
    }
}
