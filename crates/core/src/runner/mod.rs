//! Execution of compiled applications: wires the host interpreter's hooks
//! to the OMPi runtimes — `hostomp` for `ort_*` calls and the device
//! registry for `__dev_*` offloading — exactly where OMPi's generated C
//! would call its runtime libraries.
//!
//! Every `__dev_*` hook takes a leading device-id argument (the value the
//! translator bound from the construct's `device()` clause); the
//! [`DeviceRegistry`] resolves it to a [`DeviceModule`], so one runner can
//! drive several simulated GPUs with independent clocks, fault plans, and
//! broken-device latches.

use cudadev::{CudaDev, CudaDevConfig, DevClock, RetryPolicy};
use devmod::{DeviceModule, DeviceRegistry};
use gpusim::{ExecMode, FaultPlan};
use minic::interp::{Hooks, IResult, Interp, InterpError, Machine};
use std::sync::Arc;
use vmcommon::Value;

use crate::driver::{CompiledApp, CompiledCudaApp};

mod config;
mod hooks;

pub use config::{
    ConfigError, ResolvedConfig, DEFAULT_DEVICE_MEM, DEFAULT_LAUNCH_TIMEOUT, DEFAULT_MAX_RESETS,
};
pub use hooks::OmpiHooks;

/// Runner configuration.
///
/// The four device knobs that also have `OMPI_*` env vars are `Option`s:
/// `None` means "not set here — let the env var, then the default, apply";
/// `Some` always wins over the environment. (Historically the env vars
/// silently *overrode* explicit fields, the exact bug a long-running
/// server cannot live with.) See [`ResolvedConfig::resolve`] for the full
/// precedence contract.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Host guest-memory size.
    pub host_mem: usize,
    /// Device DRAM size (per device). `None` defers to `OMPI_DEV_MEM`,
    /// then [`DEFAULT_DEVICE_MEM`].
    pub device_mem: Option<usize>,
    /// Grid simulation mode.
    pub exec_mode: ExecMode,
    /// JIT cache directory (PTX mode), shared across devices.
    pub jit_cache_dir: std::path::PathBuf,
    /// Estimate repeated launches from earlier ones (see cudadev docs).
    pub launch_sampling: bool,
    /// Number of simulated offload devices in the registry.
    pub num_devices: usize,
    /// Async command streams: transfers and launches are scheduled on
    /// per-region streams whose copy and compute engines overlap on the
    /// simulated clock (results stay bit-identical — execution is eager).
    /// `None` defers to `OMPI_ASYNC` (strict boolean), then `false`.
    pub async_streams: Option<bool>,
    /// Deterministic fault-injection plan for device 0 (tests). `None`
    /// falls back to the `OMPI_FAULT_PLAN` environment variable, whose
    /// `devN:`-prefixed rules scope to device `N`. For programmatic
    /// multi-device plans use [`RunnerConfig::fault_spec`] instead.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Fault-plan source text with optional `devN:` prefixes, parsed once
    /// per device. Takes precedence over [`RunnerConfig::fault_plan`].
    pub fault_spec: Option<String>,
    /// Retry policy for transient driver faults.
    pub retry: RetryPolicy,
    /// Watchdog deadline for kernels and transfers: a hung operation is
    /// declared timed out after this much simulated waiting and handed to
    /// the recovery manager. `None` defers to `OMPI_LAUNCH_TIMEOUT_MS`,
    /// then [`DEFAULT_LAUNCH_TIMEOUT`].
    pub launch_timeout: Option<std::time::Duration>,
    /// How many consecutive reset-and-replay attempts may fail before a
    /// device latches permanently broken. `None` defers to
    /// `OMPI_MAX_RESETS`, then [`DEFAULT_MAX_RESETS`].
    pub max_resets: Option<u32>,
    /// Guest instruction budget per machine (`OMPI_GUEST_FUEL`): a hostile
    /// `while(1);` returns [`minic::limits::GuestLimitError::FuelExhausted`]
    /// instead of hanging the process. `None` = unlimited.
    pub fuel: Option<u64>,
    /// Guest heap + stack-frame byte ceiling (`OMPI_GUEST_MEM`). `None` =
    /// unlimited (bounded only by the host arena).
    pub guest_mem: Option<u64>,
    /// Guest call-depth limit in frames (`OMPI_GUEST_STACK`). `None`
    /// keeps the historical default of 200.
    pub guest_stack: Option<u32>,
    /// Wall-clock deadline for each guest job (`OMPI_JOB_TIMEOUT_MS`),
    /// armed at every [`Runner::call`] and checked at the engines'
    /// fuel-check boundary. `None` = no deadline.
    pub job_timeout: Option<std::time::Duration>,
    /// Explicit observability sink (tracer + metrics). `None` resolves the
    /// `OMPI_TRACE` / `OMPI_PROFILE` environment variables: a set
    /// `OMPI_TRACE` makes the runner write Chrome trace-event JSON there on
    /// drop, and `OMPI_PROFILE=1` prints the per-device profile table to
    /// stderr. An explicit sink suppresses both automatic outputs — the
    /// caller owns export.
    pub obs: Option<Arc<obs::Obs>>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            host_mem: 256 << 20,
            device_mem: None,
            exec_mode: ExecMode::Functional,
            jit_cache_dir: std::env::temp_dir().join("ompi-jitcache"),
            launch_sampling: false,
            num_devices: 1,
            async_streams: None,
            fault_plan: None,
            fault_spec: None,
            retry: RetryPolicy::default(),
            launch_timeout: None,
            max_resets: None,
            fuel: None,
            guest_mem: None,
            guest_stack: None,
            job_timeout: None,
            obs: None,
        }
    }
}

/// How a runner's observability was resolved (explicit sink vs env vars).
struct ObsSetup {
    obs: Arc<obs::Obs>,
    /// Write the trace here on drop (env-var mode only).
    trace_path: Option<std::path::PathBuf>,
    /// Print the profile table to stderr on drop (env-var mode only).
    profile: bool,
    /// Print the guest-source hotspot table to stderr on drop
    /// (`OMPI_HOTSPOTS=1`; env-var mode only).
    hotspots: bool,
    /// The runner owns this sink (env-var mode): it may fire the
    /// last-chance flight post-mortem at drop. An explicit shared sink
    /// must not — a short-lived runner would consume the one dump out
    /// from under longer-lived ones (first-trigger-wins).
    env_owned: bool,
}

impl ObsSetup {
    fn resolve(cfg: &ResolvedConfig) -> ObsSetup {
        if let Some(o) = &cfg.obs {
            return ObsSetup {
                obs: o.clone(),
                trace_path: None,
                profile: false,
                hotspots: false,
                env_owned: false,
            };
        }
        let env = obs::ObsEnv::from_env();
        let obs = if env.trace_path.is_some() { obs::Obs::enabled() } else { obs::Obs::disabled() };
        ObsSetup {
            obs,
            trace_path: env.trace_path,
            profile: env.profile,
            hotspots: env.hotspots,
            env_owned: true,
        }
    }
}

/// A runnable application instance.
pub struct Runner {
    pub machine: Arc<Machine>,
    pub hooks: Arc<OmpiHooks>,
    hooks_dyn: Arc<dyn Hooks>,
    /// Write the trace here on drop (`OMPI_TRACE` mode).
    trace_path: Option<std::path::PathBuf>,
    /// Print the profile table on drop (`OMPI_PROFILE` mode).
    profile_on_drop: bool,
    /// Print the hotspot table on drop (`OMPI_HOTSPOTS` mode).
    hotspots_on_drop: bool,
    /// Fire the last-chance flight post-mortem on drop (env-var mode).
    flight_on_drop: bool,
    /// Wall-clock deadline armed on the machine at every guest call.
    job_timeout: Option<std::time::Duration>,
}

impl Runner {
    /// Build the device registry for a kernel directory: `cfg.num_devices`
    /// simulated GPUs, each with its own clock, broken-latch, and
    /// device-scoped fault plan.
    fn build_registry(
        kernel_dir: &std::path::Path,
        cfg: &ResolvedConfig,
        obs: &Arc<obs::Obs>,
    ) -> IResult<Arc<DeviceRegistry>> {
        // Validate `OMPI_FAULT_PLAN` eagerly: lazy device initialization
        // reports any init error as "device unavailable" (host fallback),
        // which would silently turn a malformed plan into a fault-free
        // run. A bad plan must fail construction loudly instead.
        if cfg.fault_spec.is_none() && cfg.fault_plan.is_none() {
            FaultPlan::from_env()
                .map_err(|e| InterpError::Trap(format!("OMPI_FAULT_PLAN: {e}")))?;
        }
        let mut devices: Vec<Arc<dyn DeviceModule>> = Vec::with_capacity(cfg.num_devices);
        for i in 0..cfg.num_devices {
            let fault_plan = match &cfg.fault_spec {
                Some(spec) => Some(Arc::new(
                    FaultPlan::parse_for_device(spec, i as u32)
                        .map_err(|e| InterpError::Trap(format!("fault plan: {e}")))?,
                )),
                // An explicit pre-parsed plan has no device scoping; it
                // belongs to device 0 (the only device before the registry
                // existed). Other devices still honour `OMPI_FAULT_PLAN`
                // through their `device_id`.
                None if i == 0 => cfg.fault_plan.clone(),
                None => None,
            };
            devices.push(Arc::new(CudaDev::new(CudaDevConfig {
                device_id: i as u32,
                global_mem: cfg.device_mem,
                kernel_dir: kernel_dir.to_path_buf(),
                jit_cache_dir: cfg.jit_cache_dir.clone(),
                exec_mode: cfg.exec_mode,
                launch_sampling: cfg.launch_sampling,
                async_streams: cfg.async_streams,
                fault_plan,
                retry: cfg.retry,
                launch_timeout: cfg.launch_timeout,
                max_resets: cfg.max_resets,
                obs: obs.clone(),
                ..CudaDevConfig::default()
            })));
        }
        Ok(Arc::new(DeviceRegistry::new(devices)))
    }

    /// The one constructor: every application — OpenMP or pure CUDA — runs
    /// against a registry-dispatched hook set; the only variation is
    /// whether kernel launches resolve through a fixed CUDA module.
    fn with_registry(
        host: minic::ast::Program,
        host_info: minic::sema::ProgramInfo,
        registry: Arc<DeviceRegistry>,
        cuda_module: Option<String>,
        cfg: &ResolvedConfig,
        setup: ObsSetup,
    ) -> IResult<Runner> {
        // Guest limits come from the snapshot — `Machine` must not re-read
        // `OMPI_GUEST_*` per job in a long-running server.
        let machine = Machine::new_with_limits(host, host_info, cfg.host_mem, cfg.guest_limits())?;
        let hooks = Arc::new(OmpiHooks::new(registry, cuda_module, setup.obs));
        let hooks_dyn: Arc<dyn Hooks> = hooks.clone();
        Ok(Runner {
            machine,
            hooks,
            hooks_dyn,
            trace_path: setup.trace_path,
            profile_on_drop: setup.profile,
            hotspots_on_drop: setup.hotspots,
            flight_on_drop: setup.env_owned,
            job_timeout: cfg.job_timeout,
        })
    }

    /// Instantiate a compiled OpenMP application.
    ///
    /// Env vars apply only to fields the config leaves unset (see
    /// [`ResolvedConfig::resolve`]): with no explicit
    /// [`RunnerConfig::device_mem`], `OMPI_DEV_MEM=64M`-style values cap
    /// the per-device arena, exercising the memory governor's degradation
    /// ladder (OpenMP path only — the CUDA baseline manages raw device
    /// memory itself and would just crash).
    pub fn new(app: &CompiledApp, cfg: &RunnerConfig) -> IResult<Runner> {
        let rc = ResolvedConfig::resolve(cfg).map_err(|e| InterpError::Trap(e.to_string()))?;
        let setup = ObsSetup::resolve(&rc);
        let registry = Self::build_registry(&app.kernel_dir, &rc, &setup.obs)?;
        Self::with_registry(app.host.clone(), app.host_info.clone(), registry, None, &rc, setup)
    }

    /// Instantiate a compiled OpenMP application against a caller-owned
    /// registry and a pre-resolved config snapshot. This is the batch
    /// server's path: the scheduler owns the device fleet and hands each
    /// job the device(s) it placed it on; nothing here reads the
    /// environment.
    pub fn with_shared_registry(
        app: &CompiledApp,
        registry: Arc<DeviceRegistry>,
        cfg: &ResolvedConfig,
    ) -> IResult<Runner> {
        let setup = ObsSetup::resolve(cfg);
        Self::with_registry(app.host.clone(), app.host_info.clone(), registry, None, cfg, setup)
    }

    /// Instantiate a compiled pure-CUDA application.
    pub fn new_cuda(app: &CompiledCudaApp, cfg: &RunnerConfig) -> IResult<Runner> {
        let rc = ResolvedConfig::resolve_cuda(cfg).map_err(|e| InterpError::Trap(e.to_string()))?;
        let setup = ObsSetup::resolve(&rc);
        let registry = Self::build_registry(&app.kernel_dir, &rc, &setup.obs)?;
        Self::with_registry(
            app.host.clone(),
            app.host_info.clone(),
            registry,
            Some(app.module_name.clone()),
            &rc,
            setup,
        )
    }

    /// Call a guest function. A guest that exceeds a configured resource
    /// limit (fuel, memory ceiling, stack depth, job deadline) returns the
    /// typed [`InterpError::Limit`] — never a panic or a hang — with device
    /// state salvaged for the next job (see `on_guest_limit`).
    pub fn call(&self, name: &str, args: &[Value]) -> IResult<Value> {
        self.machine.limits().arm_deadline(self.job_timeout);
        let mut i = Interp::new(self.machine.clone(), self.hooks_dyn.clone())?;
        let r = i.call(name, args);
        self.machine.limits().arm_deadline(None);
        self.record_vm_counters();
        if let Err(InterpError::Limit(l)) = &r {
            self.on_guest_limit(l);
        }
        r
    }

    /// Clean-up after a guest hit a resource limit. The *guest* misbehaved
    /// — the device did not — so this must leave the device ready for the
    /// next job and must not touch the recovery breaker:
    /// 1. drain queued async work (the streams' `drain_and_clear` path),
    /// 2. release the aborted job's device mappings (its buffers will
    ///    never be read again),
    /// 3. record `guest_limit.<kind>` + a `limit` trace instant, and give
    ///    the flight recorder its post-mortem trigger.
    fn on_guest_limit(&self, l: &minic::limits::GuestLimitError) {
        let registry = &self.hooks.registry;
        registry.sync_streams();
        for i in 0..registry.num_devices() {
            if let Some(d) = registry.device(i) {
                d.release_mappings();
            }
        }
        let pid = self.hooks.host_pid();
        let obs = self.obs();
        obs.metrics.incr(pid, &format!("guest_limit.{}", l.kind()), 1);
        obs.tracer.instant(
            pid,
            0,
            "limit",
            "limit",
            registry.clock_of(pid as usize).unwrap_or_default().total_s(),
            vec![("kind", l.kind().into()), ("error", l.to_string().into())],
        );
        obs.flight.post_mortem(&format!("guest limit: {l}"));
    }

    /// Drain the machine's VM dispatch counters into the obs metrics
    /// (`vm.instructions`, `vm.dispatch.*` on the host shim's pid).
    fn record_vm_counters(&self) {
        let c = self.machine.drain_vm_counters();
        if c.is_zero() {
            return;
        }
        let pid = self.hooks.host_pid();
        self.obs().metrics.incr(pid, "vm.instructions", c.instructions);
        for (cat, &n) in minic::bytecode::OP_CATS.iter().zip(&c.dispatch) {
            if n != 0 {
                self.obs().metrics.incr(pid, &format!("vm.dispatch.{cat}"), n);
            }
        }
    }

    /// Run `main()`.
    pub fn run_main(&self) -> IResult<Value> {
        self.call("main", &[])
    }

    /// The device registry (per-device clocks, broken-latches, ICVs).
    pub fn registry(&self) -> &Arc<DeviceRegistry> {
        &self.hooks.registry
    }

    /// Number of registered offload devices.
    pub fn num_devices(&self) -> usize {
        self.hooks.registry.num_devices()
    }

    /// The accumulated virtual device time (the paper's reported metric),
    /// summed over all offload devices — identical to the single device's
    /// clock in default configurations.
    pub fn dev_clock(&self) -> DevClock {
        self.hooks.registry.aggregate_clock()
    }

    /// One offload device's virtual clock (`idx == num_devices()` reads
    /// the host shim's clock).
    pub fn dev_clock_of(&self, idx: usize) -> Option<DevClock> {
        self.hooks.registry.clock_of(idx)
    }

    /// Reset the virtual device clocks (before a measured run).
    pub fn reset_dev_clock(&self) {
        self.hooks.registry.reset_clocks();
    }

    /// Whether a terminal device fault has latched device 0 broken
    /// (subsequent target regions there execute on the host).
    pub fn device_broken(&self) -> bool {
        self.device_broken_at(0)
    }

    /// Whether a terminal device fault has latched device `idx` broken.
    pub fn device_broken_at(&self, idx: usize) -> bool {
        self.hooks.registry.device(idx).map(|d| d.is_broken()).unwrap_or(false)
    }

    /// Captured guest stdout.
    pub fn take_output(&self) -> String {
        self.machine.take_output()
    }

    /// Captured device printf output across all devices (empty if no
    /// device ever came up).
    pub fn take_device_output(&self) -> String {
        self.hooks.registry.take_printf_output()
    }

    /// The observability sink this runner records into.
    pub fn obs(&self) -> &Arc<obs::Obs> {
        &self.hooks.obs
    }

    /// The per-device profile table (simulated time by phase), rendered.
    /// The latency columns come from each device's `region_latency_us`
    /// histogram (pid = row index; the host shim's row comes last and
    /// stays zero — fallbacks are charged to the originating device's
    /// region span).
    pub fn profile_table(&self) -> String {
        let mut rows = self.hooks.registry.profile_rows();
        for (pid, row) in rows.iter_mut().enumerate() {
            if let Some(h) = self.hooks.obs.metrics.hist(pid as u64, "region_latency_us") {
                row.lat_p50_us = h.percentile(50.0).unwrap_or(0);
                row.lat_p95_us = h.percentile(95.0).unwrap_or(0);
                row.lat_p99_us = h.percentile(99.0).unwrap_or(0);
            }
        }
        obs::render_profile(&rows)
    }

    /// The guest-source hotspot table: VM dispatch attributed to source
    /// lines through the compiler's pc→line tables. Empty (with a hint)
    /// unless the machine collected attribution (`OMPI_HOTSPOTS=1` or
    /// [`Machine::set_hotspots`]).
    pub fn hotspot_table(&self) -> String {
        let rows: Vec<obs::HotLine> = self
            .machine
            .line_profile()
            .into_iter()
            .map(|h| obs::HotLine {
                func: h.func,
                line: h.line,
                instructions: h.instructions,
                dispatch: h.dispatch,
            })
            .collect();
        obs::render_hotspots("guest vm", &rows)
    }

    /// Make sure every trace "process" carries a human-readable name
    /// (first-wins: devices that came up already named themselves).
    fn name_trace_processes(&self) {
        let tracer = &self.hooks.obs.tracer;
        for i in 0..self.hooks.registry.num_devices() {
            tracer.set_process_name(i as u64, &format!("dev{i}"));
        }
        tracer.set_process_name(self.hooks.host_pid(), "host (initial device)");
    }

    /// Write the recorded trace as Chrome trace-event JSON.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.name_trace_processes();
        self.hooks.obs.tracer.write_json(path)
    }
}

impl Drop for Runner {
    /// Env-var mode export: `OMPI_TRACE` writes the trace JSON,
    /// `OMPI_PROFILE` prints the profile table to stderr, `OMPI_HOTSPOTS`
    /// the guest-source hotspot table. Explicit `RunnerConfig::obs` sinks
    /// skip all three (the caller owns export).
    fn drop(&mut self) {
        if let Some(path) = self.trace_path.take() {
            if let Err(e) = self.write_trace(&path) {
                eprintln!("ompi: failed to write trace to {}: {e}", path.display());
            }
        }
        if self.profile_on_drop {
            eprintln!("{}", self.profile_table());
        }
        if self.hotspots_on_drop {
            eprintln!("{}", self.hotspot_table());
        }
        // Last-chance flight dump (`OMPI_FLIGHT_DUMP` with no fault this
        // run): a no-op without a dump path, and first-trigger-wins if a
        // latch or watchdog already dumped. Env-var mode only — with an
        // explicit shared sink the caller owns the end-of-run trigger.
        if self.flight_on_drop {
            self.hooks.obs.flight.post_mortem("runner drop");
        }
    }
}
