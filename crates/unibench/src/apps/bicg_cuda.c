/* bicg — CUDA baseline. */
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;

__global__ void bicg_kernel1(int n, float *a, float *r, float *s)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < n) {
        float t = 0.0f;
        for (int i = 0; i < n; i++)
            t += a[i * n + j] * r[i];
        s[j] = t;
    }
}

__global__ void bicg_kernel2(int n, float *a, float *p, float *q)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float t = 0.0f;
        for (int j = 0; j < n; j++)
            t += a[i * n + j] * p[j];
        q[i] = t;
    }
}

void run(int n, float *a, float *r, float *s, float *p, float *q)
{
    float *da;
    float *dr;
    float *ds;
    float *dp;
    float *dq;
    long mbytes = (long) n * n * sizeof(float);
    long vbytes = (long) n * sizeof(float);
    cudaMalloc(&da, mbytes);
    cudaMalloc(&dr, vbytes);
    cudaMalloc(&ds, vbytes);
    cudaMalloc(&dp, vbytes);
    cudaMalloc(&dq, vbytes);
    cudaMemcpy(da, a, mbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dr, r, vbytes, cudaMemcpyHostToDevice);
    cudaMemcpy(dp, p, vbytes, cudaMemcpyHostToDevice);
    dim3 block(256);
    dim3 grid((n + 255) / 256);
    bicg_kernel1<<<grid, block>>>(n, da, dr, ds);
    bicg_kernel2<<<grid, block>>>(n, da, dp, dq);
    cudaMemcpy(s, ds, vbytes, cudaMemcpyDeviceToHost);
    cudaMemcpy(q, dq, vbytes, cudaMemcpyDeviceToHost);
    cudaFree(da);
    cudaFree(dr);
    cudaFree(ds);
    cudaFree(dp);
    cudaFree(dq);
}
