//! Pipeline pass: **combined-construct lowering** (§3.1).
//!
//! Kernel bodies for combined `target teams distribute [parallel for]`
//! constructs: the grid is sized from the collapsed trip count, each team
//! takes a distribute chunk via `cudadev_get_distribute_chunk`, and the
//! team's threads subdivide it with the schedule-specific
//! `cudadev_get_{static,dynamic,guided}_chunk` (two-phase distribution).

use minic::ast::build as b;
use minic::ast::*;
use minic::omp::{Directive, SchedKind};
use minic::token::Pos;
use minic::types::Ty;

use crate::analyze::*;

use super::util::{red_combine, red_identity};
use super::{err, long_cast, trip_count_expr, Translator, VarRole};

impl<'p> Translator<'p> {
    /// Kernel body for combined constructs (§3.1).
    pub(crate) fn combined_kernel_body(
        &mut self,
        loops: &[LoopInfo],
        inner_body: &Stmt,
        dir: &Directive,
        roles: &[(String, Ty, VarRole)],
        dist_only: bool,
        pos: Pos,
    ) -> TResult<Vec<Stmt>> {
        let mut out = Vec::new();
        if contains_standalone_parallel(inner_body) {
            return Err(err(
                pos,
                "nested OpenMP constructs inside a combined target loop are not supported",
            ));
        }
        // Reduction locals.
        for (name, ty, role) in roles {
            if let VarRole::Reduction(op) = role {
                out.push(b::decl(name, ty.clone(), Some(red_identity(*op, ty))));
            }
        }
        // Trip counts.
        let mut tc_names = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            let n = format!("__tc{i}");
            out.push(b::decl(&n, Ty::Long, Some(long_cast(trip_count_expr(l)))));
            tc_names.push(n);
        }
        // total = tc0 * tc1 * …
        let mut total = b::ident(&tc_names[0]);
        for n in &tc_names[1..] {
            total = b::bin(BinOp::Mul, total, b::ident(n));
        }
        out.push(b::decl("__total", Ty::Long, Some(total)));
        out.push(b::decl("__lb", Ty::Long, None));
        out.push(b::decl("__ub", Ty::Long, None));
        out.push(b::decl("__mylb", Ty::Long, None));
        out.push(b::decl("__myub", Ty::Long, None));
        out.push(b::expr_stmt(b::call(
            "cudadev_get_distribute_chunk",
            vec![b::ident("__total"), b::addr_of(b::ident("__lb")), b::addr_of(b::ident("__ub"))],
        )));

        // The per-iteration loop body: reconstruct the loop indices.
        let mut iter_body: Vec<Stmt> = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            // idx_i = (__it / (tc_{i+1} * …)) [% tc_i]
            let mut div: Option<Expr> = None;
            for n in &tc_names[i + 1..] {
                div = Some(match div {
                    None => b::ident(n),
                    Some(d) => b::bin(BinOp::Mul, d, b::ident(n)),
                });
            }
            let mut idx = b::ident("__it");
            if let Some(d) = div {
                idx = b::bin(BinOp::Div, idx, d);
            }
            if i > 0 {
                idx = b::bin(BinOp::Rem, idx, b::ident(&tc_names[i]));
            }
            let scaled = if l.step == 1 { idx } else { b::bin(BinOp::Mul, idx, b::int(l.step)) };
            let val = b::bin(BinOp::Add, l.lb.clone(), b::cast(l.var_ty.clone(), scaled));
            iter_body.push(b::decl(&l.var, l.var_ty.clone(), Some(val)));
        }
        iter_body.push(inner_body.clone());

        let make_for = |lo: Expr, hi: Expr, body: Vec<Stmt>| Stmt::For {
            init: Some(Box::new(b::decl("__it", Ty::Long, Some(lo)))),
            cond: Some(b::bin(BinOp::Lt, b::ident("__it"), hi)),
            step: Some(b::e(ExprKind::IncDec {
                pre: false,
                inc: true,
                expr: Box::new(b::ident("__it")),
            })),
            body: Box::new(b::block(body)),
        };

        let sched = dir.clause_schedule();
        match sched {
            Some((SchedKind::Dynamic, chunk)) | Some((SchedKind::Guided, chunk)) if !dist_only => {
                let f = match sched.unwrap().0 {
                    SchedKind::Dynamic => "cudadev_get_dynamic_chunk",
                    _ => "cudadev_get_guided_chunk",
                };
                let chunk_e = chunk.cloned().unwrap_or_else(|| b::int(1));
                out.push(Stmt::If {
                    cond: b::bin(BinOp::Eq, b::call("omp_get_thread_num", vec![]), b::int(0)),
                    then_s: Box::new(b::expr_stmt(b::call("cudadev_sched_reset", vec![]))),
                    else_s: None,
                });
                out.push(b::expr_stmt(b::call("cudadev_barrier", vec![])));
                out.push(Stmt::While {
                    cond: b::call(
                        f,
                        vec![
                            b::ident("__lb"),
                            b::ident("__ub"),
                            long_cast(chunk_e),
                            b::addr_of(b::ident("__mylb")),
                            b::addr_of(b::ident("__myub")),
                        ],
                    ),
                    body: Box::new(make_for(
                        b::ident("__mylb"),
                        b::ident("__myub"),
                        iter_body.clone(),
                    )),
                });
            }
            _ => {
                // Static (default). In distribute-only kernels the team's
                // single thread runs the whole distribute chunk.
                if dist_only {
                    out.push(b::expr_stmt(b::assign(b::ident("__mylb"), b::ident("__lb"))));
                    out.push(b::expr_stmt(b::assign(b::ident("__myub"), b::ident("__ub"))));
                } else {
                    let chunk_e = match sched {
                        Some((SchedKind::Static, Some(c))) => long_cast(c.clone()),
                        _ => b::int(0),
                    };
                    out.push(b::expr_stmt(b::call(
                        "cudadev_get_static_chunk",
                        vec![
                            b::ident("__lb"),
                            b::ident("__ub"),
                            chunk_e,
                            b::addr_of(b::ident("__mylb")),
                            b::addr_of(b::ident("__myub")),
                        ],
                    )));
                }
                out.push(make_for(b::ident("__mylb"), b::ident("__myub"), iter_body));
            }
        }

        // Fold reductions into the global accumulators.
        for (name, ty, role) in roles {
            if let VarRole::Reduction(op) = role {
                out.push(red_combine(name, ty, *op));
            }
        }
        Ok(out)
    }
}
