//! [`DeviceModule`] implementation for the cudadev GPU module.
//!
//! Thin forwarding layer: `CudaDev` already implements the whole module
//! contract (lazy init, refcounted data environment, three-phase launch,
//! broken-device latch); this impl only adapts its inherent methods to the
//! trait so the runner can hold it behind `Arc<dyn DeviceModule>` alongside
//! the host shim.

use std::sync::Arc;

use cudadev::{CudaDev, CudadevError, DevClock, MapKind, MemPressure, PressureOutcome, TileParam};
use gpusim::LaunchStats;
use vmcommon::MemArena;

use crate::{DeviceKind, DeviceModule};

impl DeviceModule for CudaDev {
    fn kind(&self) -> DeviceKind {
        DeviceKind::CudaGpu
    }

    fn is_available(&self) -> bool {
        self.try_device().is_ok()
    }

    fn is_broken(&self) -> bool {
        CudaDev::is_broken(self)
    }

    fn breaker_state(&self) -> cudadev::BreakerState {
        CudaDev::breaker_state(self)
    }

    fn mark_broken(&self) {
        CudaDev::mark_broken(self)
    }

    fn map(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        kind: MapKind,
    ) -> Result<u64, CudadevError> {
        CudaDev::map(self, host_mem, host_addr, len, kind)
    }

    fn unmap(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        kind: MapKind,
    ) -> Result<(), CudadevError> {
        CudaDev::unmap(self, host_mem, host_addr, kind)
    }

    fn update(
        &self,
        host_mem: &MemArena,
        host_addr: u64,
        len: u64,
        to_device: bool,
    ) -> Result<(), CudadevError> {
        CudaDev::update(self, host_mem, host_addr, len, to_device)
    }

    fn dev_addr(&self, host_addr: u64) -> Option<u64> {
        CudaDev::dev_addr(self, host_addr)
    }

    fn has_pending_maps(&self, host_addrs: &[u64]) -> bool {
        CudaDev::has_pending(self, host_addrs)
    }

    fn mark_all_host_dirty(&self) {
        CudaDev::mark_all_host_dirty(self)
    }

    fn release_mappings(&self) -> usize {
        CudaDev::release_mappings(self)
    }

    fn refresh_args(&self, host_mem: &MemArena, host_addrs: &[u64]) -> Result<(), CudadevError> {
        CudaDev::refresh_args(self, host_mem, host_addrs)
    }

    fn offload_pressured(
        &self,
        host_mem: &MemArena,
        module: &str,
        kernel: &str,
        tileable: bool,
        total: u64,
        grid: [u32; 3],
        block: [u32; 3],
        params: &[TileParam],
    ) -> Result<PressureOutcome, CudadevError> {
        CudaDev::offload_pressured(
            self, host_mem, module, kernel, tileable, total, grid, block, params,
        )
    }

    fn mem_pressure(&self) -> Option<MemPressure> {
        Some(CudaDev::mem_pressure(self))
    }

    fn load_module(&self, name: &str) -> Result<Arc<sptx::Module>, CudadevError> {
        CudaDev::load_module(self, name)
    }

    fn launch(
        &self,
        host_mem: &MemArena,
        module: &str,
        kernel: &str,
        grid: [u32; 3],
        block: [u32; 3],
        params: Vec<u64>,
    ) -> Result<LaunchStats, CudadevError> {
        CudaDev::launch(self, host_mem, module, kernel, grid, block, params)
    }

    fn stream_region_begin(&self) {
        CudaDev::stream_region_begin(self)
    }

    fn stream_mark_nowait(&self) {
        CudaDev::stream_mark_nowait(self)
    }

    fn stream_region_end(&self) {
        CudaDev::stream_region_end(self)
    }

    fn stream_sync(&self) {
        CudaDev::stream_sync(self)
    }

    fn clock(&self) -> DevClock {
        // Deliberately *not* a synchronization point: only flushed time is
        // visible, so tracing and `omp_get_wtime` reads between `nowait`
        // regions do not drain the command streams. Reports that need the
        // queued work accounted call `stream_sync` first (the registry's
        // aggregate/profile paths do).
        *self.clock.lock()
    }

    fn reset_clock(&self) {
        CudaDev::reset_clock(self)
    }

    fn record_memcpy(&self, seconds: f64, h2d_bytes: u64, d2h_bytes: u64) {
        let mut clk = self.clock.lock();
        // Attribute the transfer time to the direction that moved bytes
        // (the baseline path always calls with exactly one side non-zero).
        if d2h_bytes > 0 && h2d_bytes == 0 {
            clk.d2h_s += seconds;
        } else {
            clk.h2d_s += seconds;
        }
        clk.h2d_bytes += h2d_bytes;
        clk.d2h_bytes += d2h_bytes;
    }

    fn raw_device(&self) -> Option<Arc<gpusim::Device>> {
        self.try_device().ok()
    }

    fn take_printf_output(&self) -> String {
        self.try_device().map(|d| d.take_printf_output()).unwrap_or_default()
    }
}
