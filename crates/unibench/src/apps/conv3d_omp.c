/* 3dconv (Polybench stencil): 11-point 3D convolution — OpenMP offload. */
void run(int n, float *a, float *b)
{
    #pragma omp target teams distribute parallel for collapse(3) \
            map(to: a[0:n*n*n]) map(from: b[0:n*n*n]) num_threads(256)
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                b[i * n * n + j * n + k] =
                      2.0f  * a[(i - 1) * n * n + (j - 1) * n + (k - 1)]
                    + 0.5f  * a[(i + 1) * n * n + (j - 1) * n + (k - 1)]
                    - 8.0f  * a[(i - 1) * n * n + (j - 1) * n + k]
                    - 3.0f  * a[(i + 1) * n * n + (j - 1) * n + k]
                    + 4.0f  * a[(i - 1) * n * n + (j - 1) * n + (k + 1)]
                    - 1.0f  * a[(i + 1) * n * n + (j - 1) * n + (k + 1)]
                    + 6.0f  * a[i * n * n + j * n + k]
                    - 9.0f  * a[(i - 1) * n * n + (j + 1) * n + (k - 1)]
                    + 2.0f  * a[(i + 1) * n * n + (j + 1) * n + (k - 1)]
                    + 7.0f  * a[(i - 1) * n * n + (j + 1) * n + (k + 1)]
                    + 10.0f * a[(i + 1) * n * n + (j + 1) * n + (k + 1)];
            }
        }
    }
}
