//! Functional validation of the Fig. 4 applications: both the OMPi and the
//! CUDA variant must reproduce the sequential Rust reference at a small
//! problem size.

use unibench::{app_by_name, validate_app};

fn workdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("unibench-val-{}-{tag}", std::process::id()))
}

macro_rules! validate {
    ($test:ident, $name:expr) => {
        #[test]
        fn $test() {
            let app = app_by_name($name).expect("app");
            validate_app(&app, &workdir($name)).unwrap();
        }
    };
}

validate!(validate_3dconv, "3dconv");
validate!(validate_bicg, "bicg");
validate!(validate_atax, "atax");
validate!(validate_mvt, "mvt");
validate!(validate_gemm, "gemm");
validate!(validate_gramschmidt, "gramschmidt");
